#!/usr/bin/env python3
"""A catch-up TV platform deciding whether to deploy peer assistance.

Scenario: an iPlayer-like broadcaster streams a Zipf catalogue to a
multi-ISP city and wants to know, before touching any client code,

* how much greener hybrid delivery would make the whole platform,
* which content actually produces the savings (spoiler: the head),
* how savings move through the week (demand is diurnal and weekly).

Run:  python examples/catchup_tv_platform.py  [--scale 0.5]
"""

import argparse

from repro.analysis import (
    median_item_savings,
    render_table,
    top_share_of_savings,
)
from repro.core import BALIGA, VALANCIUS
from repro.sim import SimulationConfig, simulate
from repro.trace import GeneratorConfig, TraceGenerator, summarise
from repro.trace.population import DeviceProfile


def build_platform_trace(scale: float):
    """One simulated week of a mid-sized national streaming platform."""
    config = GeneratorConfig(
        num_users=int(20_000 * scale),
        num_items=300,
        days=7,
        expected_sessions=220_000 * scale,
        zipf_exponent=0.9,
        seed=2018,
    )
    device_mix = (
        DeviceProfile("desktop", bitrate=1.5e6, share=0.7),
        DeviceProfile("tv", bitrate=3.0e6, share=0.3),
    )
    return TraceGenerator(config=config, device_mix=device_mix).generate()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25, help="workload size")
    args = parser.parse_args()

    trace = build_platform_trace(args.scale)
    stats = summarise(trace)
    print("Platform week:")
    for label, value in stats.table_rows():
        print(f"  {label}: {value}")

    result = simulate(trace, SimulationConfig(upload_ratio=1.0))

    print("\nPlatform-wide outcome of enabling peer assistance:")
    rows = []
    for energy in (VALANCIUS, BALIGA):
        rows.append(
            [
                energy.name,
                f"{result.savings(energy):.1%}",
                f"{median_item_savings(result, energy):.2%}",
                f"{top_share_of_savings(result, energy, 0.01):.0%}",
            ]
        )
    print(
        render_table(
            ["energy model", "system savings", "median item savings", "top-1% share"],
            rows,
        )
    )

    print("\nWhere the savings live (top 5 items by saved energy):")
    per_content = result.per_content_results()
    ranked = sorted(per_content.values(), key=lambda r: r.capacity, reverse=True)
    rows = [
        [
            r.key.content_id,
            round(r.capacity, 1),
            r.ledger.sessions,
            f"{r.savings(VALANCIUS):.1%}",
        ]
        for r in ranked[:5]
    ]
    print(render_table(["item", "capacity", "sessions", "savings (Valancius)"], rows))

    print("\nDay-by-day (largest ISP, Valancius):")
    rows = [
        [f"day {day}", f"{s:.1%}"]
        for day, s in result.daily_savings("ISP-1", VALANCIUS)
    ]
    print(render_table(["day", "savings"], rows))
    weekend = [s for d, s in result.daily_savings("ISP-1", VALANCIUS) if d % 7 >= 5]
    weekday = [s for d, s in result.daily_savings("ISP-1", VALANCIUS) if d % 7 < 5]
    if weekend and weekday:
        print(
            f"\nweekend mean {sum(weekend)/len(weekend):.1%} vs "
            f"weekday mean {sum(weekday)/len(weekday):.1%} -- busier days "
            "mean denser swarms mean greener delivery."
        )


if __name__ == "__main__":
    main()
