#!/usr/bin/env python3
"""Live streaming: the paper's future-work scenario, simulated.

A live broadcast is the extreme swarm: every viewer watches the *same*
content at the *same* time, so swarm capacity equals the full concurrent
audience -- peer assistance should approach its asymptotic best.  We
build a synthetic "match night": a 2-hour live event whose audience ramps
up, peaks, and drains, and compare it with the same viewing hours spread
across a catch-up catalogue.

Run:  python examples/live_event.py
"""

import random

from repro.analysis import render_table
from repro.core import BALIGA, SavingsModel, VALANCIUS
from repro.sim import SimulationConfig, simulate
from repro.topology import default_london
from repro.trace import GeneratorConfig, Session, Trace, TraceGenerator


def build_live_trace(num_viewers: int, seed: int = 4) -> Trace:
    """A 2-hour live event: arrivals ramp, most stay to the end."""
    rng = random.Random(seed)
    city = default_london()
    event_start = 19 * 3600.0  # 8 pm kick-off
    event_length = 2 * 3600.0
    sessions = []
    for session_id in range(num_viewers):
        # Ramp-in: most viewers arrive in the first 15 minutes.
        offset = rng.expovariate(1 / 300.0)
        start = event_start + min(offset, event_length - 600.0)
        # Watch until the end, with a minority churning early.
        remaining = event_start + event_length - start
        duration = remaining if rng.random() < 0.8 else rng.uniform(600.0, remaining)
        sessions.append(
            Session(
                session_id=session_id,
                user_id=session_id,
                content_id="live-final",
                start=start,
                duration=max(duration, 60.0),
                bitrate=1.5e6,
                attachment=city.sample_attachment(rng),
            )
        )
    return Trace.from_sessions(sessions)


def main() -> None:
    num_viewers = 4_000
    live = build_live_trace(num_viewers)
    result = simulate(live, SimulationConfig(upload_ratio=1.0))

    swarm = max(result.per_swarm.values(), key=lambda r: r.capacity)
    print(f"live event: {num_viewers:,} viewers, biggest sub-swarm capacity "
          f"{swarm.capacity:.0f} concurrent")

    rows = []
    for energy in (VALANCIUS, BALIGA):
        model = SavingsModel(energy)
        rows.append(
            [
                energy.name,
                f"{result.savings(energy):.1%}",
                f"{model.savings(swarm.capacity):.1%}",
                f"{result.carbon_positive_share(energy):.0%}",
            ]
        )
    print(
        render_table(
            ["model", "S simulated", "S theory @ capacity", "carbon positive"],
            rows,
        )
    )

    # Contrast with the same viewing hours as scattered catch-up demand.
    catchup_config = GeneratorConfig(
        num_users=num_viewers,
        num_items=200,
        days=1,
        expected_sessions=num_viewers,
        seed=4,
    )
    catchup = TraceGenerator(config=catchup_config).generate()
    catchup_result = simulate(catchup, SimulationConfig(upload_ratio=1.0))
    print(
        f"\nsame audience as catch-up viewing: S = "
        f"{catchup_result.savings(VALANCIUS):.1%} (Valancius) vs live "
        f"{result.savings(VALANCIUS):.1%} -- synchronised audiences are the "
        "best case for consuming local."
    )


if __name__ == "__main__":
    main()
