#!/usr/bin/env python3
"""A CDN operator designing a carbon-credit incentive programme.

Scenario: the CDN wants users to join the peer swarm and plans to pass
its saved server footprint back to uploaders as carbon credits (paper
Section V).  The operator needs to know:

* at what swarm size an average user breaks even (carbon neutral),
* what fraction of a real user population ends up carbon positive,
* who is left behind (niche-content viewers), and
* how many grams of CO2e the scheme actually moves on a real grid.

Run:  python examples/carbon_credit_marketplace.py
"""

from repro.analysis import EmpiricalDistribution, render_table
from repro.core import BALIGA, SavingsModel, UK_GRID_2014, VALANCIUS
from repro.sim import SimulationConfig, simulate
from repro.trace import GeneratorConfig, TraceGenerator


def design_points() -> None:
    """The analytic design space of the credit scheme."""
    print("=== Scheme design (closed form) ===")
    rows = []
    for energy in (VALANCIUS, BALIGA):
        model = SavingsModel(energy)
        rows.append(
            [
                energy.name,
                round(model.neutrality_capacity(), 2),
                f"{model.asymptotic_carbon_positivity():+.0%}",
            ]
        )
    print(
        render_table(
            ["energy model", "break-even swarm capacity", "CCT at full offload"],
            rows,
        )
    )
    print(
        "Reading: under Baliga's hotter servers the credit is worth more,\n"
        "so users break even in much smaller swarms."
    )


def population_outcome() -> None:
    """Apply the scheme to a simulated population."""
    print("\n=== Outcome over a simulated month ===")
    config = GeneratorConfig(
        num_users=6_000,
        num_items=200,
        days=10,
        expected_sessions=120_000,
        seed=99,
    )
    trace = TraceGenerator(config=config).generate()
    result = simulate(trace, SimulationConfig(upload_ratio=1.0))
    footprints = result.user_footprints()

    rows = []
    for energy in (VALANCIUS, BALIGA):
        ccts = [fp.carbon_credit_transfer(energy) for fp in footprints.values()]
        dist = EmpiricalDistribution.from_sample(ccts)
        rows.append(
            [
                energy.name,
                f"{result.carbon_positive_share(energy):.1%}",
                round(dist.median, 3),
                round(dist.quantile(0.9), 3),
            ]
        )
    print(
        render_table(
            ["energy model", "carbon positive", "median CCT", "p90 CCT"], rows
        )
    )

    # Who is left behind?  Compare catalogue breadth of winners/losers.
    print("\nWhy the stragglers stay negative (niche content, small swarms):")
    user_items = {}
    for session in trace:
        user_items.setdefault(session.user_id, set()).add(session.content_id)
    positives, negatives = [], []
    per_content = result.per_content_results()
    capacity_of = {cid: r.capacity for cid, r in per_content.items()}
    for uid, fp in footprints.items():
        mean_capacity = sum(capacity_of[c] for c in user_items[uid]) / len(user_items[uid])
        (positives if fp.is_carbon_positive(BALIGA) else negatives).append(mean_capacity)
    if positives and negatives:
        print(
            f"  mean swarm capacity watched -- carbon-positive users: "
            f"{sum(positives)/len(positives):.1f}, "
            f"carbon-negative users: {sum(negatives)/len(negatives):.1f}"
        )

    # Absolute footprint moved, on the 2014 UK grid.
    total_credit_nj = sum(fp.credit_nj(BALIGA) for fp in footprints.values())
    grams = UK_GRID_2014.grams_for_nj(total_credit_nj)
    print(
        f"\nCredit transferred this period (Baliga, {UK_GRID_2014.name}): "
        f"{grams / 1000:.2f} kg CO2e across {len(footprints):,} users"
    )


if __name__ == "__main__":
    design_points()
    population_outcome()
