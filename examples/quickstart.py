#!/usr/bin/env python3
"""Quickstart: the paper's model in ten lines, then a tiny simulation.

Run:  python examples/quickstart.py
"""

from repro.core import BALIGA, SavingsModel, VALANCIUS
from repro.sim import SimulationConfig, simulate
from repro.trace import GeneratorConfig, TraceGenerator


def analytical_tour() -> None:
    """The closed-form model (paper Section III & V)."""
    print("=== Analytical model ===")
    for energy in (VALANCIUS, BALIGA):
        model = SavingsModel(energy)
        print(f"\n{energy.name} parameters:")
        for capacity in (0.1, 1, 10, 100, 10_000):
            print(
                f"  swarm capacity {capacity:>7,}: "
                f"offload G = {model.offload_fraction(capacity):5.1%}, "
                f"energy savings S = {model.savings(capacity):6.1%}, "
                f"user CCT = {model.carbon_credit_transfer(capacity):+6.1%}"
            )
        print(
            f"  users turn carbon neutral at capacity ~"
            f"{model.neutrality_capacity():.1f}; at full offload they are "
            f"carbon positive by {model.asymptotic_carbon_positivity():.0%}"
        )


def simulated_tour() -> None:
    """A small synthetic workload through the trace-driven simulator."""
    print("\n=== Trace-driven simulation ===")
    config = GeneratorConfig(
        num_users=2_000,
        num_items=150,
        days=3,
        expected_sessions=15_000,
        seed=7,
    )
    trace = TraceGenerator(config=config).generate()
    print(f"generated {len(trace):,} sessions over {trace.num_days} days")

    result = simulate(trace, SimulationConfig(upload_ratio=1.0))
    print(f"traffic offloaded to peers: {result.offload_fraction():.1%}")
    for energy in (VALANCIUS, BALIGA):
        print(
            f"  {energy.name:>10}: system savings {result.savings(energy):6.2%}, "
            f"carbon-positive users {result.carbon_positive_share(energy):5.1%}"
        )

    top = max(result.per_content_results().values(), key=lambda r: r.capacity)
    print(
        f"busiest item: {top.key.content_id} "
        f"(capacity {top.capacity:.1f} concurrent viewers, "
        f"savings {top.savings(VALANCIUS):.1%} under Valancius)"
    )


if __name__ == "__main__":
    analytical_tour()
    simulated_tour()
