#!/usr/bin/env python3
"""Network planning with the closed-form model (paper Eq. 12).

The paper notes the master equation "can potentially be used for network
planning purposes".  Scenario: an ISP engineer asks what-if questions
without running any simulation --

* How do savings respond to broadband upload speed upgrades?
* Does consolidating exchange points (fewer, bigger) help or hurt?
* When do hot modems make P2P counterproductive?

Run:  python examples/capacity_planning.py
"""

from repro.analysis import render_table
from repro.core import BALIGA, LayerProbabilities, SavingsModel, VALANCIUS


def upload_speed_upgrades() -> None:
    """Savings vs the q/beta ratio: is aDSL asymmetry really a blocker?"""
    print("=== Upload bandwidth sensitivity (capacity 50 swarm) ===")
    rows = []
    for ratio in (0.2, 0.4, 0.6, 0.8, 1.0, 1.5):
        model = SavingsModel(VALANCIUS, upload_ratio=ratio)
        rows.append([f"{ratio:.1f}", f"{model.savings(50):.1%}", f"{model.offload_fraction(50):.1%}"])
    print(render_table(["q/beta", "savings S", "offload G"], rows))
    print(
        "Even at q/beta = 0.4 (a 0.6 Mbps uplink against a 1.5 Mbps\n"
        "stream) savings stay above 10% -- the paper's 'asymmetry is\n"
        "largely a myth' argument, in numbers.\n"
    )


def exchange_consolidation() -> None:
    """Fewer exchange points = better peer locality at the same cost?"""
    print("=== Metro topology what-if (capacity 20, q/beta = 1) ===")
    rows = []
    for exchanges, pops in ((345, 9), (173, 9), (86, 9), (345, 18), (345, 5)):
        layers = LayerProbabilities.from_counts(exchanges=exchanges, pops=pops)
        model = SavingsModel(VALANCIUS, layers=layers)
        rows.append([exchanges, pops, f"{model.savings(20):.2%}"])
    print(render_table(["exchange points", "PoPs", "savings S"], rows))
    print(
        "Halving the exchange count raises the chance two peers share\n"
        "one (1/n each) and visibly lifts savings at moderate swarm\n"
        "sizes; adding PoPs has the same direction at the next layer.\n"
    )


def hot_modem_threshold() -> None:
    """At what modem draw does hybrid delivery stop paying?"""
    print("=== Modem efficiency threshold (capacity 100) ===")
    rows = []
    for gamma_m in (50.0, 100.0, 200.0, 400.0, 600.0, 800.0):
        energy = VALANCIUS.with_overrides(gamma_modem=gamma_m)
        model = SavingsModel(energy)
        savings = model.savings(100)
        rows.append([f"{gamma_m:.0f}", f"{savings:+.1%}", "yes" if savings > 0 else "NO"])
    print(render_table(["gamma_modem (nJ/bit)", "savings S", "worth it?"], rows))
    print(
        "The 'cool peers vs hot data centers' debate (paper Section II)\n"
        "in one sweep: once customer-premises equipment burns several\n"
        "hundred nJ/bit, the double modem traversal eats the benefit."
    )


def break_even_swarm_size() -> None:
    """How big must a swarm be before P2P beats the CDN at all?"""
    print("\n=== Break-even capacities ===")
    rows = []
    for name, energy in (("valancius", VALANCIUS), ("baliga", BALIGA)):
        model = SavingsModel(energy)
        lo, hi = 1e-3, 1e3
        for _ in range(80):
            mid = (lo * hi) ** 0.5
            if model.savings(mid) > 0.01:
                hi = mid
            else:
                lo = mid
        rows.append([name, f"{hi:.2f}"])
    print(render_table(["energy model", "capacity for S > 1%"], rows))


if __name__ == "__main__":
    upload_speed_upgrades()
    exchange_consolidation()
    hot_modem_threshold()
    break_even_swarm_size()
