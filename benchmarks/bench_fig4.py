"""Benchmark regenerating Fig. 4: daily aggregate savings per ISP."""

from repro.experiments.config import paper_simulation
from repro.experiments.runner import run_experiment


def test_fig4_daily_savings(benchmark, settings, report_sink):
    paper_simulation(settings)  # warm the shared simulation cache
    report = benchmark.pedantic(
        run_experiment, args=("fig4", settings), rounds=1, iterations=1
    )
    data = report.data

    for model in ("valancius", "baliga"):
        # ISP ordering: bigger subscriber share, denser swarms, more
        # savings (paper: ISP-1 on top).
        assert data[f"{model}/ISP-1"]["mean_sim"] > data[f"{model}/ISP-5"]["mean_sim"]
        # Theory tracks the daily simulated series.
        assert data[f"{model}/ISP-1"]["mae"] < 0.05

    # Valancius above Baliga day by day (the paper's two panels).
    assert data["valancius/ISP-1"]["mean_sim"] > data["baliga/ISP-1"]["mean_sim"]

    # Density extrapolation reaches the paper's headline band
    # (~30 % Valancius / ~18 % Baliga for the biggest ISP).
    assert 0.15 < data["extrapolated/valancius"] < 0.50
    assert 0.10 < data["extrapolated/baliga"] < 0.35
    report_sink("Fig. 4", report.render())
