"""Benchmark: the simulator-vs-theory validation sweep.

The paper's Fig. 2/4 claim -- Eq. 12 matches the simulation -- as a
single timed, asserted artefact.  Runs under stationary (M/M/inf)
conditions where the agreement should be tight.
"""

from repro.sim.validation import validate_against_theory


def test_simulator_validates_master_equation(benchmark, report_sink):
    report = benchmark.pedantic(
        lambda: validate_against_theory(
            capacities=(1.0, 3.0, 8.0), upload_ratios=(0.4, 1.0), days=3
        ),
        rounds=1,
        iterations=1,
    )
    assert report.passes(offload_tol=0.03, savings_tol=0.03)
    report_sink("Validation: Eq. 3 / Eq. 12 vs simulation", report.render())
