"""Benchmark regenerating Fig. 6: per-user carbon credit transfer CDF."""

from repro.experiments.config import paper_simulation
from repro.experiments.runner import run_experiment


def test_fig6_per_user_cct(benchmark, settings, report_sink):
    paper_simulation(settings)  # warm the shared simulation cache
    report = benchmark.pedantic(
        run_experiment, args=("fig6", settings), rounds=1, iterations=1
    )
    data = report.data

    # Baliga's curve sits right of Valancius' (paper: >70 % vs ~41 %
    # carbon positive at full density; the ordering is scale-free).
    assert (
        data["baliga"]["carbon_positive_share"]
        >= data["valancius"]["carbon_positive_share"]
    )
    for model in ("valancius", "baliga"):
        assert data[model]["median_cct"] >= -1.0
        assert data[model]["mean_cct"] >= -1.0
    report_sink("Fig. 6", report.render())
