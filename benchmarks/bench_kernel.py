#!/usr/bin/env python
"""Kernel-vs-kernel benchmark: object sweep against the columnar sweep.

Runs the month-of-London quick workload (``bench_london --quick``
semantics: ``london_config(density)`` sessions through the paper
policy's swarm tasks) through three single-core kernel variants:

* ``object``    -- the reference kernel (``run_swarm_object``),
* ``columnar``  -- the packed-column kernel with whatever backend the
  import selected (compiled ``_ckernel`` when built, else python),
* ``columnar-python`` -- the columnar kernel with the compiled backend
  masked off, i.e. the pure-python fallback every install gets.

On top of the resident-task comparison, the same workload is written
to a sorted shard (``ExternalGrouping``) and replayed end-to-end --
decode + schedule build + sweep -- through two ingest paths:

* ``pr7``         -- decode each extent to ``Session`` objects, then
  run the columnar kernel on the resident task (the previous release's
  external-grouping hot path),
* ``zero-object`` -- :func:`~repro.sim.kernel.run_ref` on the extent
  ref: the fused C decoder builds packed columns and the integer event
  schedule straight from the raw 56-byte records, with no ``Session``
  tuples ever materialised.

Every columnar output is checked bit-for-bit against the object kernel
before any timing is reported -- a benchmark of a wrong kernel is
meaningless.  The headline numbers are ``speedup`` (object seconds /
columnar seconds, best-of-``--repetitions``), gated against the 5x
target the columnar kernel shipped with, and ``ingest_speedup`` (pr7
seconds / zero-object seconds), gated at 1.5x (``meets_target`` /
``meets_ingest_target`` in the JSON).  With the compiled backend
present the zero-object pass must also actually hit the fused decoder
(``fused_tasks > 0``) -- a silent fallback to object decoding fails
the run.

Results append-or-overwrite BENCH_kernel.json at the repo root
(override with ``--out``) so the perf trajectory accumulates across
optimisation PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py           # full
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_kernel.py --profile

Run standalone (argparse, not pytest) so CI and operators can invoke it
without the benchmark plugin stack.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_london import london_config  # noqa: E402

from repro.experiments.config import CITY_DEVICE_MIX  # noqa: E402
from repro.sim import kernel_columns  # noqa: E402
from repro.sim.engine import SimulationConfig  # noqa: E402
from repro.sim.grouping import ExternalGrouping  # noqa: E402
from repro.sim.kernel import (  # noqa: E402
    SwarmOutput,
    build_tasks,
    resolve_task,
    run_ref,
    run_swarm_object,
)
from repro.sim.kernel_columns import run_swarm_columnar  # noqa: E402
from repro.sim.profiling import PROFILE  # noqa: E402
from repro.trace.generator import TraceGenerator  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: The speedup this kernel shipped with; regressions below it should
#: fail loudly in CI rather than drift silently.
SPEEDUP_TARGET = 5.0

#: End-to-end ingest (decode + schedule + sweep) speedup the
#: zero-object path shipped with, over the decode-to-objects path.
INGEST_SPEEDUP_TARGET = 1.5


def _outputs_identical(a: SwarmOutput, b: SwarmOutput) -> bool:
    """Bit-for-bit equality of two swarm outputs, dict orders included."""
    ra, rb = a.result, b.result
    la, lb = ra.ledger, rb.ledger
    return (
        la.server_bits == lb.server_bits
        and la.demanded_bits == lb.demanded_bits
        and la.watch_seconds == lb.watch_seconds
        and la.sessions == lb.sessions
        and list(la.peer_bits.items()) == list(lb.peer_bits.items())
        and ra.capacity == rb.capacity
        and ra.arrival_rate == rb.arrival_rate
        and ra.mean_duration == rb.mean_duration
        and list(a.per_isp_day.keys()) == list(b.per_isp_day.keys())
        and all(
            a.per_isp_day[k].server_bits == b.per_isp_day[k].server_bits
            and a.per_isp_day[k].demanded_bits == b.per_isp_day[k].demanded_bits
            and a.per_isp_day[k].watch_seconds == b.per_isp_day[k].watch_seconds
            and list(a.per_isp_day[k].peer_bits.items())
            == list(b.per_isp_day[k].peer_bits.items())
            for k in a.per_isp_day
        )
        and list(a.per_user.keys()) == list(b.per_user.keys())
        and all(
            a.per_user[k].watched_bits == b.per_user[k].watched_bits
            and a.per_user[k].uploaded_bits == b.per_user[k].uploaded_bits
            for k in a.per_user
        )
    )


def _time_kernel(run, tasks, config, repetitions: int) -> float:
    """Best-of-N seconds for one full pass, GC paused for stability."""
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repetitions):
            t0 = time.perf_counter()
            for task in tasks:
                run(task, config)
            best = min(best, time.perf_counter() - t0)
            gc.enable()
            gc.collect()
            gc.disable()
    finally:
        gc.enable()
    return best


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--density",
        type=float,
        default=0.0006,
        help="london workload density (default: 0.0006, the --quick smoke "
        "preset of bench_london)",
    )
    parser.add_argument(
        "--seed", type=int, default=20130901, help="trace seed (default: 20130901)"
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=3,
        help="timing repetitions, best-of (default: 3; with --quick: 2)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"result JSON path (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke preset (2 repetitions)"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the per-phase kernel profile of one columnar pass",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.repetitions = min(args.repetitions, 2)

    gen_config = london_config(args.density, args.seed)
    generator = TraceGenerator(config=gen_config, device_mix=CITY_DEVICE_MIX)
    sessions = list(generator.iter_sessions())
    horizon = gen_config.days * 86_400.0
    config = SimulationConfig()
    tasks = build_tasks(sessions, horizon, config.policy)
    print(
        f"workload: {len(sessions)} sessions, {len(tasks)} swarm tasks, "
        f"{gen_config.days} days (density {args.density}, seed {args.seed})"
    )

    compiled = kernel_columns.HAVE_COMPILED
    print(f"compiled backend: {'yes' if compiled else 'no (pure-python fallback)'}")

    object_seconds = _time_kernel(run_swarm_object, tasks, config, args.repetitions)
    columnar_seconds = _time_kernel(run_swarm_columnar, tasks, config, args.repetitions)
    saved = kernel_columns._ckernel
    kernel_columns._ckernel = None
    try:
        python_seconds = _time_kernel(
            run_swarm_columnar, tasks, config, args.repetitions
        )
    finally:
        kernel_columns._ckernel = saved

    # Zero-object ingest comparison: the same workload replayed from
    # the sorted shard, end to end (decode + schedule build + sweep).
    shard_tmp = tempfile.TemporaryDirectory(prefix="bench-kernel-shard-")
    plan = ExternalGrouping(shard_dir=shard_tmp.name).plan(
        sessions, horizon, config.policy
    )
    refs = plan.refs()

    def run_pr7(ref, cfg):
        """The previous external hot path: extent -> objects -> columnar."""
        return run_swarm_columnar(resolve_task(ref), cfg)

    pr7_seconds = _time_kernel(run_pr7, refs, config, args.repetitions)
    zero_object_seconds = _time_kernel(run_ref, refs, config, args.repetitions)

    # Correctness gate: every columnar output must be bit-for-bit the
    # object kernel's -- resident tasks and extent refs alike, on both
    # the selected and the fallback backend.  (Timed first, verified
    # second, so the timing loops run without a thousand live reference
    # outputs dragging on the allocator.)
    mismatches = 0
    reference: List[SwarmOutput] = [run_swarm_object(task, config) for task in tasks]
    for backend_ckernel in {None, kernel_columns._ckernel}:
        saved = kernel_columns._ckernel
        kernel_columns._ckernel = backend_ckernel
        try:
            for task, expected in zip(tasks, reference):
                if not _outputs_identical(expected, run_swarm_columnar(task, config)):
                    mismatches += 1
            for ref, expected in zip(refs, reference):
                if not _outputs_identical(expected, run_ref(ref, config)):
                    mismatches += 1
        finally:
            kernel_columns._ckernel = saved
    del reference
    identical = mismatches == 0
    print(f"bit-for-bit identity: {'OK' if identical else f'{mismatches} MISMATCHES'}")

    speedup = object_seconds / columnar_seconds if columnar_seconds > 0 else 0.0
    python_speedup = object_seconds / python_seconds if python_seconds > 0 else 0.0
    ingest_speedup = (
        pr7_seconds / zero_object_seconds if zero_object_seconds > 0 else 0.0
    )
    print(f"object kernel      {object_seconds * 1e3:10.1f} ms")
    print(f"columnar kernel    {columnar_seconds * 1e3:10.1f} ms  ({speedup:.2f}x)")
    print(f"columnar (python)  {python_seconds * 1e3:10.1f} ms  ({python_speedup:.2f}x)")
    print(f"ingest via objects {pr7_seconds * 1e3:10.1f} ms")
    print(
        f"ingest zero-object {zero_object_seconds * 1e3:10.1f} ms  "
        f"({ingest_speedup:.2f}x)"
    )

    # One profiled zero-object pass: surfaces the decode phase in the
    # committed record and proves the fused decoder actually ran (a
    # compiled build that quietly fell back to object decoding is a
    # regression, not a slow day).
    PROFILE.enabled = True
    PROFILE.reset()
    try:
        for ref in refs:
            run_ref(ref, config)
    finally:
        PROFILE.enabled = False
    fused_active = PROFILE.fused_tasks > 0
    if args.profile:
        print(PROFILE.report())
    profile_record = {
        "decode_seconds": PROFILE.decode_seconds,
        "schedule_seconds": PROFILE.schedule_seconds,
        "sweep_seconds": PROFILE.sweep_seconds,
        "match_seconds": PROFILE.match_seconds,
        "account_seconds": PROFILE.account_seconds,
        "reduce_seconds": PROFILE.reduce_seconds,
        "tasks": PROFILE.tasks,
        "compiled_tasks": PROFILE.compiled_tasks,
        "fused_tasks": PROFILE.fused_tasks,
    }
    plan.cleanup()
    shard_tmp.cleanup()

    meets_target = compiled and identical and speedup >= SPEEDUP_TARGET
    meets_ingest_target = (
        compiled
        and identical
        and fused_active
        and ingest_speedup >= INGEST_SPEEDUP_TARGET
    )
    record = {
        "benchmark": "bench_kernel",
        "density": args.density,
        "seed": args.seed,
        "days": gen_config.days,
        "sessions": len(sessions),
        "tasks": len(tasks),
        "repetitions": args.repetitions,
        "compiled_available": compiled,
        "identical": identical,
        "object_seconds": object_seconds,
        "columnar_seconds": columnar_seconds,
        "speedup": speedup,
        "python_columnar_seconds": python_seconds,
        "python_speedup": python_speedup,
        "speedup_target": SPEEDUP_TARGET,
        "meets_target": meets_target,
        "pr7_ingest_seconds": pr7_seconds,
        "zero_object_ingest_seconds": zero_object_seconds,
        "ingest_speedup": ingest_speedup,
        "ingest_speedup_target": INGEST_SPEEDUP_TARGET,
        "meets_ingest_target": meets_ingest_target,
        "fused_decoder_active": fused_active,
        "profile": profile_record,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not identical:
        print("FAIL: columnar kernel is not bit-for-bit identical", file=sys.stderr)
        return 1
    if compiled and not fused_active:
        print(
            "FAIL: compiled backend present but the fused decoder never ran "
            "(zero-object ingest regressed to object decoding)",
            file=sys.stderr,
        )
        return 1
    if compiled and speedup < SPEEDUP_TARGET:
        print(
            f"FAIL: speedup {speedup:.2f}x below the {SPEEDUP_TARGET:.0f}x target",
            file=sys.stderr,
        )
        return 1
    if compiled and ingest_speedup < INGEST_SPEEDUP_TARGET:
        print(
            f"FAIL: ingest speedup {ingest_speedup:.2f}x below the "
            f"{INGEST_SPEEDUP_TARGET:.1f}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
