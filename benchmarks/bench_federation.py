#!/usr/bin/env python
"""Federation benchmark/smoke: K synthesized cities, one global result.

Synthesizes K city workloads (:mod:`repro.trace.synth`), then drives the
same union of sessions through two pipelines:

* **union**: one simulator run over the concatenated session stream --
  the reference a federation must reproduce, and
* **federated**: :func:`repro.sim.federate.run_federation`, each city a
  separate job whose swarm outputs are reconciled at the reducer,

and **fails loudly** unless the federated merged result is bit-for-bit
identical to the union run (the cities' topologies are disjoint by
construction).  The parity check repeats on a process backend to show
the contract is backend-independent.  A second scenario gives every
city the *same* catalogue prefix and an ISP-agnostic swarm policy, so
swarms genuinely span regions: there parity is not expected (a union
run matches peers across cities; federated jobs cannot) and what is
recorded instead is the federation ledger -- cross-region swarm count
and directed inter-region byte flows.  Timings and the ledger summary
land in ``BENCH_federation.json`` at the repo root (override with
``--out``).

Usage::

    PYTHONPATH=src python benchmarks/bench_federation.py          # full
    PYTHONPATH=src python benchmarks/bench_federation.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import tempfile
import time
from contextlib import ExitStack
from pathlib import Path
from typing import List, Optional, Sequence

from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.federate import RegionJob, run_federation
from repro.sim.policies import SwarmPolicy
from repro.trace.store import StoreReader
from repro.trace.synth import SynthConfig, synthesize

#: Default output path: the repo root, alongside the other BENCH_* files.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_federation.json"


def city_configs(
    cities: int, users: int, days: int, seed: int, prefix: Optional[str] = None
) -> List[SynthConfig]:
    """K deliberately non-uniform city configs (disjoint by region name
    unless ``prefix`` forces a shared catalogue)."""
    configs = []
    for index in range(cities):
        configs.append(
            SynthConfig(
                region=f"city{index:02d}",
                seed=seed + index,
                days=days,
                users=users + 40 * index,
                catalogue_size=120 + 30 * index,
                popularity_drift=0.1 * index,
                catalogue_churn=0.05 * index,
                peak_hour=(19.0 + 2.0 * index) % 24.0,
                num_isps=3 + index % 2,
                catalogue_prefix=prefix,
            )
        )
    return configs


def synth_cities(configs: Sequence[SynthConfig], directory: Path):
    """Synthesize every city; returns (paths, seconds, sessions)."""
    paths, sessions = [], 0
    start = time.perf_counter()
    for config in configs:
        result = synthesize(config, directory / f"{config.region}.store")
        paths.append(result.path)
        sessions += result.sessions
    return paths, time.perf_counter() - start, sessions


def union_run(
    paths: Sequence[Path], horizon: float, config: SimulationConfig
):
    """The reference: one run over the concatenated session stream."""
    simulator = Simulator(config)
    try:
        with ExitStack() as stack:
            readers = [stack.enter_context(StoreReader(p)) for p in paths]
            streams = itertools.chain.from_iterable(
                reader.iter_sessions() for reader in readers
            )
            return simulator.run_stream(streams, horizon)
    finally:
        simulator.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cities", type=int, default=3, help="number of federated cities"
    )
    parser.add_argument(
        "--users", type=int, default=400, help="base city population"
    )
    parser.add_argument("--days", type=int, default=3, help="trace days")
    parser.add_argument("--seed", type=int, default=20130901, help="base seed")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"where to write the JSON record (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: 2 cities, smaller populations, 2 days",
    )
    args = parser.parse_args(argv)

    cities, users, days = args.cities, args.users, args.days
    if args.quick:
        if cities == parser.get_default("cities"):
            cities = 2
        if users == parser.get_default("users"):
            users = 150
        if days == parser.get_default("days"):
            days = 2

    violations: List[str] = []
    record = {"benchmark": "bench_federation", "cities": cities}

    with tempfile.TemporaryDirectory(prefix="bench-federation-") as temp:
        directory = Path(temp)

        # -- scenario 1: disjoint topologies, bit-for-bit parity -------
        configs = city_configs(cities, users, days, args.seed)
        paths, synth_seconds, sessions = synth_cities(configs, directory)
        horizon = max(config.horizon for config in configs)
        print(
            f"federation benchmark: {cities} cities, {sessions} sessions, "
            f"synthesized in {synth_seconds:.3f}s"
        )

        config = SimulationConfig()
        start = time.perf_counter()
        union = union_run(paths, horizon, config)
        union_seconds = time.perf_counter() - start

        jobs = [
            RegionJob(name=cfg.region, store=path, cache_token=cfg.cache_token)
            for cfg, path in zip(configs, paths)
        ]
        start = time.perf_counter()
        fed = run_federation(jobs, config)
        federated_seconds = time.perf_counter() - start
        if not fed.merged.identical_to(union):
            violations.append(
                "federated merged result differs from the union run "
                "(disjoint scenario, serial backend)"
            )
        if fed.ledger.cross_region_swarms:
            violations.append(
                f"disjoint scenario reported "
                f"{fed.ledger.cross_region_swarms} cross-region swarm(s)"
            )

        process_config = SimulationConfig(workers=2, backend="process")
        start = time.perf_counter()
        fed_process = run_federation(jobs, process_config)
        process_seconds = time.perf_counter() - start
        if not fed_process.merged.identical_to(union):
            violations.append(
                "federated merged result differs from the union run "
                "(disjoint scenario, process backend)"
            )

        print(
            f"   union run: {union_seconds:6.3f}s   federated serial: "
            f"{federated_seconds:6.3f}s   federated process x2: "
            f"{process_seconds:6.3f}s"
        )
        print(
            f"   parity: federated == union bit-for-bit "
            f"({len(jobs)} regions, {sum(fed.region_tasks.values())} swarms)"
        )
        record["disjoint"] = {
            "sessions": sessions,
            "synth_seconds": synth_seconds,
            "union_seconds": union_seconds,
            "federated_seconds": federated_seconds,
            "federated_process_seconds": process_seconds,
            "region_tasks": dict(sorted(fed.region_tasks.items())),
            "offload_fraction": fed.merged.offload_fraction(),
        }

        # -- scenario 2: shared catalogue, the federation ledger -------
        shared = city_configs(
            cities, users, days, args.seed + 1000, prefix="global"
        )
        shared_paths, _, shared_sessions = synth_cities(shared, directory)
        shared_jobs = [
            RegionJob(name=cfg.region, store=path, cache_token=cfg.cache_token)
            for cfg, path in zip(shared, shared_paths)
        ]
        # An ISP-agnostic policy: ISP names are region-prefixed, so only
        # with isp=None keys can a shared-catalogue swarm span regions.
        ledger_config = SimulationConfig(
            policy=SwarmPolicy(split_by_isp=False)
        )
        start = time.perf_counter()
        fed_shared = run_federation(shared_jobs, ledger_config)
        ledger_seconds = time.perf_counter() - start
        summary = fed_shared.ledger.summary()
        if not summary["cross_region_swarms"]:
            violations.append(
                "shared-catalogue scenario produced no cross-region swarms"
            )
        print(
            f"   shared catalogue: {shared_sessions} sessions, "
            f"{summary['cross_region_swarms']} cross-region swarm(s), "
            f"{summary['inter_region_bits']:.3g} inter-region demanded "
            f"bits across {len(summary['flows'])} flow(s) "
            f"in {ledger_seconds:.3f}s"
        )
        record["shared_catalogue"] = {
            "sessions": shared_sessions,
            "federated_seconds": ledger_seconds,
            "ledger": summary,
        }

    record["violations"] = violations
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if violations:
        for violation in violations:
            print(f"VIOLATION: {violation}")
        return 1
    print(
        "ok: federated merged result bit-for-bit identical to the union "
        "run on both backends; shared-catalogue ledger populated"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
