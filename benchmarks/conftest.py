"""Benchmark harness plumbing.

Each benchmark registers the report it reproduced via the
``report_sink`` fixture; everything collected is printed in the pytest
terminal summary, so ``pytest benchmarks/ --benchmark-only`` shows the
paper's tables and figure series alongside the timing table.

Scale knobs (environment variables):

* ``CONSUME_LOCAL_BENCH_SCALE`` -- trace scale factor (default 0.05;
  1.0 reproduces the headline EXPERIMENTS.md numbers but takes minutes).
* ``CONSUME_LOCAL_BENCH_DAYS`` -- trace days (default 7).
"""

from __future__ import annotations

import os
from typing import List, Tuple

import pytest

from repro.experiments.config import ExperimentSettings

_REPORTS: List[Tuple[str, str]] = []


def bench_settings() -> ExperimentSettings:
    """The shared settings every benchmark runs at."""
    scale = float(os.environ.get("CONSUME_LOCAL_BENCH_SCALE", "0.05"))
    days = int(os.environ.get("CONSUME_LOCAL_BENCH_DAYS", "7"))
    return ExperimentSettings(scale=scale, days=days)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return bench_settings()


@pytest.fixture
def report_sink():
    """Register a rendered report for the terminal summary."""

    def sink(name: str, text: str) -> None:
        _REPORTS.append((name, text))

    return sink


def pytest_terminal_summary(terminalreporter) -> None:
    for name, text in _REPORTS:
        terminalreporter.write_sep("=", f"reproduced artefact: {name}")
        terminalreporter.write_line(text)
