#!/usr/bin/env python
"""Sweep benchmark: run_sweep vs K independent runs, plus the shard cache.

The paper's headline figures are parameter *sweeps*: Fig. 2 simulates
the same exemplar sub-traces once per upload ratio, and the other
figures re-run near-identical configs over one catalogue trace.  The
sweep runtime (``Simulator.run_sweep``) groups the trace once, decodes
and event-schedules each swarm once, and sweeps the membership timeline
once for all K configs -- so a K-ratio sweep should cost much closer to
one run than to K.  This benchmark measures exactly that claim on two
workloads:

* ``exemplar`` -- the Fig. 2 trace (three pinned popularity tiers,
  uniform bitrate) under the paper's five-ratio q/beta sweep;
* ``catalogue`` -- the full-catalogue city trace (Figs. 3/4/6's
  workload) under the same ratio sweep.

and **fails loudly** if

* any sweep result differs (bit for bit) from its independent-run
  baseline,
* a sweep is slower than its K-run baseline (or below ``--min-speedup``),
* the second sweep over an explicit ``--shard-dir`` misses the
  content-addressed shard cache (``GroupingStats.cache_hit``),
* with ``--check-baseline FILE``: any per-ratio offload fraction
  deviates from the committed baseline (the CI smoke pins the quick
  preset's physics against ``benchmarks/baselines/sweep_quick.json``,
  so a silent behaviour change cannot hide behind a green equality
  check that only compares the run against itself).

A machine-readable ``BENCH_sweep.json`` is written at the repo root
(override with ``--out``) so the perf trajectory accumulates across
PRs: speedups, allocation-memo hit rates, schedule-build counts and
shard-cache timings.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py           # full
    PYTHONPATH=src python benchmarks/bench_sweep.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_sweep.py --backend process --workers 4

Run standalone (argparse, not pytest) so CI and operators can invoke it
without the benchmark plugin stack.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentSettings, UNIFORM_DEVICE_MIX
from repro.sim.backends import ProcessPoolBackend, SerialBackend, ThreadBackend
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.kernel import build_tasks, run_swarm_multi, sweep_memo
from repro.trace.events import Trace
from repro.trace.generator import TraceGenerator

#: The paper's Fig. 2 q/beta sweep.
UPLOAD_RATIOS = (0.2, 0.4, 0.6, 0.8, 1.0)

#: Default output path: the repo root, so the perf trajectory is
#: versioned alongside the code it measures.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def build_traces(scale: float, days: int) -> Dict[str, Trace]:
    """The two benchmark workloads at the given scale."""
    settings = ExperimentSettings(scale=scale, days=days)
    return {
        "exemplar": TraceGenerator(
            config=settings.exemplar_config(), device_mix=UNIFORM_DEVICE_MIX
        ).generate(),
        "catalogue": TraceGenerator(config=settings.city_config()).generate(),
    }


def make_backend(name: str, workers: int):
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(workers)
    return ProcessPoolBackend(workers, min_sessions=0)


def measure_workload(
    name: str,
    trace: Trace,
    backend_name: str,
    workers: int,
    repetitions: int,
    violations: List[str],
) -> Dict:
    """Time K independent runs vs one sweep; verify bit-for-bit equality."""
    configs = [SimulationConfig(upload_ratio=ratio) for ratio in UPLOAD_RATIOS]
    baseline_best = sweep_best = float("inf")
    baseline_results = sweep_results = None
    sweep_stats = None
    for _ in range(repetitions):
        # Baseline: K fully independent runs, each with its own
        # simulator -- exactly what a per-ratio figure driver does.
        backend = make_backend(backend_name, workers)
        start = time.perf_counter()
        baseline_results = [
            Simulator(config, backend=backend).run(trace) for config in configs
        ]
        baseline_best = min(baseline_best, time.perf_counter() - start)

        simulator = Simulator(configs[0], backend=backend)
        start = time.perf_counter()
        sweep_results = simulator.run_sweep(trace, configs)
        sweep_best = min(sweep_best, time.perf_counter() - start)
        sweep_stats = simulator.last_sweep
        if hasattr(backend, "close"):
            backend.close()

    for ratio, base, swept in zip(UPLOAD_RATIOS, baseline_results, sweep_results):
        if not base.identical_to(swept):
            violations.append(
                f"{name}: sweep result at q/beta={ratio} differs from the "
                f"independent run"
            )
    offload_fractions = [result.offload_fraction() for result in sweep_results]
    speedup = baseline_best / sweep_best if sweep_best > 0 else float("inf")
    print(
        f"   {name:>10}: {len(trace):>7} sessions  "
        f"{len(UPLOAD_RATIOS)}x run {baseline_best:7.3f}s  "
        f"run_sweep {sweep_best:7.3f}s  speedup {speedup:5.2f}x  "
        f"schedules {sweep_stats.schedule_builds}/{sweep_stats.tasks * len(configs)}"
    )
    return {
        "sessions": len(trace),
        "configs": len(configs),
        "baseline_seconds": baseline_best,
        "sweep_seconds": sweep_best,
        "speedup": speedup,
        "schedule_builds": sweep_stats.schedule_builds,
        "tasks": sweep_stats.tasks,
        "offload_fractions": offload_fractions,
    }


def measure_memo(trace: Trace, violations: List[str]) -> Dict:
    """Allocation-memo hit rates on the object multi-kernel.

    The memo only applies to ``kernel="object"`` sweeps (the columnar
    sweep replaces the shared-timeline machinery it accelerates), so it
    is characterized here on that kernel directly: the same catalogue
    sweep once with per-task memo lifetimes and once with one
    sweep-shared :func:`sweep_memo`.  Both use an effectively infinite
    probation so the reported rates cover the *full* attempted-lookup
    population instead of whatever prefix the adaptive off-switch
    happens to observe -- production runs keep the off-switch, which on
    low-repeat traces correctly disables keying.  Sharing must beat
    per-task lifetimes (that is the point of the shared memo); a shared
    rate at or below the per-task rate is a violation.
    """
    configs = [
        SimulationConfig(upload_ratio=ratio, kernel="object")
        for ratio in UPLOAD_RATIOS
    ]
    tasks = build_tasks(trace, trace.horizon, configs[0].policy)
    no_cutoff = 1 << 62

    per_hits = per_misses = 0
    for task in tasks:
        multi = run_swarm_multi(task, configs, sweep_memo(probation=no_cutoff))
        per_hits += multi.memo_hits
        per_misses += multi.memo_misses

    shared = sweep_memo(probation=no_cutoff)
    shared_hits_misses = [0, 0]
    for task in tasks:
        multi = run_swarm_multi(task, configs, shared)
        shared_hits_misses[0] += multi.memo_hits
        shared_hits_misses[1] += multi.memo_misses
    shared_hits, shared_misses = shared_hits_misses

    per_rate = per_hits / (per_hits + per_misses) if per_hits + per_misses else 0.0
    shared_total = shared_hits + shared_misses
    shared_rate = shared_hits / shared_total if shared_total else 0.0
    print(
        f"   memo (object kernel): per-task {per_hits}/{per_hits + per_misses} "
        f"({per_rate:.2%})  sweep-shared {shared_hits}/{shared_total} "
        f"({shared_rate:.2%})"
    )
    if shared_rate <= per_rate:
        violations.append(
            f"sweep-shared memo hit rate {shared_rate:.2%} does not beat "
            f"per-task lifetimes ({per_rate:.2%})"
        )
    return {
        "kernel": "object",
        "tasks": len(tasks),
        "per_task_hits": per_hits,
        "per_task_misses": per_misses,
        "per_task_hit_rate": per_rate,
        "shared_hits": shared_hits,
        "shared_misses": shared_misses,
        "shared_hit_rate": shared_rate,
    }


def measure_shard_cache(trace: Trace, violations: List[str]) -> Dict:
    """Build-then-reuse through the content-addressed shard cache."""
    configs = [SimulationConfig(upload_ratio=ratio) for ratio in UPLOAD_RATIOS]
    reference = Simulator(configs[0]).run_sweep(trace, configs)
    with tempfile.TemporaryDirectory(prefix="bench-sweep-cache-") as temp_dir:
        cached = SimulationConfig(
            upload_ratio=1.0, grouping="external", shard_dir=str(Path(temp_dir) / "shards")
        )
        first = Simulator(cached)
        start = time.perf_counter()
        built = first.run_sweep(trace, configs)
        build_seconds = time.perf_counter() - start
        first_hit = first.last_grouping.cache_hit

        # A *fresh* simulator: nothing survives but the shard directory,
        # exactly like a second process sweeping the same trace.
        second = Simulator(cached)
        start = time.perf_counter()
        reused = second.run_sweep(trace, configs)
        reuse_seconds = time.perf_counter() - start
        second_hit = second.last_grouping.cache_hit

    if first_hit is not False:
        violations.append(f"first sweep should build the cache (cache_hit False), got {first_hit}")
    if second_hit is not True:
        violations.append(f"second sweep did not reuse the cached shard (cache_hit {second_hit})")
    for ratio, base, result in zip(UPLOAD_RATIOS, reference, built):
        if not base.identical_to(result):
            violations.append(f"cache-building sweep differs at q/beta={ratio}")
    for ratio, base, result in zip(UPLOAD_RATIOS, reference, reused):
        if not base.identical_to(result):
            violations.append(f"cache-reusing sweep differs at q/beta={ratio}")
    print(
        f"   shard cache: build {build_seconds:7.3f}s (cache_hit={first_hit})  "
        f"reuse {reuse_seconds:7.3f}s (cache_hit={second_hit})"
    )
    return {
        "build_seconds": build_seconds,
        "reuse_seconds": reuse_seconds,
        "first_cache_hit": first_hit,
        "second_cache_hit": second_hit,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=None,
        help="trace scale (default: 0.1; with --quick: 0.05)",
    )
    parser.add_argument("--days", type=int, default=7, help="trace length in days")
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default="serial",
        help="execution backend for both sides of the comparison",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker count for thread/process backends (default: 2)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=None,
        help="timing repetitions, best-of (default: 3; with --quick: 2)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.0,
        help="fail below this sweep speedup on every workload (default: 1.0 "
        "-- a sweep must never lose to independent runs)",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"where to write the JSON record (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: small scale, fewer repetitions",
    )
    parser.add_argument(
        "--check-baseline", type=Path, default=None, metavar="FILE",
        help="fail if per-ratio offload fractions deviate from this "
        "committed baseline JSON (see benchmarks/baselines/)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.05 if args.quick else 0.1)
    repetitions = args.repetitions if args.repetitions is not None else (2 if args.quick else 3)

    print(
        f"sweep benchmark: {len(UPLOAD_RATIOS)}-ratio q/beta sweep "
        f"(Fig. 2 axis), scale {scale:g}, {args.days} days, "
        f"backend {args.backend}, best of {repetitions}"
    )
    traces = build_traces(scale, args.days)
    violations: List[str] = []
    workloads = {
        name: measure_workload(
            name, trace, args.backend, args.workers, repetitions, violations
        )
        for name, trace in traces.items()
    }
    memo = measure_memo(traces["catalogue"], violations)
    cache = measure_shard_cache(traces["exemplar"], violations)

    if args.check_baseline is not None:
        baseline = json.loads(args.check_baseline.read_text())
        for name, row in workloads.items():
            expected = baseline.get("offload_fractions", {}).get(name)
            if expected is None:
                violations.append(f"{name}: no offload baseline in {args.check_baseline}")
                continue
            if len(expected) != len(UPLOAD_RATIOS):
                violations.append(
                    f"{name}: baseline has {len(expected)} offload "
                    f"fractions for {len(UPLOAD_RATIOS)} ratios -- "
                    f"regenerate {args.check_baseline}"
                )
                continue
            for ratio, want, got in zip(
                UPLOAD_RATIOS, expected, row["offload_fractions"]
            ):
                if abs(want - got) > 1e-12:
                    violations.append(
                        f"{name}: offload fraction at q/beta={ratio} is "
                        f"{got!r}, baseline says {want!r} "
                        f"(physics changed -- regenerate the baseline only "
                        f"if the change is intended)"
                    )

    for name, row in workloads.items():
        if row["speedup"] < args.min_speedup:
            violations.append(
                f"{name}: sweep speedup {row['speedup']:.2f}x below the "
                f"--min-speedup floor ({args.min_speedup:g}x)"
            )

    record = {
        "benchmark": "bench_sweep",
        "upload_ratios": list(UPLOAD_RATIOS),
        "scale": scale,
        "days": args.days,
        "backend": args.backend,
        "repetitions": repetitions,
        "workloads": workloads,
        "memo": memo,
        "shard_cache": cache,
        "violations": violations,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if violations:
        for violation in violations:
            print(f"VIOLATION: {violation}")
        return 1
    print(
        "ok: every sweep bit-for-bit identical to its independent-run "
        "baseline, faster than the baseline, and the second sweep reused "
        "the cached shard"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
