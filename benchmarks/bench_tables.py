"""Benchmarks regenerating the paper's Tables I, III and IV."""

import pytest

from repro.experiments.runner import run_experiment


def test_table1_dataset_description(benchmark, settings, report_sink):
    """Table I: generate two synthetic months and summarise them."""
    report = benchmark.pedantic(
        run_experiment, args=("table1", settings), rounds=1, iterations=1
    )
    stats = report.data["stats"]
    # Two months, the later one slightly busier (paper: 3.3M -> 3.6M users).
    assert stats["Jul 2014"]["users"] > stats["Sep 2013"]["users"]
    assert stats["Sep 2013"]["sessions"] > 0
    report_sink("Table I", report.render())


def test_table3_localisation_probabilities(benchmark, settings, report_sink):
    """Table III: the 345/9/1 hierarchy's localisation probabilities."""
    report = benchmark(run_experiment, "table3", settings)
    rows = {row["layer"]: row["probability"] for row in report.data["rows"]}
    assert rows["Exchange Point"] == pytest.approx(0.0029, abs=1e-4)
    assert rows["Point of Presence"] == pytest.approx(0.1111, abs=1e-4)
    assert rows["Core Router"] == 1.0
    report_sink("Table III", report.render())


def test_table4_energy_parameters(benchmark, settings, report_sink):
    """Table IV: both energy parameter sets, with the hop-count check."""
    report = benchmark(run_experiment, "table4", settings)
    models = report.data["models"]
    assert models["valancius"]["gamma_server"] == pytest.approx(211.1)
    assert models["valancius"]["gamma_cdn_network"] == pytest.approx(7 * 150.0)
    assert models["baliga"]["gamma_core"] == pytest.approx(245.74)
    report_sink("Table IV", report.render())
