#!/usr/bin/env python
"""Memory benchmark: coordinator residency vs reduction mode and trace size.

The batched reduction materializes every swarm-shard output in the
coordinator before folding -- resident partial count equal to the shard
total, growing linearly with the trace.  The streaming reduction
(``SimulationConfig(reduction="streaming")``, see ``repro.sim.reduce``)
folds outputs as shards complete and must keep its resident partial
count bounded by ``workers + 1`` no matter how large the trace gets.
This benchmark measures both (peak resident partial count straight from
the runtime's own ``ReductionStats``, Python heap peak via
``tracemalloc``) across a sweep of trace sizes, verifies every mode is
bit-for-bit identical to batched, and **fails loudly** if

* a streaming/spill run ever holds more than ``workers + 1`` partials,
* the streaming bound does not stay flat while batched residency grows
  with trace size, or
* any mode's result differs from the batched baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_memory.py            # 1x 2x 4x
    PYTHONPATH=src python benchmarks/bench_memory.py --sizes 1 4 16
    PYTHONPATH=src python benchmarks/bench_memory.py --quick    # CI smoke

Run standalone (argparse, not pytest) so CI and operators can invoke it
without the benchmark plugin stack.
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc
from typing import List, Optional, Sequence

from repro.sim.backends import ProcessPoolBackend, SerialBackend, ThreadBackend
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.reduce import REDUCTION_MODES
from repro.trace.events import Trace
from repro.trace.generator import GeneratorConfig, TraceGenerator

#: The 1x workload (matches bench_scaling.py's trace).
BASE_CONFIG = GeneratorConfig(
    num_users=2_000, num_items=150, days=3, expected_sessions=15_000, seed=5
)


def build_trace(size: float) -> Trace:
    """The benchmark trace at ``size`` times the 1x workload."""
    return TraceGenerator(config=BASE_CONFIG.scaled(size)).generate()


def make_backend(name: str, workers: int):
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(workers)
    return ProcessPoolBackend(workers, min_sessions=0)


def measure(backend, workers: int, reduction: str, trace: Trace) -> dict:
    """One simulation run under ``reduction``, instrumented."""
    simulator = Simulator(SimulationConfig(reduction=reduction), backend=backend)
    tracemalloc.start()
    start = time.perf_counter()
    result = simulator.run(trace)
    seconds = time.perf_counter() - start
    _, heap_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    stats = simulator.last_reduction
    return {
        "reduction": reduction,
        "workers": workers,
        "result": result,
        "seconds": seconds,
        "heap_peak_mb": heap_peak / 1e6,
        "blocks": stats.blocks,
        "peak_resident": stats.peak_resident,
        "peak_resident_outputs": stats.peak_resident_outputs,
    }


def run_benchmark(
    sizes: Sequence[float], backend_name: str, workers: int
) -> List[str]:
    """Sweep sizes x reduction modes; return the list of violations."""
    violations: List[str] = []
    batched_peaks: List[int] = []
    streaming_peaks: List[int] = []
    bound = workers + 1

    for size in sizes:
        trace = build_trace(size)
        backend = make_backend(backend_name, workers)
        print(
            f"\n-- trace {size:g}x: {len(trace)} sessions, "
            f"{len(trace.user_ids)} users --"
        )
        baseline = None
        for reduction in REDUCTION_MODES:
            row = measure(backend, workers, reduction, trace)
            marks = []
            if reduction == "batched":
                baseline = row["result"]
                batched_peaks.append(row["peak_resident"])
            else:
                if not baseline.identical_to(row["result"]):
                    violations.append(
                        f"{size:g}x {reduction}: result differs from batched"
                    )
                    marks.append("!! RESULT MISMATCH")
                if row["peak_resident"] > bound:
                    violations.append(
                        f"{size:g}x {reduction}: {row['peak_resident']} resident "
                        f"partials exceeds workers + 1 = {bound}"
                    )
                    marks.append("!! UNBOUNDED")
                if reduction == "streaming":
                    streaming_peaks.append(row["peak_resident"])
            print(
                f"   {reduction:>9}   {row['seconds']:7.3f}s   "
                f"heap peak {row['heap_peak_mb']:8.2f} MB   "
                f"resident partials {row['peak_resident']:>5d} "
                f"({row['peak_resident_outputs']} outputs) "
                f"/ {row['blocks']} blocks   {' '.join(marks)}"
            )
        if hasattr(backend, "close"):
            backend.close()

    # Batched residency must track the shard count (non-decreasing with
    # trace size -- the swarm-key space saturates at items x ISPs x
    # bitrate classes, so growth is not strict forever -- and always
    # far above the streaming bound) while streaming stays flat at the
    # worker bound.  That gap is the whole point of the mode.
    if len(sizes) > 1:
        if any(later < earlier for earlier, later in zip(batched_peaks, batched_peaks[1:])):
            violations.append(
                f"batched resident partials shrank with trace size: "
                f"{batched_peaks}"
            )
        if batched_peaks[-1] <= bound:
            violations.append(
                f"batched residency ({batched_peaks[-1]}) never exceeded the "
                f"streaming bound ({bound}); trace too small to measure anything"
            )
        if max(streaming_peaks) > bound:
            violations.append(
                f"streaming resident partials exceeded the bound across "
                f"sizes: {streaming_peaks} (bound {bound})"
            )
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=float, nargs="+", default=None,
        help="trace size multipliers over the 1x base (default: 1 2 4; "
        "with --quick: 0.5 1)",
    )
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default="serial",
        help="execution backend (default: serial -- residency is a "
        "coordinator property, so the serial bound of 1 is the tightest)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker count for thread/process backends (default: 2)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: small default sizes (explicit flags still win)",
    )
    args = parser.parse_args(argv)

    # --quick only shrinks the *defaults*; explicit flags always win.
    sizes = args.sizes or ([0.5, 1.0] if args.quick else [1.0, 2.0, 4.0])
    backend_name = args.backend
    workers = 1 if backend_name == "serial" else max(1, args.workers)

    print(
        f"backend: {backend_name}; workers: {workers}; sizes: {sizes}; "
        f"streaming bound: workers + 1 = {workers + 1} resident partials"
    )
    violations = run_benchmark(sizes, backend_name, workers)

    print()
    if violations:
        for violation in violations:
            print(f"VIOLATION: {violation}")
        return 1
    print(
        "ok: all modes bit-for-bit identical; streaming residency bounded "
        f"by {workers + 1} while batched residency tracks the shard count"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
