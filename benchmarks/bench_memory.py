#!/usr/bin/env python
"""Memory benchmark: coordinator residency vs reduction mode and trace size.

The batched reduction materializes every swarm-shard output in the
coordinator before folding -- resident partial count equal to the shard
total, growing linearly with the trace.  The streaming reduction
(``SimulationConfig(reduction="streaming")``, see ``repro.sim.reduce``)
folds outputs as shards complete and must keep its resident partial
count bounded by ``workers + 1`` no matter how large the trace gets.
This benchmark measures both (peak resident partial count straight from
the runtime's own ``ReductionStats``, Python heap peak via
``tracemalloc``) across a sweep of trace sizes, verifies every mode is
bit-for-bit identical to batched, and **fails loudly** if

* a streaming/spill run ever holds more than ``workers + 1`` partials,
* the streaming bound does not stay flat while batched residency grows
  with trace size, or
* any mode's result differs from the batched baseline.

A second, **grouping** axis (``--grouping-axis``) measures the other
memory ceiling: ``grouping="memory"`` buffers every session in the
coordinator while partitioning the stream (peak buffered sessions ==
trace size), while ``grouping="external"`` spills sorted runs to disk
and must keep its peak buffered session count **flat at the sort-buffer
bound** as the trace grows.  The axis streams
``TraceGenerator.iter_sessions()`` end to end (generation -> grouping
-> streaming reduction), verifies both groupings are bit-for-bit
identical, and fails loudly if the external bound is exceeded or does
not stay flat while memory grouping grows linearly.

Usage::

    PYTHONPATH=src python benchmarks/bench_memory.py            # 1x 2x 4x
    PYTHONPATH=src python benchmarks/bench_memory.py --sizes 1 4 16
    PYTHONPATH=src python benchmarks/bench_memory.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_memory.py --quick --grouping-axis

Run standalone (argparse, not pytest) so CI and operators can invoke it
without the benchmark plugin stack.
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.sim.backends import ProcessPoolBackend, SerialBackend, ThreadBackend
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.grouping import ExternalGrouping, MemoryGrouping
from repro.sim.reduce import REDUCTION_MODES
from repro.trace.events import Trace
from repro.trace.generator import GeneratorConfig, TraceGenerator

#: The 1x workload (matches bench_scaling.py's trace).
BASE_CONFIG = GeneratorConfig(
    num_users=2_000, num_items=150, days=3, expected_sessions=15_000, seed=5
)


def build_trace(size: float) -> Trace:
    """The benchmark trace at ``size`` times the 1x workload."""
    return TraceGenerator(config=BASE_CONFIG.scaled(size)).generate()


def make_backend(name: str, workers: int):
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(workers)
    return ProcessPoolBackend(workers, min_sessions=0)


def measure(backend, workers: int, reduction: str, trace: Trace) -> dict:
    """One simulation run under ``reduction``, instrumented."""
    simulator = Simulator(SimulationConfig(reduction=reduction), backend=backend)
    tracemalloc.start()
    start = time.perf_counter()
    result = simulator.run(trace)
    seconds = time.perf_counter() - start
    _, heap_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    stats = simulator.last_reduction
    return {
        "reduction": reduction,
        "workers": workers,
        "result": result,
        "seconds": seconds,
        "heap_peak_mb": heap_peak / 1e6,
        "blocks": stats.blocks,
        "peak_resident": stats.peak_resident,
        "peak_resident_outputs": stats.peak_resident_outputs,
    }


def run_benchmark(
    sizes: Sequence[float], backend_name: str, workers: int
) -> List[str]:
    """Sweep sizes x reduction modes; return the list of violations."""
    violations: List[str] = []
    batched_peaks: List[int] = []
    streaming_peaks: List[int] = []
    bound = workers + 1

    for size in sizes:
        trace = build_trace(size)
        backend = make_backend(backend_name, workers)
        print(
            f"\n-- trace {size:g}x: {len(trace)} sessions, "
            f"{len(trace.user_ids)} users --"
        )
        baseline = None
        for reduction in REDUCTION_MODES:
            row = measure(backend, workers, reduction, trace)
            marks = []
            if reduction == "batched":
                baseline = row["result"]
                batched_peaks.append(row["peak_resident"])
            else:
                if not baseline.identical_to(row["result"]):
                    violations.append(
                        f"{size:g}x {reduction}: result differs from batched"
                    )
                    marks.append("!! RESULT MISMATCH")
                if row["peak_resident"] > bound:
                    violations.append(
                        f"{size:g}x {reduction}: {row['peak_resident']} resident "
                        f"partials exceeds workers + 1 = {bound}"
                    )
                    marks.append("!! UNBOUNDED")
                if reduction == "streaming":
                    streaming_peaks.append(row["peak_resident"])
            print(
                f"   {reduction:>9}   {row['seconds']:7.3f}s   "
                f"heap peak {row['heap_peak_mb']:8.2f} MB   "
                f"resident partials {row['peak_resident']:>5d} "
                f"({row['peak_resident_outputs']} outputs) "
                f"/ {row['blocks']} blocks   {' '.join(marks)}"
            )
        if hasattr(backend, "close"):
            backend.close()

    # Batched residency must track the shard count (non-decreasing with
    # trace size -- the swarm-key space saturates at items x ISPs x
    # bitrate classes, so growth is not strict forever -- and always
    # far above the streaming bound) while streaming stays flat at the
    # worker bound.  That gap is the whole point of the mode.
    if len(sizes) > 1:
        if any(later < earlier for earlier, later in zip(batched_peaks, batched_peaks[1:])):
            violations.append(
                f"batched resident partials shrank with trace size: "
                f"{batched_peaks}"
            )
        if batched_peaks[-1] <= bound:
            violations.append(
                f"batched residency ({batched_peaks[-1]}) never exceeded the "
                f"streaming bound ({bound}); trace too small to measure anything"
            )
        if max(streaming_peaks) > bound:
            violations.append(
                f"streaming resident partials exceeded the bound across "
                f"sizes: {streaming_peaks} (bound {bound})"
            )
    return violations


#: Sort-buffer size for the grouping axis: far below the 1x session
#: count, so external grouping genuinely spills and merges at every size.
GROUPING_RUN_SESSIONS = 2_000


def run_grouping_benchmark(sizes: Sequence[float]) -> List[str]:
    """Sweep sizes x grouping modes; return the list of violations.

    The population is held at the 1x size while expected sessions scale
    -- isolating the per-session grouping footprint from the O(users)
    population the generator itself holds.
    """
    violations: List[str] = []
    memory_peaks: List[int] = []
    external_peaks: List[int] = []

    for size in sizes:
        config = replace(
            BASE_CONFIG, expected_sessions=BASE_CONFIG.expected_sessions * size
        )
        print(f"\n-- trace {size:g}x: ~{config.expected_sessions:,.0f} sessions --")
        baseline = None
        for mode in ("memory", "external"):
            generator = TraceGenerator(config=config)
            strategy = (
                ExternalGrouping(run_sessions=GROUPING_RUN_SESSIONS)
                if mode == "external"
                else MemoryGrouping()
            )
            simulator = Simulator(
                SimulationConfig(reduction="streaming"),
                backend=SerialBackend(),
                grouping=strategy,
            )
            tracemalloc.start()
            start = time.perf_counter()
            result = simulator.run_stream(
                generator.iter_sessions(), config.horizon
            )
            seconds = time.perf_counter() - start
            _, heap_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            stats = simulator.last_grouping
            marks = []
            if mode == "memory":
                baseline = result
                memory_peaks.append(stats.peak_buffered_sessions)
            else:
                external_peaks.append(stats.peak_buffered_sessions)
                if not baseline.identical_to(result):
                    violations.append(
                        f"{size:g}x external: result differs from memory grouping"
                    )
                    marks.append("!! RESULT MISMATCH")
                if stats.peak_buffered_sessions > GROUPING_RUN_SESSIONS:
                    violations.append(
                        f"{size:g}x external: {stats.peak_buffered_sessions} "
                        f"buffered sessions exceeds the sort buffer "
                        f"({GROUPING_RUN_SESSIONS})"
                    )
                    marks.append("!! UNBOUNDED")
            print(
                f"   {mode:>9}   {seconds:7.3f}s   "
                f"heap peak {heap_peak / 1e6:8.2f} MB   "
                f"peak buffered sessions {stats.peak_buffered_sessions:>8,d}   "
                f"runs spilled {stats.runs_spilled:>3d}   {' '.join(marks)}"
            )

    if len(sizes) > 1:
        # Memory grouping buffers the whole trace: its peak must track
        # the session count.  External grouping must stay pinned at the
        # sort-buffer bound -- flat no matter how far the trace grows.
        if memory_peaks[-1] < memory_peaks[0] * (sizes[-1] / sizes[0]) * 0.5:
            violations.append(
                f"memory-grouping residency did not grow with trace size: "
                f"{memory_peaks}"
            )
        if memory_peaks[-1] <= GROUPING_RUN_SESSIONS:
            violations.append(
                f"memory-grouping residency ({memory_peaks[-1]}) never "
                f"exceeded the external bound ({GROUPING_RUN_SESSIONS}); "
                f"trace too small to measure anything"
            )
        if max(external_peaks) > GROUPING_RUN_SESSIONS:
            violations.append(
                f"external grouping exceeded its sort buffer across sizes: "
                f"{external_peaks} (bound {GROUPING_RUN_SESSIONS})"
            )
        if max(external_peaks) > min(external_peaks) * 1.5:
            violations.append(
                f"external-grouping residency is not flat across sizes: "
                f"{external_peaks}"
            )
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=float, nargs="+", default=None,
        help="trace size multipliers over the 1x base (default: 1 2 4; "
        "with --quick: 0.5 1)",
    )
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default="serial",
        help="execution backend (default: serial -- residency is a "
        "coordinator property, so the serial bound of 1 is the tightest)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker count for thread/process backends (default: 2)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: small default sizes (explicit flags still win)",
    )
    parser.add_argument(
        "--grouping-axis", action="store_true",
        help="measure the grouping axis instead: coordinator residency "
        "under memory vs external grouping as the trace grows",
    )
    args = parser.parse_args(argv)

    # --quick only shrinks the *defaults*; explicit flags always win.
    if args.grouping_axis:
        sizes = args.sizes or ([1.0, 2.0] if args.quick else [1.0, 2.0, 4.0])
        print(
            f"grouping axis; sizes: {sizes}; external bound: "
            f"{GROUPING_RUN_SESSIONS} buffered sessions (sort buffer)"
        )
        violations = run_grouping_benchmark(sizes)
        print()
        if violations:
            for violation in violations:
                print(f"VIOLATION: {violation}")
            return 1
        print(
            "ok: both groupings bit-for-bit identical; external grouping "
            f"residency flat at <= {GROUPING_RUN_SESSIONS} buffered sessions "
            "while memory grouping tracks the trace size"
        )
        return 0

    sizes = args.sizes or ([0.5, 1.0] if args.quick else [1.0, 2.0, 4.0])
    backend_name = args.backend
    workers = 1 if backend_name == "serial" else max(1, args.workers)

    print(
        f"backend: {backend_name}; workers: {workers}; sizes: {sizes}; "
        f"streaming bound: workers + 1 = {workers + 1} resident partials"
    )
    violations = run_benchmark(sizes, backend_name, workers)

    print()
    if violations:
        for violation in violations:
            print(f"VIOLATION: {violation}")
        return 1
    print(
        "ok: all modes bit-for-bit identical; streaming residency bounded "
        f"by {workers + 1} while batched residency tracks the shard count"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
