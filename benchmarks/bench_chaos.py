#!/usr/bin/env python
"""Chaos benchmark/smoke: seeded fault plans against the full stack.

For each fixed seed this derives a :func:`repro.sim.faults.chaos_plan`
-- a deterministic schedule of torn writes, ENOSPC/EIO, stale rename
visibility, clock skew and crash points over the queue/worker/service
fault sites -- installs it process-wide, and drives

* a **distributed** run (coordinator + supervised in-process workers
  that treat injected crashes as process death and respawn), and
* a **service-mode** run (epoch stream with checkpointed
  crash-and-restart resume),

then **fails loudly** unless every run is bit-for-bit identical to the
clean serial baseline and every queue drained completely (no pending,
claimed or failed item left behind).  Wall-clock overhead versus the
clean run and the per-kind fault counts are recorded in
``BENCH_chaos.json`` at the repo root (override with ``--out``).

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py          # full
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

from repro.sim import faults
from repro.sim.backends import DistributedBackend, SerialBackend
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.faults import InjectedCrash, chaos_plan
from repro.sim.queue import WorkQueue
from repro.sim.service import JsonlSink, ServiceConfig, SimulationService
from repro.sim.worker import run_worker
from repro.trace.events import SECONDS_PER_DAY
from repro.trace.generator import GeneratorConfig, TraceGenerator

#: Default output path: the repo root, alongside the other BENCH_* files.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

#: Fixed fault-plan seeds -- the benchmark's unit of replay.  ``--quick``
#: runs a prefix of the same seeds, so CI exercises the same plans.
DISTRIBUTED_SEEDS = (0, 1, 2, 3, 4, 5, 6, 7)
SERVICE_SEEDS = (0, 1, 2, 3)
QUICK_DISTRIBUTED = 3
QUICK_SERVICE = 2


def run_distributed_under(plan, trace, queue_root: Path):
    """One distributed run with ``plan`` installed process-wide."""
    backend = DistributedBackend(
        2,
        queue_dir=queue_root,
        spawn=False,
        lease_timeout=0.5,
        poll_interval=0.01,
        shard_quantum=60,
        progress_timeout=120.0,
        max_attempts=20,
        compact_every=16,
    )

    def supervised_worker(ordinal: int) -> None:
        while True:
            try:
                run_worker(
                    queue_root,
                    poll_interval=0.01,
                    lease_timeout=0.5,
                    worker_id=f"chaos-{ordinal}",
                )
                return  # STOP file: clean shutdown
            except InjectedCrash:
                continue  # the "process" died mid-item; respawn

    threads = [
        threading.Thread(target=supervised_worker, args=(i,)) for i in range(2)
    ]
    with faults.injected(plan):
        for thread in threads:
            thread.start()
        try:
            result = Simulator(SimulationConfig(), backend=backend).run(trace)
        finally:
            (queue_root / "STOP").touch()
            for thread in threads:
                thread.join(timeout=60.0)
            backend.close()
    return result


def run_service_under(plan, trace, config, state_dir: Path):
    """One service run with ``plan`` installed, restarting over the same
    state dir whenever an injected crash point kills it."""
    sink_path = state_dir / "out.jsonl"
    with faults.injected(plan):
        for _ in range(10):
            service = SimulationService(
                config, state_dir, subscribers=[JsonlSink(sink_path)]
            )
            try:
                service.run(iter(trace.sessions[service.cursor :]))
                cumulative = service.result()
                service.close()
                return cumulative
            except InjectedCrash:
                service.close()
    raise RuntimeError("service never completed within the restart budget")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--num-users", type=int, default=400, help="trace population"
    )
    parser.add_argument(
        "--sessions", type=float, default=3_000.0, help="expected sessions"
    )
    parser.add_argument("--seed", type=int, default=20130901, help="trace seed")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"where to write the JSON record (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: smaller trace, first few seeds only",
    )
    args = parser.parse_args(argv)

    num_users, sessions = args.num_users, args.sessions
    distributed_seeds: Sequence[int] = DISTRIBUTED_SEEDS
    service_seeds: Sequence[int] = SERVICE_SEEDS
    if args.quick:
        if args.num_users == parser.get_default("num_users"):
            num_users = 120
        if args.sessions == parser.get_default("sessions"):
            sessions = 800.0
        distributed_seeds = DISTRIBUTED_SEEDS[:QUICK_DISTRIBUTED]
        service_seeds = SERVICE_SEEDS[:QUICK_SERVICE]

    trace = TraceGenerator(
        config=GeneratorConfig(
            num_users=num_users,
            num_items=12,
            days=1,
            expected_sessions=sessions,
            seed=args.seed,
        )
    ).generate()
    print(
        f"chaos benchmark: {len(trace)} sessions, "
        f"{len(distributed_seeds)} distributed + {len(service_seeds)} "
        f"service fault plans"
    )

    violations: List[str] = []
    faults.uninstall()  # a clean facade no matter who ran before us

    start = time.perf_counter()
    serial = Simulator(SimulationConfig(), backend=SerialBackend()).run(trace)
    serial_seconds = time.perf_counter() - start

    service_config = ServiceConfig(
        simulation=SimulationConfig(),
        epoch_seconds=SECONDS_PER_DAY / 4,
        horizon=trace.horizon,
    )
    batch = Simulator(service_config.scoped_config).run(trace)

    distributed_runs = []
    for seed in distributed_seeds:
        plan = chaos_plan(seed, crash_mode="raise")
        with tempfile.TemporaryDirectory(prefix="bench-chaos-") as temp_dir:
            queue_root = Path(temp_dir) / "queue"
            start = time.perf_counter()
            result = run_distributed_under(plan, trace, queue_root)
            elapsed = time.perf_counter() - start
            if not result.identical_to(serial):
                violations.append(
                    f"distributed result under fault seed {seed} differs "
                    f"from serial"
                )
            for job_dir in queue_root.glob("job-*"):
                queue = WorkQueue(job_dir, lease_timeout=0.5, create=False)
                unretired = sorted(queue.pending_ids() | queue.claimed_ids())
                if unretired:
                    violations.append(
                        f"seed {seed}: {len(unretired)} unretired item(s) "
                        f"left in {job_dir.name}: {unretired[:3]}"
                    )
                failed = queue.failed_items()
                if failed:
                    violations.append(
                        f"seed {seed}: {len(failed)} item(s) quarantined "
                        f"in {job_dir.name}"
                    )
        fired = Counter(kind for _, kind, _ in plan.fired)
        distributed_runs.append(
            {
                "seed": seed,
                "seconds": elapsed,
                "rules": len(plan.rules),
                "faults_fired": dict(sorted(fired.items())),
            }
        )
        print(
            f"   distributed seed {seed}: {elapsed:6.3f}s, "
            f"{sum(fired.values())} fault(s) fired {dict(sorted(fired.items()))}"
        )

    service_runs = []
    for seed in service_seeds:
        plan = chaos_plan(seed, crash_mode="raise")
        with tempfile.TemporaryDirectory(prefix="bench-chaos-") as temp_dir:
            start = time.perf_counter()
            cumulative = run_service_under(
                plan, trace, service_config, Path(temp_dir)
            )
            elapsed = time.perf_counter() - start
        if not cumulative.identical_to(batch):
            violations.append(
                f"service result under fault seed {seed} differs from batch"
            )
        fired = Counter(kind for _, kind, _ in plan.fired)
        service_runs.append(
            {
                "seed": seed,
                "seconds": elapsed,
                "rules": len(plan.rules),
                "faults_fired": dict(sorted(fired.items())),
            }
        )
        print(
            f"   service     seed {seed}: {elapsed:6.3f}s, "
            f"{sum(fired.values())} fault(s) fired {dict(sorted(fired.items()))}"
        )

    total_faults = sum(
        sum(run["faults_fired"].values())
        for run in distributed_runs + service_runs
    )
    record = {
        "benchmark": "bench_chaos",
        "sessions": len(trace),
        "serial_seconds": serial_seconds,
        "distributed": distributed_runs,
        "service": service_runs,
        "total_faults_fired": total_faults,
        "violations": violations,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if violations:
        for violation in violations:
            print(f"VIOLATION: {violation}")
        return 1
    print(
        f"ok: {total_faults} injected fault(s) across "
        f"{len(distributed_runs) + len(service_runs)} seeded plans, every "
        f"run bit-for-bit identical to the clean baseline, every queue "
        f"drained"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
