#!/usr/bin/env python
"""Scaling benchmark: simulation wall-clock vs worker count.

Measures the swarm-sharded runtime (``repro.sim.backends``) against the
serial baseline on traces at multiples of the default benchmark size
(the 1x base is ~15K sessions, the same workload ``bench_pipeline.py``
uses; ``--sizes 10 100`` approaches the paper's full-trace regime).
Every parallel result is checked for exact equality with the serial
run before its timing is reported -- a wrong-but-fast backend fails
loudly here.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling.py             # 10x trace
    PYTHONPATH=src python benchmarks/bench_scaling.py --sizes 10 100
    PYTHONPATH=src python benchmarks/bench_scaling.py --quick     # CI smoke

Run standalone (argparse, not pytest) so CI and operators can invoke it
without the benchmark plugin stack.  Speedup is reported relative to
the serial backend at each size; on a single-core container the
process pool cannot beat serial (there is nothing to run on), so the
exit code reflects *correctness*, never speedup.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional, Sequence

from repro.sim.backends import ProcessPoolBackend, SerialBackend
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.results import SimulationResult
from repro.trace.events import Trace
from repro.trace.generator import GeneratorConfig, TraceGenerator

#: The 1x workload (matches bench_pipeline.py's trace).
BASE_CONFIG = GeneratorConfig(
    num_users=2_000, num_items=150, days=3, expected_sessions=15_000, seed=5
)


def build_trace(size: float) -> Trace:
    """The benchmark trace at ``size`` times the 1x workload."""
    return TraceGenerator(config=BASE_CONFIG.scaled(size)).generate()


def results_identical(a: SimulationResult, b: SimulationResult) -> bool:
    """Exact (not approximate) equality at every accounting level.

    Delegates to ``SimulationResult.identical_to`` -- the runtime's own
    canonical determinism check -- so new accounting fields are covered
    automatically.
    """
    return a.identical_to(b)


def time_run(simulator: Simulator, trace: Trace, repeat: int) -> tuple:
    """Best-of-``repeat`` wall-clock seconds and the (last) result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = simulator.run(trace)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_benchmark(
    sizes: Sequence[float], worker_counts: Sequence[int], repeat: int
) -> List[dict]:
    rows = []
    for size in sizes:
        trace = build_trace(size)
        print(
            f"\n-- trace {size:g}x: {len(trace)} sessions, "
            f"{len(trace.user_ids)} users, {trace.num_days} days --"
        )
        serial_secs, serial_result = time_run(
            Simulator(SimulationConfig(), backend=SerialBackend()), trace, repeat
        )
        rows.append(
            {"size": size, "workers": 1, "backend": "serial",
             "seconds": serial_secs, "speedup": 1.0, "identical": True}
        )
        print(f"   serial           {serial_secs:8.3f}s   1.00x")
        for workers in worker_counts:
            if workers <= 1:
                continue
            backend = ProcessPoolBackend(workers)
            secs, result = time_run(
                Simulator(SimulationConfig(), backend=backend), trace, repeat
            )
            identical = results_identical(serial_result, result)
            speedup = serial_secs / secs if secs > 0 else float("inf")
            rows.append(
                {"size": size, "workers": workers, "backend": "process",
                 "seconds": secs, "speedup": speedup, "identical": identical}
            )
            flag = "" if identical else "   !! RESULT MISMATCH"
            print(
                f"   process x{workers:<3d}     {secs:8.3f}s   "
                f"{speedup:.2f}x{flag}"
            )
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=float, nargs="+", default=[10.0],
        help="trace size multipliers over the 1x base (default: 10)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[2, 4],
        help="worker counts to benchmark against serial (default: 2 4)",
    )
    parser.add_argument(
        "--repeat", type=int, default=2, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: 1x trace, 2 workers, single repetition",
    )
    args = parser.parse_args(argv)

    sizes = [1.0] if args.quick else args.sizes
    workers = [2] if args.quick else args.workers
    repeat = 1 if args.quick else max(1, args.repeat)

    cores = os.cpu_count() or 1
    print(f"cpu cores: {cores}; sizes: {sizes}; workers: {workers}")
    if cores == 1:
        print("note: single-core host -- process-pool speedup is bounded at 1x")

    rows = run_benchmark(sizes, workers, repeat)

    mismatches = [r for r in rows if not r["identical"]]
    best = max((r["speedup"] for r in rows if r["backend"] == "process"), default=0.0)
    print(f"\nbest parallel speedup: {best:.2f}x; mismatches: {len(mismatches)}")
    return 1 if mismatches else 0


if __name__ == "__main__":
    sys.exit(main())
