"""Benchmark regenerating Fig. 5: savings decomposition vs capacity."""

import pytest

from repro.experiments.runner import run_experiment


def test_fig5_savings_decomposition(benchmark, settings, report_sink):
    report = benchmark(run_experiment, "fig5", settings)
    data = report.data

    for model in ("valancius", "baliga"):
        series = data[model]["series"]
        # CDN savings rise towards 1; user savings mirror them to -1.
        assert series["CDN"][-1][1] == pytest.approx(1.0, abs=0.01)
        assert series["User"][-1][1] == pytest.approx(-1.0, abs=0.01)
        # CC transfer starts at -1 (nobody shares) and ends positive.
        assert series["CC Transfer"][0][1] == pytest.approx(-1.0, abs=0.01)
        assert series["CC Transfer"][-1][1] > 0.0
        # End-to-end savings are monotone increasing in capacity.
        values = [s for _, s in series["End-to-End"]]
        assert values == sorted(values)

    # Asymptotes: +18 % (Valancius) / +58 % (Baliga), paper Section V.
    assert data["valancius"]["asymptotic_cct"] == pytest.approx(0.18, abs=0.01)
    assert data["baliga"]["asymptotic_cct"] == pytest.approx(0.58, abs=0.01)
    # Baliga's richer credit crosses zero at a smaller swarm.
    assert data["baliga"]["neutral_capacity"] < data["valancius"]["neutral_capacity"]
    report_sink("Fig. 5", report.render())
