"""Ablations of the paper's swarm-scoping choices.

The paper deliberately restricts swarms to be ISP-friendly and
bitrate-split, calling the result "a lower bound on achievable savings".
These ablations quantify both restrictions, plus the window-size
sensitivity of the simulator itself.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import VALANCIUS
from repro.experiments.config import city_trace
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.policies import SwarmPolicy


def test_isp_friendliness_costs_offload(benchmark, settings, report_sink):
    """Cross-ISP swarms merge audiences: G rises, and because cross-ISP
    transfers still beat the server slightly, so do savings -- the paper
    rejects them for transit cost, not energy."""
    trace = city_trace(settings)

    def run_both():
        friendly = Simulator(SimulationConfig(upload_ratio=1.0)).run(trace)
        merged = Simulator(
            SimulationConfig(
                upload_ratio=1.0,
                policy=SwarmPolicy(split_by_isp=False),
                allow_cross_isp_matching=True,
            )
        ).run(trace)
        return friendly, merged

    friendly, merged = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert merged.offload_fraction() >= friendly.offload_fraction()
    report_sink(
        "Ablation: ISP-friendly scoping",
        render_table(
            ["policy", "offload G", "S (valancius)"],
            [
                ["same-ISP only (paper)", f"{friendly.offload_fraction():.4f}",
                 f"{friendly.savings(VALANCIUS):.4f}"],
                ["cross-ISP allowed", f"{merged.offload_fraction():.4f}",
                 f"{merged.savings(VALANCIUS):.4f}"],
            ],
        ),
    )


def test_bitrate_split_costs_offload(benchmark, settings, report_sink):
    """Merging bitrate classes enlarges swarms and lifts G; the paper
    splits them because heterogeneous renditions cannot share chunks."""
    trace = city_trace(settings)

    def run_both():
        split = Simulator(SimulationConfig(upload_ratio=1.0)).run(trace)
        mixed = Simulator(
            SimulationConfig(
                upload_ratio=1.0, policy=SwarmPolicy(split_by_bitrate=False)
            )
        ).run(trace)
        return split, mixed

    split, mixed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert mixed.offload_fraction() >= split.offload_fraction()
    report_sink(
        "Ablation: bitrate-class splitting",
        render_table(
            ["policy", "offload G", "S (valancius)"],
            [
                ["split by bitrate (paper)", f"{split.offload_fraction():.4f}",
                 f"{split.savings(VALANCIUS):.4f}"],
                ["bitrates mixed", f"{mixed.offload_fraction():.4f}",
                 f"{mixed.savings(VALANCIUS):.4f}"],
            ],
        ),
    )


def test_window_size_sensitivity(benchmark, settings, report_sink):
    """Delta-tau robustness: the paper's 10 s is not load-bearing."""
    trace = city_trace(settings)

    def run_sweep():
        return {
            dt: Simulator(SimulationConfig(delta_tau=dt, upload_ratio=1.0)).run(trace)
            for dt in (2.0, 10.0, 30.0, 60.0)
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    baseline = results[10.0].savings(VALANCIUS)
    rows = []
    for dt, result in sorted(results.items()):
        s = result.savings(VALANCIUS)
        assert s == pytest.approx(baseline, abs=0.02)
        rows.append([f"{dt:.0f} s", f"{s:.4f}"])
    report_sink(
        "Ablation: window size delta-tau",
        render_table(["delta_tau", "S (valancius)"], rows),
    )
