"""Ablation: closest-first vs random peer matching.

"Consume local" is the paper's thesis -- peers should fetch from the
*nearest* peer, not just any peer.  This ablation runs the same trace
through both matchers: offload G is identical by construction (the same
volume moves), so any savings difference is pure locality.
"""

from repro.analysis.tables import render_table
from repro.core import BALIGA, VALANCIUS
from repro.experiments.config import city_trace
from repro.sim.engine import SimulationConfig, Simulator


def test_locality_is_where_the_savings_live(benchmark, settings, report_sink):
    trace = city_trace(settings)

    def run_both():
        closest = Simulator(SimulationConfig(upload_ratio=1.0)).run(trace)
        random_match = Simulator(
            SimulationConfig(upload_ratio=1.0, locality_aware_matching=False)
        ).run(trace)
        return closest, random_match

    closest, random_match = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # Essentially the same bytes move (the phased fluid matcher strands
    # a sliver of demand that single-phase random matching serves) ...
    ratio = random_match.total.total_peer_bits / max(closest.total.total_peer_bits, 1.0)
    assert 0.97 <= ratio <= 1.03

    rows = []
    for model in (VALANCIUS, BALIGA):
        s_closest = closest.savings(model)
        s_random = random_match.savings(model)
        # ... but closest-first converts them into more energy saved,
        # even while moving marginally fewer peer bytes.
        assert s_closest > s_random
        rows.append(
            [model.name, f"{s_closest:.4f}", f"{s_random:.4f}", f"{s_closest - s_random:+.4f}"]
        )
    report_sink(
        "Ablation: peer-matching locality",
        render_table(
            ["model", "S closest-first", "S random match", "locality premium"], rows
        ),
    )
