#!/usr/bin/env python
"""Service-mode benchmark/smoke: paced live replay with a forced restart.

Exercises the always-on coordinator (:mod:`repro.sim.service`) the way
an operator would run it, against the failure it is designed for:

* a seeded trace is replayed as a **live feed** -- the head is written
  up front, the tail appended in paced chunks while the coordinator
  tails the file mid-write;
* the coordinator is a real ``serve_jsonl`` subprocess; once it has
  emitted at least one epoch it is **SIGKILLed** and a fresh one is
  started over the same state dir, resuming from the checkpoint while
  the feed keeps growing;
* the benchmark **fails loudly** unless the sink holds every epoch
  exactly once (no duplicates, no gaps across the kill) and the
  restarted coordinator's cumulative result is **bit-for-bit
  identical** to one batch ``Simulator.run`` over the same trace under
  the epoch-scoped config;
* wall-clock for the batch baseline and the full serve (including the
  kill, the restart and the feed pacing -- reported honestly: service
  mode buys incremental results and crash recovery, not throughput) is
  recorded in ``BENCH_service.json`` at the repo root (override with
  ``--out``), extending the benchmark trajectory the other BENCH_*
  files accumulate.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py          # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.service import JsonlSink, ServiceConfig, SimulationService
from repro.trace.events import SECONDS_PER_DAY, Trace
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.loader import append_jsonl_end, save_jsonl, session_to_record

#: Default output path: the repo root, alongside the other BENCH_* files.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def launch_coordinator(
    feed: Path, state: Path, epoch_seconds: float, horizon: float
) -> subprocess.Popen:
    """Start a service coordinator exactly as an operator would."""
    env = os.environ.copy()
    package_root = Path(__file__).resolve().parent.parent / "src"
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        f"{package_root}{os.pathsep}{existing}" if existing else str(package_root)
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            str(feed),
            "--state-dir",
            str(state),
            "--epoch-seconds",
            str(epoch_seconds),
            "--horizon",
            str(horizon),
            "--poll-interval",
            "0.02",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for_epochs(sink: Path, count: int, timeout: float = 120.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if sink.exists() and len(JsonlSink.read(sink)) >= count:
            return
        time.sleep(0.05)
    raise RuntimeError(f"sink never reached {count} epoch(s) in {timeout}s")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--num-users", type=int, default=2_000, help="trace population"
    )
    parser.add_argument(
        "--num-items", type=int, default=60, help="catalogue size"
    )
    parser.add_argument(
        "--sessions", type=float, default=20_000.0, help="expected sessions"
    )
    parser.add_argument("--days", type=int, default=3, help="trace length")
    parser.add_argument("--seed", type=int, default=20130901, help="master seed")
    parser.add_argument(
        "--chunks", type=int, default=10,
        help="paced append chunks for the feed tail (default: 10)",
    )
    parser.add_argument(
        "--pace", type=float, default=0.05,
        help="seconds between tail chunks (default: 0.05)",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"where to write the JSON record (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: smaller trace (explicit flags still win)",
    )
    args = parser.parse_args(argv)

    num_users, sessions = args.num_users, args.sessions
    if args.quick:
        if args.num_users == parser.get_default("num_users"):
            num_users = 600
        if args.sessions == parser.get_default("sessions"):
            sessions = 4_000.0

    generator = GeneratorConfig(
        num_users=num_users,
        num_items=args.num_items,
        days=args.days,
        expected_sessions=sessions,
        seed=args.seed,
    )
    trace = TraceGenerator(config=generator).generate()
    epoch_seconds = SECONDS_PER_DAY
    service_config = ServiceConfig(
        simulation=SimulationConfig(),
        epoch_seconds=epoch_seconds,
        horizon=trace.horizon,
    )
    expected_epochs = (
        int(max(s.start for s in trace.sessions) // epoch_seconds) + 1
    )
    print(
        f"service benchmark: {len(trace)} sessions replayed live over "
        f"{expected_epochs} epoch(s), one SIGKILL mid-run"
    )

    violations: List[str] = []

    # Batch baseline under the epoch-scoped config (the exactness
    # reference AND the throughput yardstick).
    start = time.perf_counter()
    batch = Simulator(service_config.scoped_config).run(trace)
    batch_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="bench-service-") as temp_dir:
        feed = Path(temp_dir) / "feed.jsonl"
        state = Path(temp_dir) / "state"
        sink = state / "results.jsonl"

        # The head of the feed exists before the coordinator starts;
        # enough of day 1 follows that epoch 0 closes and checkpoints.
        cutoff = 1.5 * epoch_seconds
        head = [s for s in trace.sessions if s.start < cutoff]
        tail = [s for s in trace.sessions if s.start >= cutoff]
        save_jsonl(Trace.from_sessions(head, horizon=trace.horizon), feed)

        start = time.perf_counter()
        victim = launch_coordinator(feed, state, epoch_seconds, trace.horizon)
        try:
            wait_for_epochs(sink, 1)
            os.kill(victim.pid, signal.SIGKILL)  # the forced restart
        finally:
            victim.wait(timeout=30)
        kill_seconds = time.perf_counter() - start
        epochs_before_kill = len(JsonlSink.read(sink))

        # The feed keeps growing while nobody is listening, then the
        # replacement coordinator catches up from the checkpoint.
        chunk = max(1, len(tail) // max(1, args.chunks))
        survivor = launch_coordinator(feed, state, epoch_seconds, trace.horizon)
        with feed.open("a", encoding="utf-8") as handle:
            for offset in range(0, len(tail), chunk):
                for session in tail[offset : offset + chunk]:
                    handle.write(json.dumps(session_to_record(session)) + "\n")
                handle.flush()
                time.sleep(args.pace)
        append_jsonl_end(feed)
        code = survivor.wait(timeout=300)
        serve_seconds = time.perf_counter() - start
        if code != 0:
            violations.append(f"restarted coordinator exited with code {code}")

        # Exactly-once emission: every epoch present, none twice.
        records = JsonlSink.read(sink)
        emitted = [record["epoch"] for record in records]
        if emitted != list(range(expected_epochs)):
            violations.append(
                f"sink epochs {emitted} are not exactly 0..{expected_epochs - 1}"
            )
        if sum(record["sessions"] for record in records) != len(trace):
            violations.append("sink session counts do not cover the trace")

        # Bit-for-bit batch parity of the cumulative fold across the kill.
        final = SimulationService(service_config, state)
        try:
            cumulative = final.result()
        finally:
            final.close()
        if not cumulative.identical_to(batch):
            violations.append(
                "cumulative service result differs from the batch run"
            )

    print(
        f"   batch run: {batch_seconds:7.3f}s   live serve (paced feed, "
        f"kill at {kill_seconds:5.2f}s after {epochs_before_kill} epoch(s), "
        f"restart): {serve_seconds:7.3f}s"
    )

    record = {
        "benchmark": "bench_service",
        "sessions": len(trace),
        "epochs": expected_epochs,
        "epoch_seconds": epoch_seconds,
        "batch_seconds": batch_seconds,
        "serve_seconds": serve_seconds,
        "kill_after_seconds": kill_seconds,
        "epochs_before_kill": epochs_before_kill,
        "violations": violations,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if violations:
        for violation in violations:
            print(f"VIOLATION: {violation}")
        return 1
    print(
        "ok: coordinator SIGKILLed and restarted mid-stream; every epoch "
        "emitted exactly once, cumulative result bit-for-bit equal to batch"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
