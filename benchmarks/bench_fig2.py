"""Benchmark regenerating Fig. 2: savings vs capacity, theory vs sim.

Asserts the figure's qualitative content: savings grow with popularity
tier, with the q/beta ratio, and the Eq. 12 curve tracks the simulated
dots.
"""

import pytest

from repro.experiments.runner import run_experiment


def test_fig2_savings_vs_capacity(benchmark, settings, report_sink):
    report = benchmark.pedantic(
        run_experiment, args=("fig2", settings), rounds=1, iterations=1
    )
    data = report.data

    for model in ("valancius", "baliga"):
        # Popularity ordering (paper: left column >> right column).
        popular = data[f"{model}/tier-popular/1.0"]["sim_mean"]
        medium = data[f"{model}/tier-medium/1.0"]["sim_mean"]
        unpopular = data[f"{model}/tier-unpopular/1.0"]["sim_mean"]
        assert popular > medium > unpopular

        # Upload-ratio ordering within the popular tier.
        ratios = [data[f"{model}/tier-popular/{r}"]["sim_mean"] for r in (0.2, 0.6, 1.0)]
        assert ratios == sorted(ratios)

        # Theory tracks simulation (the paper's "good agreement").
        assert data[f"{model}/tier-popular/1.0"]["mae"] < 0.1

    # Valancius sits above Baliga at every tier (paper rows).
    assert (
        data["valancius/tier-popular/1.0"]["sim_mean"]
        > data["baliga/tier-popular/1.0"]["sim_mean"]
    )
    report_sink("Fig. 2", report.render())
