"""Benchmark regenerating Fig. 3: per-swarm capacity and savings CCDFs."""

from repro.experiments.config import paper_simulation
from repro.experiments.runner import run_experiment


def test_fig3_catalogue_distributions(benchmark, settings, report_sink):
    paper_simulation(settings)  # warm the shared simulation cache
    report = benchmark.pedantic(
        run_experiment, args=("fig3", settings), rounds=1, iterations=1
    )

    # Heavy tail: the busiest swarm dwarfs the median (paper Fig. 3 left).
    capacity = report.data["capacity"]
    assert capacity["max"] > 10 * capacity["median"]

    # Savings skew: median item saves a sliver, the head saves a lot
    # (paper: median ~2 %, top-1 % capture 21-33 % of saved energy).
    for model in ("valancius", "baliga"):
        stats = report.data[model]
        assert stats["median_item_savings"] < 0.1
        assert stats["top1pct_share_of_savings"] > 0.05
        assert stats["max_item_savings"] > stats["median_item_savings"]
    report_sink("Fig. 3", report.render())
