"""Extension benchmarks: partial participation and lingering seeds.

The paper's conclusion flags both as future work -- Akamai-style partial
participation ("as little as 30 % of its users participate") and caching
schemes.  These benches sweep each knob through the simulator and check
the semi-closed forms in :mod:`repro.core.extensions` against it.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import VALANCIUS
from repro.core.extensions import (
    energy_savings_extended,
    offload_fraction_with_linger,
    offload_fraction_with_participation,
)
from repro.experiments.config import city_trace
from repro.sim.engine import SimulationConfig, Simulator


def test_participation_sweep(benchmark, settings, report_sink):
    """Savings vs participation rate (the Akamai 30 % reality check)."""
    trace = city_trace(settings)
    rates = (0.1, 0.3, 0.5, 1.0)

    def run_sweep():
        return {
            rate: Simulator(
                SimulationConfig(upload_ratio=1.0, participation_rate=rate)
            ).run(trace)
            for rate in rates
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    previous = -1.0
    for rate in rates:
        result = results[rate]
        s = result.savings(VALANCIUS)
        assert s >= previous  # more participation, more savings
        previous = s
        rows.append([f"{rate:.0%}", f"{result.offload_fraction():.4f}", f"{s:.4f}"])
    # At Akamai's 30 %, savings survive but are a fraction of the ideal.
    assert results[0.3].savings(VALANCIUS) < results[1.0].savings(VALANCIUS)
    assert results[0.3].savings(VALANCIUS) > 0.0
    report_sink(
        "Extension: participation rate",
        render_table(["participation", "offload G", "S (valancius)"], rows),
    )


def test_linger_sweep(benchmark, settings, report_sink):
    """Savings vs post-viewing seeding time (the caching extension)."""
    trace = city_trace(settings)
    mean_duration = trace.total_watch_seconds() / max(len(trace), 1)
    lingers = (0.0, 0.5, 2.0)

    def run_sweep():
        return {
            ratio: Simulator(
                SimulationConfig(
                    upload_ratio=1.0, seed_linger_seconds=ratio * mean_duration
                )
            ).run(trace)
            for ratio in lingers
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    previous = -1.0
    for ratio in lingers:
        result = results[ratio]
        s = result.savings(VALANCIUS)
        assert s >= previous  # longer caching, more savings
        previous = s
        rows.append([f"{ratio:.1f} x mean session", f"{result.offload_fraction():.4f}", f"{s:.4f}"])
    report_sink(
        "Extension: lingering seeds (caching)",
        render_table(["linger time", "offload G", "S (valancius)"], rows),
    )


def test_extension_closed_forms(benchmark):
    """The semi-closed forms evaluate fast enough for planning sweeps."""

    def sweep():
        out = []
        for c in (0.5, 2.0, 10.0, 50.0):
            out.append(offload_fraction_with_participation(c, 0.3))
            out.append(offload_fraction_with_linger(c, 1.0, upload_ratio=0.5))
            out.append(energy_savings_extended(c, VALANCIUS, linger_ratio=1.0))
        return out

    values = benchmark(sweep)
    assert all(-1.0 <= v <= 1.0 for v in values)
