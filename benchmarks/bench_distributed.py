#!/usr/bin/env python
"""Distributed-backend benchmark/smoke: coordinator + real worker processes.

Exercises the whole multi-host contract on one machine: a coordinator
(:class:`repro.sim.backends.DistributedBackend` with ``spawn=False``)
publishes jobs onto a file-based work queue in a shared directory, and
**independently launched** worker processes -- started exactly the way
an operator would on another host, ``python -m repro.sim.worker
--queue-dir DIR`` -- claim, execute and ack the work.  The benchmark

* runs a single-config simulation (external grouping + streaming
  reduction, the out-of-core pipeline) and a 3-ratio sweep through the
  queue, and **fails loudly** unless both are bit-for-bit identical to
  their serial baselines;
* fails unless the work actually went through the queue in several
  work items (so a degenerate one-block run cannot pass);
* shuts the workers down via the queue's STOP file and fails if any
  worker exited uncleanly;
* records wall-clock for serial vs distributed and the queue shape in
  ``BENCH_distributed.json`` at the repo root (override with
  ``--out``), extending the benchmark trajectory the other BENCH_*
  files accumulate.

On a single-core container the distributed run is *slower* than serial
(two workers time-share one core and pay queue latency); the benchmark
asserts correctness and queue mechanics, and reports timing honestly
-- speedup is what multi-host hardware buys.

Usage::

    PYTHONPATH=src python benchmarks/bench_distributed.py          # full
    PYTHONPATH=src python benchmarks/bench_distributed.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.sim.backends import DistributedBackend, SerialBackend
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.grouping import ExternalGrouping
from repro.sim.worker import EXIT_STOP_FILE, STOP_FILENAME
from repro.trace.generator import GeneratorConfig, TraceGenerator

#: Default output path: the repo root, alongside the other BENCH_* files.
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"

#: The sweep exercised through the queue (a slice of the Fig. 2 axis).
SWEEP_RATIOS = (0.2, 0.6, 1.0)


def launch_worker(queue_dir: Path, index: int, poll: float) -> subprocess.Popen:
    """Start one worker exactly as an operator on another host would."""
    env = os.environ.copy()
    package_root = Path(__file__).resolve().parent.parent / "src"
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        f"{package_root}{os.pathsep}{existing}" if existing else str(package_root)
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.sim.worker",
            "--queue-dir",
            str(queue_dir),
            "--poll-interval",
            str(poll),
            "--worker-id",
            f"bench-worker-{index}",
        ],
        env=env,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--num-users", type=int, default=2_000, help="trace population"
    )
    parser.add_argument(
        "--num-items", type=int, default=60, help="catalogue size"
    )
    parser.add_argument(
        "--sessions", type=float, default=20_000.0, help="expected sessions"
    )
    parser.add_argument("--days", type=int, default=3, help="trace length")
    parser.add_argument(
        "--num-workers", type=int, default=2,
        help="worker processes to launch (default: 2)",
    )
    parser.add_argument("--seed", type=int, default=20130901, help="master seed")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"where to write the JSON record (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: smaller trace (explicit flags still win)",
    )
    args = parser.parse_args(argv)

    num_users, sessions = args.num_users, args.sessions
    if args.quick:
        if args.num_users == parser.get_default("num_users"):
            num_users = 800
        if args.sessions == parser.get_default("sessions"):
            sessions = 6_000.0

    config = GeneratorConfig(
        num_users=num_users,
        num_items=args.num_items,
        days=args.days,
        expected_sessions=sessions,
        seed=args.seed,
    )
    trace = TraceGenerator(config=config).generate()
    print(
        f"distributed benchmark: {len(trace)} sessions / "
        f"{args.num_workers} worker processes over a shared file queue"
    )

    violations: List[str] = []
    sweep_configs = [SimulationConfig(upload_ratio=r) for r in SWEEP_RATIOS]

    # Serial baselines (and their wall-clock).
    start = time.perf_counter()
    serial_single = Simulator(SimulationConfig(), backend=SerialBackend()).run(trace)
    serial_single_seconds = time.perf_counter() - start
    start = time.perf_counter()
    serial_sweep = [
        Simulator(cfg, backend=SerialBackend()).run(trace) for cfg in sweep_configs
    ]
    serial_sweep_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="bench-distributed-") as temp_dir:
        queue_dir = Path(temp_dir) / "queue"
        queue_dir.mkdir()
        workers = [
            launch_worker(queue_dir, index, poll=0.05)
            for index in range(args.num_workers)
        ]
        # spawn=False: every result must come from the externally
        # launched workers -- the coordinator cannot "help".
        backend = DistributedBackend(
            workers=args.num_workers,
            queue_dir=queue_dir,
            spawn=False,
            lease_timeout=60.0,
            shard_quantum=max(200, int(sessions) // 40),
        )
        try:
            run_config = SimulationConfig(
                reduction="streaming", grouping="external"
            )
            simulator = Simulator(
                run_config,
                backend=backend,
                grouping=ExternalGrouping(
                    shard_dir=Path(temp_dir) / "shards", run_sessions=50_000
                ),
            )
            start = time.perf_counter()
            distributed_single = simulator.run(trace)
            distributed_single_seconds = time.perf_counter() - start
            reduction = simulator.last_reduction

            start = time.perf_counter()
            distributed_sweep = simulator.run_sweep(trace, sweep_configs)
            distributed_sweep_seconds = time.perf_counter() - start

            if not serial_single.identical_to(distributed_single):
                violations.append(
                    "distributed single-config result differs from serial"
                )
            for ratio, base, swept in zip(
                SWEEP_RATIOS, serial_sweep, distributed_sweep
            ):
                if not base.identical_to(swept):
                    violations.append(
                        f"distributed sweep result at q/beta={ratio} differs "
                        f"from serial"
                    )
            if reduction.blocks < 2:
                violations.append(
                    f"single run used {reduction.blocks} work item(s); "
                    f"expected the queue to carry several"
                )
        finally:
            (queue_dir / STOP_FILENAME).touch()
            exit_codes = []
            for proc in workers:
                try:
                    exit_codes.append(proc.wait(timeout=30))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    exit_codes.append(proc.wait())
                    violations.append("a worker had to be killed at shutdown")
            backend.close()
        # Workers report *why* they exited; a STOP-file shutdown must
        # come back as exactly EXIT_STOP_FILE -- anything else (fatal,
        # rss-limit, a bare 0 from a codepath that bypassed the reason
        # machinery) is a contract violation.
        for index, code in enumerate(exit_codes):
            if code != EXIT_STOP_FILE:
                violations.append(
                    f"worker {index} exited with code {code}; expected "
                    f"EXIT_STOP_FILE ({EXIT_STOP_FILE}) after queue shutdown"
                )

    print(
        f"   single run: serial {serial_single_seconds:7.3f}s  "
        f"distributed {distributed_single_seconds:7.3f}s  "
        f"({reduction.blocks} work items, peak resident "
        f"{reduction.peak_resident} blocks)"
    )
    print(
        f"   {len(SWEEP_RATIOS)}-ratio sweep: serial "
        f"{serial_sweep_seconds:7.3f}s  distributed "
        f"{distributed_sweep_seconds:7.3f}s"
    )

    record = {
        "benchmark": "bench_distributed",
        "sessions": len(trace),
        "num_workers": args.num_workers,
        "sweep_ratios": list(SWEEP_RATIOS),
        "single": {
            "serial_seconds": serial_single_seconds,
            "distributed_seconds": distributed_single_seconds,
            "work_items": reduction.blocks,
            "peak_resident_blocks": reduction.peak_resident,
        },
        "sweep": {
            "serial_seconds": serial_sweep_seconds,
            "distributed_seconds": distributed_sweep_seconds,
        },
        "worker_exit_codes": exit_codes,
        "violations": violations,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if violations:
        for violation in violations:
            print(f"VIOLATION: {violation}")
        return 1
    print(
        "ok: independently launched workers served the queue, results "
        "bit-for-bit identical to serial, workers exited cleanly"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
