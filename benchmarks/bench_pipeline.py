"""Throughput benchmarks of the two computational substrates.

Not a paper artefact -- these measure the cost of the machinery itself
(sessions generated per second, sessions simulated per second and the
closed-form evaluation rate), so regressions in the engine show up
directly.
"""

import pytest

from repro.core import SavingsModel, VALANCIUS
from repro.sim.engine import SimulationConfig, Simulator
from repro.trace.generator import GeneratorConfig, TraceGenerator

_CONFIG = GeneratorConfig(
    num_users=2_000, num_items=150, days=3, expected_sessions=15_000, seed=5
)


@pytest.fixture(scope="module")
def trace():
    return TraceGenerator(config=_CONFIG).generate()


def test_trace_generation_throughput(benchmark):
    trace = benchmark.pedantic(
        lambda: TraceGenerator(config=_CONFIG).generate(), rounds=3, iterations=1
    )
    assert len(trace) > 10_000


def test_simulation_throughput(benchmark, trace):
    simulator = Simulator(SimulationConfig(upload_ratio=1.0))
    result = benchmark.pedantic(lambda: simulator.run(trace), rounds=3, iterations=1)
    assert result.total.demanded_bits > 0


def test_master_equation_evaluation_rate(benchmark):
    model = SavingsModel(VALANCIUS)
    grid = [10 ** (-3 + 7 * i / 499) for i in range(500)]

    def sweep():
        return [model.savings(c) for c in grid]

    values = benchmark(sweep)
    assert len(values) == 500
