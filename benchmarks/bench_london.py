#!/usr/bin/env python
"""Month-of-London driver: the paper's Table I workload, end to end.

The paper's headline dataset (Table I) is one month of BBC iPlayer
catch-up TV for London: **3.3M users, 23.5M sessions, 30 days**.  This
driver runs that workload -- density-scalable -- through the full
out-of-core pipeline:

    TraceGenerator.iter_sessions()        (lazy generation; no Trace)
        -> grouping="external"            (external merge-sort into a
                                           sorted shard file; manifest
                                           extents, not session lists)
        -> backend workers                 (decode their own extents;
                                           zero session pickling)
        -> reduction="spill"              (per-user deltas on disk
                                           until the result is built)

and reports the Table I numbers realised by the run (users, IPs,
sessions, hours watched) together with the paper-policy savings and --
the point of the exercise -- the coordinator's peak RSS, which stays
bounded by the sort buffer + the final result instead of the trace.

``--density 1.0`` is the full 23.5M-session month: run it on a machine
with several cores and a few GB of disk (the sorted shard is ~1.3 GB at
56 bytes/session).  ``--quick`` is the CI smoke preset (~15K sessions,
tiny sort buffer so spill-and-merge genuinely happens); the default
density 0.01 is laptop-sized.

Usage::

    PYTHONPATH=src python benchmarks/bench_london.py --quick
    PYTHONPATH=src python benchmarks/bench_london.py --density 0.05 --workers 4
    PYTHONPATH=src python benchmarks/bench_london.py --density 1.0 \\
        --workers 16 --shard-dir /scratch/london

Run standalone (argparse, not pytest) so CI and operators can invoke it
without the benchmark plugin stack.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.energy import builtin_models
from repro.experiments.config import CITY_DEVICE_MIX
from repro.sim.backends import BACKEND_NAMES
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.grouping import ExternalGrouping
from repro.sim.profiling import PROFILE
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.stats import USERS_PER_IP

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_london.json"

#: The paper's Table I, Sep 2013 column -- the density-1.0 targets.
PAPER_USERS = 3_300_000
PAPER_SESSIONS = 23_500_000.0
PAPER_DAYS = 30

#: Catalogue size at density 1.0.  iPlayer's monthly catalogue is in
#: the low thousands; what matters for the physics is per-item view
#: counts, which the Zipf head reproduces at this size.
PAPER_ITEMS = 3_000


def london_config(density: float, seed: int) -> GeneratorConfig:
    """The Table I workload scaled by ``density`` (1.0 = the paper)."""
    return GeneratorConfig(
        num_users=max(100, int(PAPER_USERS * density)),
        num_items=max(20, int(PAPER_ITEMS * min(1.0, density * 4))),
        days=PAPER_DAYS,
        expected_sessions=PAPER_SESSIONS * density,
        seed=seed,
    )


def peak_rss_mb() -> float:
    """This process's peak resident set size, in MB (Linux: KB units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def fmt_count(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}K"
    return f"{value:,.0f}"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--density", type=float, default=0.01,
        help="fraction of the paper's month (1.0 = 3.3M users / 23.5M "
        "sessions; default 0.01)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the simulation (default: 1 = serial)",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="execution backend (default: auto from --workers); "
        "'distributed' fans shards out over a file-based work queue "
        "(workers on any host sharing --queue-dir and the shard file)",
    )
    parser.add_argument(
        "--queue-dir", default=None,
        help="with --backend distributed: the shared work-queue root "
        "(default: a private temporary queue with local workers)",
    )
    parser.add_argument(
        "--run-sessions", type=int, default=None,
        help="external-sort buffer size in sessions (default: 1M, or "
        "5K with --quick) -- the coordinator's grouping footprint",
    )
    parser.add_argument(
        "--shard-dir", default=None,
        help="keep the sorted session shard in this directory "
        "(default: a temporary shard, removed after the run)",
    )
    parser.add_argument(
        "--seed", type=int, default=20130901, help="master seed",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"result JSON path (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke preset: tiny density and sort buffer (explicit "
        "flags still win)",
    )
    args = parser.parse_args(argv)

    density = args.density
    run_sessions = args.run_sessions
    if args.quick:
        if args.density == parser.get_default("density"):
            density = 0.0006  # ~15K sessions, ~2K users
        if run_sessions is None:
            run_sessions = 5_000  # force real spill-and-merge
    if run_sessions is None:
        run_sessions = 1_000_000
    if density <= 0:
        parser.error(f"--density must be > 0, got {density}")

    if args.queue_dir is not None and args.backend != "distributed":
        parser.error("--queue-dir requires --backend distributed")
    config = london_config(density, args.seed)
    sim_config = SimulationConfig(
        workers=args.workers if args.workers > 1 else None,
        backend=args.backend,
        queue_dir=args.queue_dir,
        reduction="spill",
        grouping="external",
    )
    generator = TraceGenerator(config=config, device_mix=CITY_DEVICE_MIX)
    simulator = Simulator(
        sim_config,
        grouping=ExternalGrouping(
            shard_dir=args.shard_dir, run_sessions=run_sessions
        ),
    )

    print(
        f"month of London at density {density:g}: "
        f"~{fmt_count(config.expected_sessions)} sessions expected from "
        f"{fmt_count(config.num_users)} users, {config.days} days, "
        f"{config.num_items} items"
    )
    print(
        f"pipeline: iter_sessions -> external grouping "
        f"(sort buffer {run_sessions:,} sessions) -> "
        f"{simulator.backend.name} backend -> spill reduction"
    )

    rss_before = peak_rss_mb()
    start = time.perf_counter()
    # Phase profiling is per-process: with parallel backends the decode
    # runs in the workers, so the coordinator's counters only capture
    # the serial/inline share of the ingest.
    PROFILE.enabled = True
    PROFILE.reset()
    try:
        result = simulator.run_stream(generator.iter_sessions(), config.horizon)
    finally:
        PROFILE.enabled = False
        # The distributed backend owns spawned workers + maybe a temp queue.
        simulator.close()
    seconds = time.perf_counter() - start
    decode_seconds = PROFILE.decode_seconds
    fused_tasks = PROFILE.fused_tasks

    grouping = simulator.last_grouping
    reduction = simulator.last_reduction
    num_users = len(result.per_user)
    num_sessions = result.total.sessions

    print(f"\n== Table I (realised at density {density:g}) ==")
    rows = [
        ("Number of Users", fmt_count(num_users)),
        ("Number of IP addresses", fmt_count(round(num_users / USERS_PER_IP))),
        ("Number of Sessions", fmt_count(num_sessions)),
        ("Days covered", str(config.days)),
        ("Hours watched", fmt_count(result.total.watch_seconds / 3600.0)),
        (
            "Mean concurrent viewers",
            f"{result.total.watch_seconds / config.horizon:,.1f}",
        ),
    ]
    for label, value in rows:
        print(f"   {label:<26} {value}")

    print("\n== Paper-policy savings ==")
    print(f"   offload fraction G: {result.offload_fraction():.4f}")
    for model in builtin_models():
        print(f"   {model.name:>10}: savings {result.savings(model):.4f}")

    print("\n== Pipeline accounting ==")
    print(
        f"   grouping: {grouping.tasks:,} swarms from {grouping.sessions:,} "
        f"sessions; peak buffered {grouping.peak_buffered_sessions:,} "
        f"sessions; {grouping.runs_spilled} runs spilled"
    )
    print(
        f"   reduction: {reduction.outputs:,} outputs in "
        f"{reduction.blocks:,} blocks; peak resident "
        f"{reduction.peak_resident} blocks"
    )
    if grouping.shard_path is not None:
        print(f"   sorted shard kept at: {grouping.shard_path}")
    ingest_rate = num_sessions / decode_seconds if decode_seconds > 0 else 0.0
    if decode_seconds > 0:
        print(
            f"   ingest decode: {decode_seconds:,.2f}s "
            f"({ingest_rate:,.0f} sessions/s, {fused_tasks:,} swarms "
            f"fused-decoded)"
        )
    print(f"   wall clock: {seconds:,.1f}s")
    print(
        f"   coordinator peak RSS: {peak_rss_mb():,.1f} MB "
        f"(was {rss_before:,.1f} MB before the run)"
    )

    record = {
        "benchmark": "bench_london",
        "density": density,
        "seed": args.seed,
        "days": config.days,
        "backend": simulator.backend.name,
        "workers": args.workers,
        "run_sessions": run_sessions,
        "sessions": num_sessions,
        "users": num_users,
        "swarms": grouping.tasks,
        "wall_seconds": seconds,
        "decode_seconds": decode_seconds,
        "ingest_sessions_per_second": ingest_rate,
        "fused_tasks": fused_tasks,
        "offload_fraction": result.offload_fraction(),
        "peak_rss_mb": peak_rss_mb(),
        "runs_spilled": grouping.runs_spilled,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"   wrote {args.out}")

    # Sanity gates: the run must actually have exercised the pipeline.
    failures = []
    if num_sessions == 0:
        failures.append("no sessions were simulated")
    if grouping.mode != "external":
        failures.append(f"grouping mode was {grouping.mode!r}, not external")
    if grouping.peak_buffered_sessions > run_sessions:
        failures.append(
            f"grouping buffered {grouping.peak_buffered_sessions} sessions, "
            f"exceeding the {run_sessions} sort buffer"
        )
    if grouping.sessions > run_sessions and grouping.runs_spilled == 0:
        failures.append(
            "trace exceeded the sort buffer but no runs were spilled"
        )
    if reduction.mode != "spill":
        failures.append(f"reduction mode was {reduction.mode!r}, not spill")
    if failures:
        print()
        for failure in failures:
            print(f"VIOLATION: {failure}")
        return 1
    print(
        "\nok: full out-of-core pipeline (lazy generation -> external "
        "grouping -> manifest-fed workers -> spill reduction) completed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
