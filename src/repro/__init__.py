"""consume-local: reproduction of "Consume Local: Towards Carbon Free
Content Delivery" (Raman et al., IEEE ICDCS 2018).

The package has five layers, bottom-up:

* :mod:`repro.topology` -- the ISP metropolitan tree substrate,
* :mod:`repro.trace` -- the workload substrate (synthetic stand-in for
  the proprietary BBC iPlayer trace),
* :mod:`repro.core` -- the paper's analytical model (Eqs. 1-13),
* :mod:`repro.sim` -- the discrete time-step hybrid-CDN simulator,
* :mod:`repro.experiments` -- drivers reproducing every table and figure.

Quickstart::

    from repro.core import SavingsModel, VALANCIUS

    model = SavingsModel(VALANCIUS)
    model.savings(capacity=100)   # end-to-end energy savings, Eq. 12
"""

from repro.core import (
    BALIGA,
    EnergyModel,
    LayerProbabilities,
    LONDON_LAYERS,
    SavingsModel,
    VALANCIUS,
    carbon_credit_transfer,
    energy_savings,
    offload_fraction,
)
from repro.sim import SimulationConfig, Simulator, simulate
from repro.trace import GeneratorConfig, Trace, TraceGenerator, generate_trace

__version__ = "1.0.0"

__all__ = [
    "BALIGA",
    "EnergyModel",
    "GeneratorConfig",
    "LONDON_LAYERS",
    "LayerProbabilities",
    "SavingsModel",
    "SimulationConfig",
    "Simulator",
    "Trace",
    "TraceGenerator",
    "VALANCIUS",
    "__version__",
    "carbon_credit_transfer",
    "energy_savings",
    "generate_trace",
    "offload_fraction",
    "simulate",
]
