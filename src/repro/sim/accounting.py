"""Byte ledgers and energy accounting for simulation runs.

The simulator deliberately accounts in **bytes by path class**, not in
energy: a :class:`ByteLedger` records how many bits were served by the
CDN and how many peer-to-peer at each localisation layer.  Energy (and
therefore savings) is applied *afterwards* for any
:class:`~repro.core.energy.EnergyModel` -- so a single simulation run
yields both the Valancius and the Baliga numbers, exactly like the
paper's twin columns.

Savings definition (paper Eq. 1)::

    S_sim = 1 - E_hybrid / E_cdn_only

where ``E_cdn_only`` prices *all* demanded bits at the server per-bit
cost ``psi_s`` and ``E_hybrid`` prices the ledger as recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.core.energy import EnergyModel
from repro.topology.layers import NetworkLayer

__all__ = ["ByteLedger", "hybrid_energy_nj", "baseline_energy_nj", "savings"]


@dataclass(slots=True)
class ByteLedger:
    """Bits moved during (part of) a simulation, by path class.

    ``slots=True``: one ledger exists per swarm, per (ISP, day) and per
    reduction accumulator, and the kernel increments its fields in the
    per-stretch hot loop.

    Attributes:
        server_bits: bits streamed from CDN servers.
        peer_bits: bits streamed peer-to-peer, keyed by the layer where
            the path turned around; the :attr:`NetworkLayer.SERVER` key
            holds cross-ISP peer bits (transit-priced), which only the
            non-ISP-friendly ablation produces.
        demanded_bits: total bits streamed (server + peer); kept
            explicitly so savings can be computed without re-deriving.
        watch_seconds: user-seconds of viewing covered by this ledger
            (drives measured-capacity statistics).
        sessions: number of sessions that contributed.
    """

    server_bits: float = 0.0
    peer_bits: Dict[NetworkLayer, float] = field(default_factory=dict)
    demanded_bits: float = 0.0
    watch_seconds: float = 0.0
    sessions: int = 0

    @property
    def total_peer_bits(self) -> float:
        return sum(self.peer_bits.values())

    @property
    def offload_fraction(self) -> float:
        """Measured ``G``: share of demanded bits served by peers."""
        if self.demanded_bits <= 0:
            return 0.0
        return self.total_peer_bits / self.demanded_bits

    def add_server_bits(self, bits: float) -> None:
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits!r}")
        self.server_bits += bits

    def add_peer_bits(self, layer: NetworkLayer, bits: float) -> None:
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits!r}")
        self.peer_bits[layer] = self.peer_bits.get(layer, 0.0) + bits

    def copy(self) -> "ByteLedger":
        """An independent ledger with the same totals."""
        return ByteLedger(
            server_bits=self.server_bits,
            peer_bits=dict(self.peer_bits),
            demanded_bits=self.demanded_bits,
            watch_seconds=self.watch_seconds,
            sessions=self.sessions,
        )

    def merge(self, other: "ByteLedger") -> None:
        """Fold another ledger into this one in place.

        Merging is associative up to float rounding, which is what lets
        partial ledgers from parallel swarm shards reduce in any
        grouping (:func:`merged` and the sim runtime always fold in a
        canonical order, making the reduction bit-for-bit
        deterministic).
        """
        self.server_bits += other.server_bits
        for layer, bits in other.peer_bits.items():
            self.peer_bits[layer] = self.peer_bits.get(layer, 0.0) + bits
        self.demanded_bits += other.demanded_bits
        self.watch_seconds += other.watch_seconds
        self.sessions += other.sessions

    @classmethod
    def merged(cls, ledgers: Iterable["ByteLedger"]) -> "ByteLedger":
        """A fresh ledger holding the sum of the given ones."""
        total = cls()
        for ledger in ledgers:
            total.merge(ledger)
        return total


def hybrid_energy_nj(ledger: ByteLedger, model: EnergyModel) -> float:
    """Energy (nJ) of the hybrid run recorded in ``ledger``.

    Server bits are priced at ``psi_s``; peer bits at ``psi_p`` for their
    layer; cross-ISP peer bits (the :attr:`NetworkLayer.SERVER` key) at
    two modem traversals plus the PUE-inflated transit network
    (consistent with :func:`repro.topology.routing.transfer_energy_nj`).
    """
    energy = model.server_energy_nj(ledger.server_bits)
    for layer, bits in ledger.peer_bits.items():
        if layer is NetworkLayer.SERVER:
            energy += bits * (
                model.psi_peer_modem + model.pue * model.gamma_cdn_network
            )
        else:
            energy += model.peer_energy_nj(bits, layer)
    return energy


def baseline_energy_nj(ledger: ByteLedger, model: EnergyModel) -> float:
    """Energy (nJ) had every demanded bit come from the CDN (no P2P)."""
    return model.server_energy_nj(ledger.demanded_bits)


def savings(ledger: ByteLedger, model: EnergyModel) -> float:
    """Simulated energy savings ``S_sim = 1 - E_hybrid / E_cdn`` (Eq. 1).

    Returns 0.0 for an empty ledger (no traffic, nothing to save).
    """
    baseline = baseline_energy_nj(ledger, model)
    if baseline <= 0.0:
        return 0.0
    return 1.0 - hybrid_energy_nj(ledger, model) / baseline
