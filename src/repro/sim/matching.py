"""Closest-first peer matching within one simulation window.

The paper's simulator "matches peers that are closest to each other"
(Section IV.A).  We implement that as a three-phase fluid allocation over
the ISP tree -- peers satisfy as much demand as possible at the exchange
point, then within the PoP, then across the metro core; whatever remains
is streamed from the CDN:

1. One online member is the **seed**: its whole stream comes from the
   server (somebody has to fetch each fresh chunk; cf. the paper's
   Eq. 2, where only ``L - 1`` of ``L`` streams are peer-servable), and
   it re-shares what it fetches at full upload rate.
2. One member is the **fresh peer** (the newest viewpoint: it has not
   buffered anything worth sharing yet) and contributes no upload.  With
   seed uploading and fresh abstaining the aggregate peer supply is
   ``(L - 1) * q`` -- exactly the analytical model's Eq. 2.
3. Every non-seed member demands ``beta_i * dtau`` from peers; every
   non-fresh member supplies ``q_i * dtau``; volumes match closest-first.

Within each phase the transferable volume between a set of co-located
groups is the max-flow of a complete-bipartite-minus-block-diagonal
transportation problem ("anyone can serve anyone except their own
group"), which has the closed form::

    flow = min(sum(D), sum(S), sum(D) + sum(S) - max_g (D_g + S_g))

(at the exchange phase a "group" is a single user, forbidding
self-service; at higher phases it is the subtree already matched).
Volumes are then drained proportionally, a standard fluid approximation:
per-layer byte totals are exact, per-user attribution of *leftover*
demand is approximate, and per-user upload attribution is proportional
to contributed supply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.topology.layers import NetworkLayer
from repro.topology.nodes import AttachmentPoint, intern_attachment, lowest_common_layer

__all__ = [
    "PeerState",
    "WindowAllocation",
    "match_window",
    "match_window_arrays",
    "match_window_multi",
    "GroupKey",
    "BlockKey",
]

_EPS = 1e-9


@dataclass(slots=True)
class PeerState:
    """One swarm member's state within a single window.

    A hot per-window type: the kernel creates one per (member, config)
    and the matcher touches every field per phase, so the class is
    ``slots=True`` (no per-instance dict) and carries the *interned*
    attachment flyweight so no phase ever rebuilds one.

    Attributes:
        member_id: unique id within the swarm (session id).
        user_id: the viewer's id (for per-user accounting).
        demand: bits the member must stream this window (``beta * dtau``).
        supply: bits the member can upload this window (``q * dtau``).
        exchange: the member's exchange-point index.
        pop: the member's PoP index.
        isp: the member's ISP name.
        attachment: the member's interned
            :class:`~repro.topology.nodes.AttachmentPoint`; filled from
            the flyweight cache when not supplied (producers that already
            hold the session's interned attachment pass it through).
    """

    member_id: int
    user_id: int
    demand: float
    supply: float
    exchange: int
    pop: int
    isp: str
    attachment: Optional[AttachmentPoint] = None

    def __post_init__(self) -> None:
        if self.demand < 0 or self.supply < 0:
            raise ValueError(
                f"demand/supply must be >= 0, got {self.demand!r}/{self.supply!r}"
            )
        if self.attachment is None:
            self.attachment = intern_attachment(self.isp, self.pop, self.exchange)


#: Maps a member to its matching scope within a phase (e.g. its PoP).
GroupKey = Callable[[PeerState], Hashable]

#: Maps a member *index* to its forbidden self-service block (e.g. the
#: subtree already matched at a lower phase).
BlockKey = Callable[[int], Hashable]


@dataclass(slots=True)
class WindowAllocation:
    """Where one window's bytes came from.

    Attributes:
        peer_bits: bits served peer-to-peer, by localisation layer.
        server_bits: bits served by the CDN.
        uploaded_bits: per-user uploaded bits (only sharing users appear).
        demanded_bits: total bits streamed this window (demand side).
    """

    peer_bits: Dict[NetworkLayer, float] = field(default_factory=dict)
    server_bits: float = 0.0
    uploaded_bits: Dict[int, float] = field(default_factory=dict)
    demanded_bits: float = 0.0

    @property
    def total_peer_bits(self) -> float:
        return sum(self.peer_bits.values())

    def scaled(self, factor: float) -> "WindowAllocation":
        """The same allocation over ``factor`` identical windows."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor!r}")
        return WindowAllocation(
            peer_bits={layer: bits * factor for layer, bits in self.peer_bits.items()},
            server_bits=self.server_bits * factor,
            uploaded_bits={
                uid: bits * factor for uid, bits in self.uploaded_bits.items()
            },
            demanded_bits=self.demanded_bits * factor,
        )


def match_window(
    members: Sequence[PeerState],
    *,
    allow_cross_isp: bool = False,
    locality_aware: bool = True,
) -> WindowAllocation:
    """Allocate one window's demand closest-first across the swarm.

    Args:
        members: online swarm members (any ISP mix; the scoping policy
            normally pre-filters to one ISP).
        allow_cross_isp: when True, a final matching phase runs across
            ISPs (charged at the transit rate by the accounting layer via
            :attr:`NetworkLayer.SERVER`); the paper's ISP-friendly
            policy keeps this off.
        locality_aware: when False, peers are matched *randomly* instead
            of closest-first -- the same volume moves, but each unit of
            it turns around at the layer of a uniformly random
            supplier/demander pair.  This is the ablation baseline that
            isolates what "consume local" itself is worth.

    Returns:
        The window's :class:`WindowAllocation`.  The seed member (lowest
        ``user_id``, ties by ``member_id``) is always server-fed.
    """
    allocation = WindowAllocation()
    if not members:
        return allocation
    allocation.demanded_bits = sum(m.demand for m in members)

    if len(members) == 1:
        allocation.server_bits = members[0].demand
        return allocation

    # The seed is whoever holds fresh chunks: a lingering cached copy
    # (demand 0, supply > 0) when one exists -- then no server stream is
    # forced at all, which is exactly the caching extension's benefit --
    # otherwise the lowest-id viewer, whose stream is server-fed.
    seed = min(members, key=lambda m: (m.demand > 0.0, m.user_id, m.member_id))
    watchers = [m for m in members if m is not seed and m.demand > 0.0]
    fresh = max(watchers, key=lambda m: (m.user_id, m.member_id), default=None)
    allocation.server_bits += seed.demand

    # Working copies.  The seed demands nothing from peers (server-fed
    # or already cached) but uploads; the fresh peer (newest viewer) has
    # buffered nothing worth sharing yet and cannot upload; with every
    # member watching this makes the aggregate supply (L - 1) * q,
    # matching the paper's Eq. 2.
    active = list(members)
    demands = [0.0 if m is seed else m.demand for m in active]
    supplies = [0.0 if m is fresh else m.supply for m in active]

    if not locality_aware:
        _match_randomly(active, demands, supplies, allocation, allow_cross_isp)
        allocation.server_bits += sum(demands)
        return allocation

    phases: List[Tuple[NetworkLayer, GroupKey, BlockKey]] = [
        # (layer at which bits turn around, group key, forbidden-block key)
        (NetworkLayer.EXCHANGE, lambda m: (m.isp, m.exchange), lambda i: i),
        (
            NetworkLayer.POP,
            lambda m: (m.isp, m.pop),
            lambda i: (active[i].isp, active[i].exchange),
        ),
        (NetworkLayer.CORE, lambda m: m.isp, lambda i: (active[i].isp, active[i].pop)),
    ]
    if allow_cross_isp:
        phases.append((NetworkLayer.SERVER, lambda m: None, lambda i: active[i].isp))

    for layer, group_key, block_key in phases:
        _run_phase(active, demands, supplies, layer, group_key, block_key, allocation)

    allocation.server_bits += sum(demands)
    return allocation


def match_window_arrays(
    demands_in: Sequence[float],
    supplies_in: Sequence[float],
    user_ids: Sequence[int],
    member_ids: Sequence[int],
    exchange_codes: Sequence[int],
    pop_codes: Sequence[int],
    isp_codes: Sequence[int],
    *,
    allow_cross_isp: bool = False,
) -> Tuple[float, float, List[Tuple[NetworkLayer, float]], List[Tuple[int, float]]]:
    """Array-form :func:`match_window`: columns in, flat allocation out.

    The columnar kernel's matcher (:mod:`repro.sim.kernel_columns`):
    instead of :class:`PeerState` objects it takes parallel columns for
    the window's live members, in member order -- demands/supplies plus
    the identity and geometry columns.  The geometry columns are dense
    *codes* with the same equality structure as the object matcher's
    scope keys (equal code iff equal ``(isp, exchange)`` / ``(isp,
    pop)`` / ``isp``), which the schedule builder guarantees per swarm.

    The replay is bit-for-bit: seed/fresh selection compares the same
    ``(demand > 0, user_id, member_id)`` keys, scopes form in the same
    first-appearance order, and every float operation -- generator
    sums, left-associated block totals, drain arithmetic -- runs in
    exactly the sequence :func:`match_window` performs.  Only
    locality-aware matching is supported (random matching has no
    precomputable structure and stays on the object kernel).

    Returns ``(demanded_bits, server_bits, peer_items, upload_items)``
    where ``peer_items`` / ``upload_items`` preserve the allocation
    dicts' insertion order.
    """
    n = len(demands_in)
    if n == 0:
        return 0.0, 0.0, [], []
    demanded_bits = sum(demands_in[i] for i in range(n))
    if n == 1:
        return demanded_bits, demands_in[0], [], []

    positions = range(n)
    seed_pos = min(
        positions,
        key=lambda i: (demands_in[i] > 0.0, user_ids[i], member_ids[i]),
    )
    watcher_positions = [
        i for i in positions if i != seed_pos and demands_in[i] > 0.0
    ]
    fresh_pos = max(
        watcher_positions,
        key=lambda i: (user_ids[i], member_ids[i]),
        default=None,
    )
    server_bits = demands_in[seed_pos]

    demands = [0.0 if i == seed_pos else demands_in[i] for i in positions]
    supplies = list(supplies_in)
    if fresh_pos is not None:
        supplies[fresh_pos] = 0.0

    index_codes: List[int] = list(positions)
    phase_specs: List[Tuple[NetworkLayer, Sequence[int], Sequence[int]]] = [
        (NetworkLayer.EXCHANGE, exchange_codes, index_codes),
        (NetworkLayer.POP, pop_codes, exchange_codes),
        (NetworkLayer.CORE, isp_codes, pop_codes),
    ]
    if allow_cross_isp:
        zero_codes = [0] * n
        phase_specs.append((NetworkLayer.SERVER, zero_codes, isp_codes))

    peer: Dict[NetworkLayer, float] = {}
    uploaded: Dict[int, float] = {}
    for layer, group_codes, block_codes in phase_specs:
        scopes: Dict[int, List[int]] = {}
        for i in positions:
            scopes.setdefault(group_codes[i], []).append(i)
        for indices in scopes.values():
            if len(indices) < 2 and layer is NetworkLayer.EXCHANGE:
                continue
            total_demand = sum(demands[i] for i in indices)
            total_supply = sum(supplies[i] for i in indices)
            if total_demand <= _EPS or total_supply <= _EPS:
                continue
            block_totals: Dict[int, float] = {}
            for i in indices:
                block = block_codes[i]
                # Left-associated on purpose: ``(total + demand) +
                # supply`` replays match_window's rounding exactly.
                block_totals[block] = (
                    block_totals.get(block, 0.0) + demands[i] + supplies[i]
                )
            bound = total_demand + total_supply - max(block_totals.values())
            transferred = min(total_demand, total_supply, bound)
            if transferred <= _EPS:
                continue
            demand_factor = transferred / total_demand
            supply_factor = transferred / total_supply
            for i in indices:
                supply = supplies[i]
                if supply > 0.0:
                    contributed = supply * supply_factor
                    uid = user_ids[i]
                    uploaded[uid] = uploaded.get(uid, 0.0) + contributed
                    supplies[i] = supply - contributed
                demand = demands[i]
                if demand > 0.0:
                    demands[i] = demand - demand * demand_factor
            peer[layer] = peer.get(layer, 0.0) + transferred
    server_bits += sum(demands)
    return demanded_bits, server_bits, list(peer.items()), list(uploaded.items())


def match_window_multi(
    members: Sequence[PeerState],
    supply_profiles: Sequence[Sequence[float]],
    *,
    allow_cross_isp: bool = False,
    locality_aware: bool = True,
) -> List[WindowAllocation]:
    """Allocate one window under K supply profiles of one membership.

    The sweep kernel's workhorse: one shared member list provides the
    geometry, ids and demands, and ``supply_profiles[k]`` overrides the
    per-member supplies for sweep config ``k`` (upload ratio / bandwidth
    / participation are the swept axes -- only supply varies across a
    sweep's configs within a schedule group).  Everything that depends
    on membership and geometry alone is computed once: the seed and
    fresh selection, the per-phase matching scopes, and each scope's
    forbidden-block structure.  Only the per-config drain arithmetic
    runs K times, and it replays *exactly* the float-operation sequence
    :func:`match_window` performs -- same summation orders, same
    in-place drains, same dict-accumulation orders -- so each returned
    allocation is bit-for-bit what the independent call on members
    carrying that profile's supplies would have produced.

    Random (locality-blind) matching shares no precomputable structure
    worth the complexity (its cost is the supply x demand pair loop,
    which is per-config anyway); those calls delegate per profile.
    """
    if not supply_profiles:
        return []
    base = members
    if not base:
        return [WindowAllocation() for _ in supply_profiles]
    if not locality_aware:
        allocations = []
        for profile in supply_profiles:
            rebuilt = [
                PeerState(
                    member_id=m.member_id,
                    user_id=m.user_id,
                    demand=m.demand,
                    supply=supply,
                    exchange=m.exchange,
                    pop=m.pop,
                    isp=m.isp,
                    attachment=m.attachment,
                )
                for m, supply in zip(base, profile)
            ]
            allocations.append(
                match_window(
                    rebuilt, allow_cross_isp=allow_cross_isp, locality_aware=False
                )
            )
        return allocations

    n = len(base)
    demanded_bits = sum(m.demand for m in base)
    if n == 1:
        allocations = []
        for _profile in supply_profiles:
            allocation = WindowAllocation()
            allocation.demanded_bits = demanded_bits
            allocation.server_bits = base[0].demand
            allocations.append(allocation)
        return allocations

    # Seed / fresh positions: the selectors compare only demand
    # positivity and (user, member) ids, which are shared across the
    # profiles, so both positions are computed once.  Ids are unique,
    # so min/max have no ties and positional selection is exact.
    positions = range(n)
    seed_pos = min(
        positions,
        key=lambda i: (base[i].demand > 0.0, base[i].user_id, base[i].member_id),
    )
    watcher_positions = [
        i for i in positions if i != seed_pos and base[i].demand > 0.0
    ]
    fresh_pos = max(
        watcher_positions,
        key=lambda i: (base[i].user_id, base[i].member_id),
        default=None,
    )
    base_demands = [0.0 if i == seed_pos else base[i].demand for i in positions]

    # Phase structure from the shared geometry: for each phase, the
    # scopes in first-appearance order, each with its member indices and
    # a dense renumbering of its forbidden blocks.  Mirrors the scope /
    # block_totals dicts match_window builds per call, including the
    # exchange phase's singleton-scope skip.
    # Scopes that provably transfer nothing under *any* profile are
    # compiled away up front: demands only ever shrink (and float
    # addition is monotone for non-negative values), so a scope whose
    # initial demand total is below the epsilon stays below it in every
    # phase; likewise a scope none of whose members starts with positive
    # supply in any profile keeps a zero supply total.  Dropping them
    # skips only side-effect-free sums the per-profile loop would have
    # discarded anyway, so outputs are untouched -- but seed-only and
    # fresh-only scopes (the bulk of small-swarm scopes) cost nothing.
    can_supply = [
        i != fresh_pos and any(profile[i] > 0.0 for profile in supply_profiles)
        for i in positions
    ]
    # Per-member scope keys, one attribute pass: each phase's forbidden
    # block is exactly the previous phase's scope (the subtree already
    # matched), so four key lists describe the whole phase stack without
    # per-call lambdas.
    exchange_keys: List[Hashable] = []
    pop_keys: List[Hashable] = []
    core_keys: List[Hashable] = []
    for member in base:
        isp = member.isp
        exchange_keys.append((isp, member.exchange))
        pop_keys.append((isp, member.pop))
        core_keys.append(isp)
    index_keys: List[Hashable] = list(positions)
    phase_specs: List[Tuple[NetworkLayer, List[Hashable], List[Hashable]]] = [
        (NetworkLayer.EXCHANGE, exchange_keys, index_keys),
        (NetworkLayer.POP, pop_keys, exchange_keys),
        (NetworkLayer.CORE, core_keys, pop_keys),
    ]
    if allow_cross_isp:
        none_keys: List[Hashable] = [None] * n
        phase_specs.append((NetworkLayer.SERVER, none_keys, core_keys))

    structure: List[Tuple[NetworkLayer, List[Tuple[List[int], List[int], int]]]] = []
    for layer, group_keys, block_keys in phase_specs:
        scopes: Dict[Hashable, List[int]] = {}
        for index, group in enumerate(group_keys):
            scopes.setdefault(group, []).append(index)
        compiled: List[Tuple[List[int], List[int], int]] = []
        for indices in scopes.values():
            if len(indices) < 2 and layer is NetworkLayer.EXCHANGE:
                continue
            if sum(base_demands[i] for i in indices) <= _EPS:
                continue
            if not any(can_supply[i] for i in indices):
                continue
            block_ids: List[int] = []
            block_index: Dict[Hashable, int] = {}
            for i in indices:
                block = block_keys[i]
                dense = block_index.get(block)
                if dense is None:
                    dense = block_index[block] = len(block_index)
                block_ids.append(dense)
            compiled.append((indices, block_ids, len(block_index)))
        if compiled:
            structure.append((layer, compiled))

    allocations = []
    for profile in supply_profiles:
        allocation = WindowAllocation()
        allocation.demanded_bits = demanded_bits
        allocation.server_bits = base[seed_pos].demand
        demands = base_demands.copy()
        supplies = list(profile)
        if fresh_pos is not None:
            supplies[fresh_pos] = 0.0
        uploaded = allocation.uploaded_bits
        for layer, compiled in structure:
            for indices, block_ids, num_blocks in compiled:
                # One pass, plain adds: bit-for-bit the generator sums
                # match_window computes (same order, same 0-start).
                total_demand = 0.0
                total_supply = 0.0
                for i in indices:
                    total_demand += demands[i]
                    total_supply += supplies[i]
                if total_demand <= _EPS or total_supply <= _EPS:
                    continue
                block_totals = [0.0] * num_blocks
                for i, block in zip(indices, block_ids):
                    # Left-associated on purpose: match_window computes
                    # ``(total + demand) + supply``, and bit-for-bit
                    # replay means replaying its rounding too.
                    block_totals[block] = block_totals[block] + demands[i] + supplies[i]
                bound = total_demand + total_supply - max(block_totals)
                transferred = min(total_demand, total_supply, bound)
                if transferred <= _EPS:
                    continue
                demand_factor = transferred / total_demand
                supply_factor = transferred / total_supply
                for i in indices:
                    supply = supplies[i]
                    if supply > 0.0:
                        contributed = supply * supply_factor
                        uid = members[i].user_id
                        uploaded[uid] = uploaded.get(uid, 0.0) + contributed
                        supplies[i] = supply - contributed
                    demand = demands[i]
                    if demand > 0.0:
                        demands[i] = demand - demand * demand_factor
                allocation.peer_bits[layer] = (
                    allocation.peer_bits.get(layer, 0.0) + transferred
                )
        allocation.server_bits += sum(demands)
        allocations.append(allocation)
    return allocations


def _match_randomly(
    active: List[PeerState],
    demands: List[float],
    supplies: List[float],
    allocation: WindowAllocation,
    allow_cross_isp: bool,
) -> None:
    """Random (locality-blind) fluid matching: the ablation baseline.

    Moves the same feasible volume as one all-pairs phase, but each unit
    of it is carried at the common layer of a demand-and-supply-weighted
    random pair -- what a tracker that ignores topology would produce.
    O(n^2) in the window's swarm size; only the ablation benchmarks use
    it.
    """
    scope_key: GroupKey = (lambda m: None) if allow_cross_isp else (lambda m: m.isp)
    scopes: Dict[Hashable, List[int]] = {}
    for index, member in enumerate(active):
        scopes.setdefault(scope_key(member), []).append(index)

    for indices in scopes.values():
        total_demand = sum(demands[i] for i in indices)
        total_supply = sum(supplies[i] for i in indices)
        if total_demand <= _EPS or total_supply <= _EPS:
            continue
        block_totals: Dict[int, float] = {}
        for i in indices:
            block_totals[i] = demands[i] + supplies[i]
        bound = total_demand + total_supply - max(block_totals.values())
        transferred = min(total_demand, total_supply, bound)
        if transferred <= _EPS:
            continue

        # Layer mixture of a random (supply x demand)-weighted pair.
        # Members carry their interned attachment, so the n^2 pair loop
        # only classifies layers -- it never constructs (or validates) an
        # AttachmentPoint per supplier x demander pair.
        layer_weights: Dict[NetworkLayer, float] = {}
        pair_total = 0.0
        for i in indices:
            if supplies[i] <= 0.0:
                continue
            a = active[i].attachment
            for j in indices:
                if i == j or demands[j] <= 0.0:
                    continue
                b = active[j].attachment
                layer = lowest_common_layer(a, b)
                weight = supplies[i] * demands[j]
                layer_weights[layer] = layer_weights.get(layer, 0.0) + weight
                pair_total += weight
        if pair_total <= 0.0:
            continue

        demand_factor = transferred / total_demand
        supply_factor = transferred / total_supply
        for i in indices:
            if supplies[i] > 0.0:
                contributed = supplies[i] * supply_factor
                uid = active[i].user_id
                allocation.uploaded_bits[uid] = (
                    allocation.uploaded_bits.get(uid, 0.0) + contributed
                )
                supplies[i] -= contributed
            if demands[i] > 0.0:
                demands[i] -= demands[i] * demand_factor
        for layer, weight in layer_weights.items():
            allocation.peer_bits[layer] = (
                allocation.peer_bits.get(layer, 0.0) + transferred * weight / pair_total
            )


def _run_phase(
    active: List[PeerState],
    demands: List[float],
    supplies: List[float],
    layer: NetworkLayer,
    group_key: GroupKey,
    block_key: BlockKey,
    allocation: WindowAllocation,
) -> None:
    """One matching phase: drain demand inside each ``group_key`` scope."""
    scopes: Dict[Hashable, List[int]] = {}
    for index, member in enumerate(active):
        scopes.setdefault(group_key(member), []).append(index)

    for indices in scopes.values():
        if len(indices) < 2 and layer is NetworkLayer.EXCHANGE:
            # A single member cannot self-serve; higher phases may still
            # have one-member scopes contribute demand or supply, which
            # the block-diagonal bound handles uniformly below.
            continue
        total_demand = sum(demands[i] for i in indices)
        total_supply = sum(supplies[i] for i in indices)
        if total_demand <= _EPS or total_supply <= _EPS:
            continue

        # Block-diagonal max-flow bound: a block (user at the exchange
        # phase, already-matched subtree above) cannot serve itself.
        block_totals: Dict[Hashable, float] = {}
        for i in indices:
            block = block_key(i)
            block_totals[block] = (
                block_totals.get(block, 0.0) + demands[i] + supplies[i]
            )
        bound = total_demand + total_supply - max(block_totals.values())
        transferred = min(total_demand, total_supply, bound)
        if transferred <= _EPS:
            continue

        demand_factor = transferred / total_demand
        supply_factor = transferred / total_supply
        for i in indices:
            if supplies[i] > 0.0:
                contributed = supplies[i] * supply_factor
                uid = active[i].user_id
                allocation.uploaded_bits[uid] = (
                    allocation.uploaded_bits.get(uid, 0.0) + contributed
                )
                supplies[i] -= contributed
            if demands[i] > 0.0:
                demands[i] -= demands[i] * demand_factor
        allocation.peer_bits[layer] = allocation.peer_bits.get(layer, 0.0) + transferred
