"""Columnar swarm kernel: packed session columns + an optional C sweep.

The object kernel (:func:`repro.sim.kernel.run_swarm`) walks per-session
python objects -- ``PeerState`` dataclasses, tuple events carrying
``Session`` references, dict-of-object ledgers -- and its attribute
traffic dominates the profile.  This module is the columnar
counterpart: a :class:`ColumnSchedule` packs one swarm's sessions into
parallel scalar columns (demand, identity, dense geometry codes, sorted
window events), and the sweep runs over integer indices with a
linked-list membership timeline, either in pure python or -- when the
optional ``repro.sim._ckernel`` extension is built -- in C.

The contract is the one that makes the dispatch safe to default on:
**bit-for-bit identity with the object kernel.**  Every float operation
of :func:`~repro.sim.kernel.run_swarm` is replayed in the same order
with the same association -- window indices use the object kernel's
exact expressions (``int(start // dtau)``, ``int(math.ceil(end /
dtau))``), matching runs through the array-form replay
(:func:`repro.sim.matching.match_window_arrays` in python,
the same sequence transcribed to C on the fast path), day chunks split
identically, and even dict *insertion orders* (per-layer peer bits,
per-(ISP, day) ledgers, per-user traffic) are reproduced, so reducers
and serializers see indistinguishable outputs.

The compiled backend is selected once at import time: if
``repro.sim._ckernel`` imports (built via ``python setup.py build_ext
--inplace`` or the ``compiled`` extra) it is used for every sweep;
otherwise the pure-python fallback runs with identical results.  Set
``REPRO_NO_CKERNEL=1`` to force the fallback even when the extension is
present (the equivalence tests use this to exercise both paths).

Random (non-locality-aware) matching has no precomputable structure, so
those configs stay on the object kernel -- the dispatchers in
:mod:`repro.sim.kernel` route them there.
"""

from __future__ import annotations

import math
import os
from array import array
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.sim.accounting import ByteLedger
from repro.sim.kernel import (
    _ADD,
    _DEMOTE,
    _REMOVE,
    MultiSwarmOutput,
    SwarmOutput,
    SwarmTask,
    _schedule_signature,
    resolve_task,
    run_swarm_object,
)
from repro.sim.matching import match_window_arrays
from repro.sim.profiling import PROFILE
from repro.sim.results import SwarmResult, UserTraffic
from repro.topology.layers import NetworkLayer
from repro.trace.events import SECONDS_PER_DAY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import SimulationConfig
    from repro.sim.grouping import ExtentTaskRef
    from repro.trace.store import SessionColumns

__all__ = [
    "HAVE_COMPILED",
    "ColumnSchedule",
    "run_from_schedule",
    "run_swarm_columnar",
    "run_swarm_multi_columnar",
    "schedule_from_ref",
    "run_ref_columnar",
    "run_ref_multi_columnar",
]

_ckernel = None
if not os.environ.get("REPRO_NO_CKERNEL"):
    try:
        from repro.sim import _ckernel  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - depends on the local build
        _ckernel = None

#: Whether the compiled sweep is active in this process.
HAVE_COMPILED = _ckernel is not None

#: Matching-phase layers by compiled-kernel index (the C sweep reports
#: peer bits against these positions).
_LAYERS = (
    NetworkLayer.EXCHANGE,
    NetworkLayer.POP,
    NetworkLayer.CORE,
    NetworkLayer.SERVER,
)


class ColumnSchedule:
    """One swarm's sessions packed into parallel scalar columns.

    Built once per ``(task, schedule signature)`` -- the same sharing
    unit as the object kernel's ``_build_events`` -- and reused across
    every sweep config with that signature: the event timeline and the
    demand/identity/geometry columns depend only on ``(delta_tau,
    seed_linger_seconds, participation)``, while per-config supplies
    are derived on demand via :meth:`supplies_for`.

    Geometry is stored as dense per-swarm codes with the same equality
    structure as the object matcher's scope keys: ``ex_code`` equal iff
    ``(isp, exchange)`` equal, ``pop_code`` iff ``(isp, pop)``,
    ``isp_code`` iff ``isp`` -- which is exactly what
    :func:`~repro.sim.matching.match_window_arrays` requires.  Events
    are packed into single sorted integers ``(window << 34) | (kind <<
    32) | session_index``: the bit layout makes integer order equal
    ``(window, kind, session_index)`` lexicographic order, and within a
    ``(window, kind)`` tie the session index reproduces the object
    kernel's creation-order tie-break, because each session contributes
    at most one event per kind and creation order is session order.
    (Python integers never overflow the encoding; only the compiled
    path needs ``window < 2**29`` to fit int64, and
    :func:`run_from_schedule` falls back to python beyond that.)
    """

    __slots__ = (
        "n",
        "dtau",
        "windows_per_day",
        "num_days",
        "mean_duration",
        "demand",
        "bitrates",
        "user_ids",
        "member_ids",
        "user_slot",
        "slot_users",
        "slot_of",
        "num_users",
        "ex_code",
        "pop_code",
        "isp_code",
        "num_ex",
        "num_pop",
        "num_isp",
        "ev_enc",
        "native",
        "bcode",
        "distinct_bitrates",
        "_packed",
    )

    def __init__(self, task: SwarmTask, config: "SimulationConfig") -> None:
        sessions = task.sessions
        dtau = config.delta_tau
        n = len(sessions)
        self.n = n
        self.dtau = dtau
        self.windows_per_day = int(SECONDS_PER_DAY // dtau)

        # Native fast path: the C module builds the packed columns
        # straight from the Session slots (no-linger case only -- seed
        # lingering needs config.participates per user, which stays in
        # python).  It returns None to decline, and this python builder
        # takes over; results are identical either way.
        if _ckernel is not None and n > 0 and config.seed_linger_seconds <= 0.0:
            built = _ckernel.build(sessions, dtau)
            if built is not None:
                self._adopt_native(built)
                return
        self.native = False
        self.bcode = None
        self.distinct_bitrates = None

        demand: List[float] = []
        bitrates: List[float] = []
        user_ids: List[int] = []
        member_ids: List[int] = []
        user_slot: List[int] = []
        ex_code: List[int] = []
        pop_code: List[int] = []
        isp_code: List[int] = []
        slot_users: List[int] = []
        slot_of: Dict[int, int] = {}
        ex_of: Dict[Tuple[object, object], int] = {}
        pop_of: Dict[Tuple[object, object], int] = {}
        isp_of: Dict[object, int] = {}
        # One id-keyed cache resolves all three scope codes per session
        # without hashing the attachment dataclass.  Keying by identity
        # is sound because every attachment in this task stays alive
        # (referenced by its session) for the whole loop, and correct
        # even for equal-but-distinct attachment objects because the
        # canonical tuple-keyed dicts above stay the source of truth
        # (two attachments sharing an (isp, exchange) share the ex
        # code); ``Session.isp`` is ``attachment.isp``, so identity
        # determines all three scope keys.
        codes_of: Dict[int, Tuple[int, int, int]] = {}

        demand_append = demand.append
        bitrates_append = bitrates.append
        uid_append = user_ids.append
        mid_append = member_ids.append
        slot_append = user_slot.append
        ex_append = ex_code.append
        pop_append = pop_code.append
        isp_append = isp_code.append

        linger = config.seed_linger_seconds
        lingering = linger > 0.0
        part_cache: Dict[int, bool] = {}
        events: List[int] = []
        ev_append = events.append
        ceil = math.ceil
        identity = id
        add_tag = _ADD << 32
        demote_tag = _DEMOTE << 32
        remove_tag = _REMOVE << 32
        duration_total = 0

        idx = 0
        for session in sessions:
            # The object kernel's exact window expressions: float
            # floordiv and ceil-divide must not be "simplified" -- the
            # window grid is part of the bit-for-bit contract.
            # ``Session.end`` is ``start + duration``, inlined here.
            duration = session.duration
            duration_total += duration
            start = session.start
            end = start + duration
            w_start = int(start // dtau)
            w_end = int(ceil(end / dtau))
            if w_end <= w_start:
                w_end = w_start + 1
            ev_append((w_start << 34) | add_tag | idx)
            uid = session.user_id
            if lingering:
                lingers = part_cache.get(uid)
                if lingers is None:
                    lingers = part_cache[uid] = config.participates(uid)
                if lingers:
                    w_linger = int(ceil((end + linger) / dtau))
                    if w_linger > w_end:
                        ev_append((w_end << 34) | demote_tag | idx)
                        ev_append((w_linger << 34) | remove_tag | idx)
                    else:
                        ev_append((w_end << 34) | remove_tag | idx)
                else:
                    ev_append((w_end << 34) | remove_tag | idx)
            else:
                ev_append((w_end << 34) | remove_tag | idx)

            bitrate = session.bitrate
            demand_append(bitrate * dtau)
            bitrates_append(bitrate)
            uid_append(uid)
            mid_append(session.session_id)
            slot = slot_of.get(uid)
            if slot is None:
                slot = slot_of[uid] = len(slot_users)
                slot_users.append(uid)
            slot_append(slot)
            attachment = session.attachment
            att_key = identity(attachment)
            codes = codes_of.get(att_key)
            if codes is None:
                isp = attachment.isp
                key_ex = (isp, attachment.exchange)
                code_ex = ex_of.get(key_ex)
                if code_ex is None:
                    code_ex = ex_of[key_ex] = len(ex_of)
                key_pop = (isp, attachment.pop)
                code_pop = pop_of.get(key_pop)
                if code_pop is None:
                    code_pop = pop_of[key_pop] = len(pop_of)
                code_isp = isp_of.get(isp)
                if code_isp is None:
                    code_isp = isp_of[isp] = len(isp_of)
                codes = codes_of[att_key] = (code_ex, code_pop, code_isp)
            ex_append(codes[0])
            pop_append(codes[1])
            isp_append(codes[2])
            idx += 1

        events.sort()
        # Replays ``sum(s.duration for s in sessions) / len(sessions)``:
        # same left-to-right float additions from the same int 0 start.
        self.mean_duration = duration_total / n if n else 0.0
        self.demand = demand
        self.bitrates = bitrates
        self.user_ids = user_ids
        self.member_ids = member_ids
        self.user_slot = user_slot
        self.slot_users = slot_users
        self.slot_of = slot_of
        self.num_users = len(slot_users)
        self.ex_code = ex_code
        self.pop_code = pop_code
        self.isp_code = isp_code
        self.num_ex = len(ex_of)
        self.num_pop = len(pop_of)
        self.num_isp = len(isp_of)
        self.ev_enc = events
        max_window = events[-1] >> 34 if events else 0
        self.num_days = (
            (max_window - 1) // self.windows_per_day + 1 if max_window > 0 else 0
        )
        self._packed: Optional[Tuple[array, ...]] = None

    def _adopt_native(self, built: Tuple) -> None:
        """Take ownership of a compiled builder's 16-tuple (``build`` or
        ``decode_build`` -- both return the same shape).  Requires ``n``,
        ``dtau`` and ``windows_per_day`` to be set already."""
        (
            demand_b,
            uid_b,
            mid_b,
            slot_b,
            ex_b,
            pop_b,
            isp_b,
            ev_b,
            bcode_b,
            distinct_bitrates,
            slot_users,
            num_ex,
            num_pop,
            num_isp,
            mean_duration,
            max_window,
        ) = built
        self.native = True
        self._packed = (
            demand_b,
            uid_b,
            mid_b,
            slot_b,
            ex_b,
            pop_b,
            isp_b,
            ev_b,
        )
        self.bcode = bcode_b
        self.distinct_bitrates = distinct_bitrates
        self.slot_users = slot_users
        self.num_users = len(slot_users)
        self.num_ex = num_ex
        self.num_pop = num_pop
        self.num_isp = num_isp
        self.mean_duration = mean_duration
        self.num_days = (
            (max_window - 1) // self.windows_per_day + 1 if max_window > 0 else 0
        )
        # List-form columns exist only on the python-built path
        # (the python sweep never runs on a native schedule).
        self.demand = None
        self.bitrates = None
        self.user_ids = None
        self.member_ids = None
        self.user_slot = None
        self.slot_of = None
        self.ex_code = None
        self.pop_code = None
        self.isp_code = None
        self.ev_enc = None

    @classmethod
    def from_native(cls, built: Tuple, n: int, dtau: float) -> "ColumnSchedule":
        """Wrap a fused ``decode_build`` result (zero-object fast path)."""
        self = cls.__new__(cls)
        self.n = n
        self.dtau = dtau
        self.windows_per_day = int(SECONDS_PER_DAY // dtau)
        self._adopt_native(built)
        return self

    @classmethod
    def from_columns(
        cls, columns: "SessionColumns", config: "SimulationConfig"
    ) -> "ColumnSchedule":
        """Build a schedule straight from decoded extent columns.

        The zero-object counterpart of the ``__init__`` python builder:
        the same arithmetic over the same float values in the same order
        (stored doubles round-trip losslessly), so the packed columns
        are byte-identical.  Scope identities stay the store file's
        integer refs -- ``(isp_ref, exchange)`` / ``(isp_ref, pop)`` /
        ``isp_ref`` keys in place of the string-keyed dicts -- which
        assign the same dense first-encounter codes because the store's
        interned string table is bijective within one file.  Strings are
        never interned here; accounting boundaries carry the swarm key's
        ISP, not per-session strings.
        """
        self = cls.__new__(cls)
        dtau = config.delta_tau
        n = columns.count
        self.n = n
        self.dtau = dtau
        self.windows_per_day = int(SECONDS_PER_DAY // dtau)
        self.native = False
        self.bcode = None
        self.distinct_bitrates = None

        demand: List[float] = []
        bitrates: List[float] = []
        user_ids: List[int] = []
        member_ids: List[int] = []
        user_slot: List[int] = []
        ex_code: List[int] = []
        pop_code: List[int] = []
        isp_code: List[int] = []
        slot_users: List[int] = []
        slot_of: Dict[int, int] = {}
        ex_of: Dict[Tuple[int, int], int] = {}
        pop_of: Dict[Tuple[int, int], int] = {}
        isp_of: Dict[int, int] = {}

        demand_append = demand.append
        bitrates_append = bitrates.append
        uid_append = user_ids.append
        mid_append = member_ids.append
        slot_append = user_slot.append
        ex_append = ex_code.append
        pop_append = pop_code.append
        isp_append = isp_code.append

        linger = config.seed_linger_seconds
        lingering = linger > 0.0
        part_cache: Dict[int, bool] = {}
        events: List[int] = []
        ev_append = events.append
        ceil = math.ceil
        add_tag = _ADD << 32
        demote_tag = _DEMOTE << 32
        remove_tag = _REMOVE << 32
        duration_total = 0

        col_starts = columns.starts
        col_durations = columns.durations
        col_bitrates = columns.bitrates
        col_uids = columns.user_ids
        col_sids = columns.session_ids
        col_isp_refs = columns.isp_refs
        col_pops = columns.pops
        col_exchanges = columns.exchanges

        for idx in range(n):
            # The object kernel's exact window expressions over the same
            # stored doubles -- part of the bit-for-bit contract.
            duration = col_durations[idx]
            duration_total += duration
            start = col_starts[idx]
            end = start + duration
            w_start = int(start // dtau)
            w_end = int(ceil(end / dtau))
            if w_end <= w_start:
                w_end = w_start + 1
            ev_append((w_start << 34) | add_tag | idx)
            uid = col_uids[idx]
            if lingering:
                lingers = part_cache.get(uid)
                if lingers is None:
                    lingers = part_cache[uid] = config.participates(uid)
                if lingers:
                    w_linger = int(ceil((end + linger) / dtau))
                    if w_linger > w_end:
                        ev_append((w_end << 34) | demote_tag | idx)
                        ev_append((w_linger << 34) | remove_tag | idx)
                    else:
                        ev_append((w_end << 34) | remove_tag | idx)
                else:
                    ev_append((w_end << 34) | remove_tag | idx)
            else:
                ev_append((w_end << 34) | remove_tag | idx)

            bitrate = col_bitrates[idx]
            demand_append(bitrate * dtau)
            bitrates_append(bitrate)
            uid_append(uid)
            mid_append(col_sids[idx])
            slot = slot_of.get(uid)
            if slot is None:
                slot = slot_of[uid] = len(slot_users)
                slot_users.append(uid)
            slot_append(slot)
            isp_ref = col_isp_refs[idx]
            key_ex = (isp_ref, col_exchanges[idx])
            code_ex = ex_of.get(key_ex)
            if code_ex is None:
                code_ex = ex_of[key_ex] = len(ex_of)
            key_pop = (isp_ref, col_pops[idx])
            code_pop = pop_of.get(key_pop)
            if code_pop is None:
                code_pop = pop_of[key_pop] = len(pop_of)
            code_isp = isp_of.get(isp_ref)
            if code_isp is None:
                code_isp = isp_of[isp_ref] = len(isp_of)
            ex_append(code_ex)
            pop_append(code_pop)
            isp_append(code_isp)

        events.sort()
        # Same left-to-right float additions from the same int 0 start
        # as the object-path builder (and the object kernel's mean).
        self.mean_duration = duration_total / n if n else 0.0
        self.demand = demand
        self.bitrates = bitrates
        self.user_ids = user_ids
        self.member_ids = member_ids
        self.user_slot = user_slot
        self.slot_users = slot_users
        self.slot_of = slot_of
        self.num_users = len(slot_users)
        self.ex_code = ex_code
        self.pop_code = pop_code
        self.isp_code = isp_code
        self.num_ex = len(ex_of)
        self.num_pop = len(pop_of)
        self.num_isp = len(isp_of)
        self.ev_enc = events
        max_window = events[-1] >> 34 if events else 0
        self.num_days = (
            (max_window - 1) // self.windows_per_day + 1 if max_window > 0 else 0
        )
        self._packed = None
        return self

    def supplies_for(self, config: "SimulationConfig") -> "List[float] | bytes":
        """Per-session supply column (bits/window) under one config.

        Replays the object kernel's expression ``upload_rate_for(
        bitrate) * dtau`` for participants and ``0.0`` otherwise;
        participation resolves once per user and rates once per
        distinct bitrate, so the column costs O(n) dict hits -- or, on
        a native-built schedule, O(distinct) python calls plus a C map
        returning the packed f64 buffer directly.
        """
        dtau = self.dtau
        if self.native:
            rates = array(
                "d",
                [
                    config.upload_rate_for(bitrate) * dtau
                    for bitrate in self.distinct_bitrates
                ],
            )
            _, _, _, slot_b, _, _, _, _ = self._packed
            if config.participation_rate >= 1.0:
                part = None
            else:
                part = bytes(
                    bytearray(
                        1 if config.participates(uid) else 0
                        for uid in self.slot_users
                    )
                )
            return _ckernel.supplies(self.n, self.bcode, rates, slot_b, part)
        bitrates = self.bitrates
        rate_of: Dict[float, float] = {}
        if config.participation_rate >= 1.0:
            out = []
            for bitrate in bitrates:
                supply = rate_of.get(bitrate)
                if supply is None:
                    supply = rate_of[bitrate] = config.upload_rate_for(bitrate) * dtau
                out.append(supply)
            return out
        user_slot = self.user_slot
        user_ids = self.user_ids
        part_of: Dict[int, bool] = {}
        out = []
        for index in range(self.n):
            slot = user_slot[index]
            participates = part_of.get(slot)
            if participates is None:
                participates = part_of[slot] = config.participates(user_ids[index])
            if participates:
                bitrate = bitrates[index]
                supply = rate_of.get(bitrate)
                if supply is None:
                    supply = rate_of[bitrate] = config.upload_rate_for(bitrate) * dtau
                out.append(supply)
            else:
                out.append(0.0)
        return out

    def packed(self) -> Tuple[array, ...]:
        """The columns as typed buffers for the compiled sweep (cached)."""
        packed = self._packed
        if packed is None:
            packed = self._packed = (
                array("d", self.demand),
                array("q", self.user_ids),
                array("q", self.member_ids),
                array("i", self.user_slot),
                array("i", self.ex_code),
                array("i", self.pop_code),
                array("i", self.isp_code),
                array("q", self.ev_enc),
            )
        return packed


def run_swarm_columnar(task: SwarmTask, config: "SimulationConfig") -> SwarmOutput:
    """Columnar :func:`~repro.sim.kernel.run_swarm`: bit-for-bit equal."""
    profile = PROFILE.enabled
    if profile:
        t0 = perf_counter()
    schedule = ColumnSchedule(task, config)
    if profile:
        PROFILE.schedule_seconds += perf_counter() - t0
    return run_from_schedule(task, config, schedule)


def run_swarm_multi_columnar(
    task: SwarmTask, configs: Sequence["SimulationConfig"]
) -> MultiSwarmOutput:
    """Columnar sweep: one schedule per signature group, K columnar runs.

    Mirrors :func:`~repro.sim.kernel.run_swarm_multi`'s sharing unit
    (the schedule signature) but replaces the shared-timeline
    accumulator machinery with per-config columnar sweeps over one
    shared :class:`ColumnSchedule` -- the sweep itself is fast enough
    that re-running it per config beats the object multi-kernel, and
    each output is bit-for-bit the single-config result by the columnar
    identity law.  The allocation memo does not apply here
    (``memo_hits``/``memo_misses`` report 0); ``schedule_builds``
    counts distinct signatures that actually built a schedule.
    Random-matching configs fall back to the object kernel per config.
    """
    if not configs:
        return MultiSwarmOutput(outputs=[])
    groups: Dict[Tuple, List[int]] = {}
    for position, config in enumerate(configs):
        groups.setdefault(_schedule_signature(config), []).append(position)
    outputs: List[Optional[SwarmOutput]] = [None] * len(configs)
    profile = PROFILE.enabled
    schedule_builds = 0
    for positions in groups.values():
        # Built lazily: a group whose configs all use random matching
        # runs entirely on the object kernel and needs no schedule.
        schedule: Optional[ColumnSchedule] = None
        for position in positions:
            config = configs[position]
            if config.locality_aware_matching:
                if schedule is None:
                    if profile:
                        t0 = perf_counter()
                    schedule = ColumnSchedule(task, config)
                    if profile:
                        PROFILE.schedule_seconds += perf_counter() - t0
                    schedule_builds += 1
                outputs[position] = run_from_schedule(task, config, schedule)
            else:
                outputs[position] = run_swarm_object(task, config)
    return MultiSwarmOutput(
        outputs=outputs,  # type: ignore[arg-type] - every slot is filled
        memo_hits=0,
        memo_misses=0,
        schedule_builds=schedule_builds,
    )


def schedule_from_ref(
    ref: "ExtentTaskRef", config: "SimulationConfig"
) -> ColumnSchedule:
    """Build a :class:`ColumnSchedule` straight from a shard extent.

    The zero-object ingest path: the extent's raw bytes (or typed
    columns) come directly off the store file and Session objects are
    never created.  Three tiers, all bit-for-bit identical:

    1. **Fused** (compiled, no lingering): one ``_ckernel.decode_build``
       pass over the raw 56 B records decodes *and* builds the packed
       schedule.  Charged to the ``decode`` profile phase and counted in
       ``fused_tasks``.
    2. **Columns** (pure python, or the C builder declined): batched
       ``struct.iter_unpack`` into typed arrays (``decode`` phase), then
       :meth:`ColumnSchedule.from_columns` (``schedule build`` phase).
    3. Lingering configs always take tier 2 -- ``config.participates``
       stays in python, same as the object-path builder.
    """
    profile = PROFILE.enabled
    count = ref.num_sessions
    if _ckernel is not None and count > 0 and config.seed_linger_seconds <= 0.0:
        if profile:
            t0 = perf_counter()
        built = _ckernel.decode_build(ref.read_raw(), count, config.delta_tau)
        if built is not None:
            schedule = ColumnSchedule.from_native(built, count, config.delta_tau)
            if profile:
                PROFILE.decode_seconds += perf_counter() - t0
                PROFILE.fused_tasks += 1
            return schedule
        if profile:
            PROFILE.decode_seconds += perf_counter() - t0
    if profile:
        t0 = perf_counter()
    columns = ref.read_columns()
    if profile:
        t1 = perf_counter()
        PROFILE.decode_seconds += t1 - t0
    schedule = ColumnSchedule.from_columns(columns, config)
    if profile:
        PROFILE.schedule_seconds += perf_counter() - t1
    return schedule


def run_ref_columnar(ref: "ExtentTaskRef", config: "SimulationConfig") -> SwarmOutput:
    """Columnar run straight from a shard extent ref (zero-object).

    ``ref`` carries ``key`` and ``horizon``, which is all
    :func:`run_from_schedule` needs from a task -- the sessions
    themselves only ever exist as columns.
    """
    return run_from_schedule(ref, config, schedule_from_ref(ref, config))


def run_ref_multi_columnar(
    ref: "ExtentTaskRef", configs: Sequence["SimulationConfig"]
) -> MultiSwarmOutput:
    """Zero-object counterpart of :func:`run_swarm_multi_columnar`.

    One :func:`schedule_from_ref` per schedule-signature group, K sweeps
    over it.  Random-matching configs need the object kernel; the task
    is materialized (once, lazily) only for them.
    """
    if not configs:
        return MultiSwarmOutput(outputs=[])
    groups: Dict[Tuple, List[int]] = {}
    for position, config in enumerate(configs):
        groups.setdefault(_schedule_signature(config), []).append(position)
    outputs: List[Optional[SwarmOutput]] = [None] * len(configs)
    schedule_builds = 0
    task: Optional[SwarmTask] = None
    for positions in groups.values():
        schedule: Optional[ColumnSchedule] = None
        for position in positions:
            config = configs[position]
            if config.locality_aware_matching:
                if schedule is None:
                    schedule = schedule_from_ref(ref, config)
                    schedule_builds += 1
                outputs[position] = run_from_schedule(ref, config, schedule)
            else:
                if task is None:
                    task = resolve_task(ref)
                outputs[position] = run_swarm_object(task, config)
    return MultiSwarmOutput(
        outputs=outputs,  # type: ignore[arg-type] - every slot is filled
        memo_hits=0,
        memo_misses=0,
        schedule_builds=schedule_builds,
    )


def run_from_schedule(
    task: "SwarmTask | ExtentTaskRef",
    config: "SimulationConfig",
    schedule: ColumnSchedule,
) -> SwarmOutput:
    """Sweep a prebuilt schedule under one config and materialize.

    ``task`` may be a :class:`SwarmTask` or an extent ref -- only its
    ``key`` and ``horizon`` are read (see :func:`_materialize`).
    """
    supplies = schedule.supplies_for(config)
    allow_cross = config.allow_cross_isp_matching
    profile = PROFILE.enabled
    if profile:
        t0 = perf_counter()
    compiled = _ckernel is not None and (
        schedule.native
        # Encoded events must fit int64 for the C path (window < 2**29;
        # python integers are unbounded, so only packing is affected).
        or (schedule.n > 0 and schedule.ev_enc[-1] < (1 << 63))
    )
    if compiled:
        flat = _sweep_compiled(schedule, supplies, allow_cross, profile)
    else:
        flat = _sweep_python(schedule, supplies, allow_cross, profile)
    if profile:
        PROFILE.sweep_seconds += perf_counter() - t0
        PROFILE.match_seconds += flat[6]
        PROFILE.account_seconds += flat[7]
        PROFILE.tasks += 1
        if compiled:
            PROFILE.compiled_tasks += 1
    return _materialize(task, schedule, flat)


def _sweep_python(
    schedule: ColumnSchedule,
    supplies: List[float],
    allow_cross: bool,
    profile: bool,
) -> Tuple:
    """The pure-python columnar sweep (also the semantics reference for
    the C transcription): linked-list membership over session indices,
    array-form matching per stretch, flat accumulators per output field.

    Flat accumulation is exact because every output field accumulates
    through its own independent variable in stretch order -- the same
    per-field float-addition sequence the object kernel performs
    interleaved.
    """
    n = schedule.n
    dtau = schedule.dtau
    wpd = schedule.windows_per_day
    ev = schedule.ev_enc
    cur_demand = list(schedule.demand)
    user_ids = schedule.user_ids
    member_ids = schedule.member_ids
    user_slot = schedule.user_slot
    slot_of = schedule.slot_of
    ex_code = schedule.ex_code
    pop_code = schedule.pop_code
    isp_code = schedule.isp_code

    # Membership as a doubly linked list over session indices: insertion
    # order equals the object kernel's dict order (adds append, demotes
    # keep position, removals unlink).
    nxt = [-1] * n
    prv = [-1] * n
    in_list = [False] * n
    head = -1
    tail = -1
    live = 0

    watch_total = 0.0
    server_total = 0.0
    demanded_total = 0.0
    peer_totals: Dict[NetworkLayer, float] = {}
    # day -> [watch, server, demanded, {layer: bits}] in first-touch order.
    days: Dict[int, List] = {}
    # user slot -> [watched, uploaded] in first-touch order.
    users: Dict[int, List[float]] = {}
    match_s = 0.0
    account_s = 0.0

    num_events = len(ev)
    prev_w = 0
    index = 0
    while index < num_events:
        w = ev[index] >> 34
        if w > prev_w and live:
            order = []
            j = head
            while j != -1:
                order.append(j)
                j = nxt[j]
            stretch_demand = [cur_demand[j] for j in order]
            viewers = 0
            for demand in stretch_demand:
                if demand > 0.0:
                    viewers += 1
            watch_per_window = viewers * dtau
            if profile:
                t0 = perf_counter()
            demanded_bits, server_bits, peer_items, upload_items = (
                match_window_arrays(
                    stretch_demand,
                    [supplies[j] for j in order],
                    [user_ids[j] for j in order],
                    [member_ids[j] for j in order],
                    [ex_code[j] for j in order],
                    [pop_code[j] for j in order],
                    [isp_code[j] for j in order],
                    allow_cross_isp=allow_cross,
                )
            )
            if profile:
                t1 = perf_counter()
                match_s += t1 - t0
            stretch_watch = 0.0
            window = prev_w
            while window < w:
                day = window // wpd
                day_end = (day + 1) * wpd
                chunk = min(w, day_end) - window
                entry = days.get(day)
                if entry is None:
                    entry = days[day] = [0.0, 0.0, 0.0, {}]
                watch_chunk = watch_per_window * chunk
                entry[0] += watch_chunk
                server_chunk = server_bits * chunk
                demanded_chunk = demanded_bits * chunk
                server_total += server_chunk
                demanded_total += demanded_chunk
                entry[1] += server_chunk
                entry[2] += demanded_chunk
                day_peer = entry[3]
                for layer, bits in peer_items:
                    peer_chunk = bits * chunk
                    peer_totals[layer] = peer_totals.get(layer, 0.0) + peer_chunk
                    day_peer[layer] = day_peer.get(layer, 0.0) + peer_chunk
                for j in order:
                    slot = user_slot[j]
                    traffic = users.get(slot)
                    if traffic is None:
                        traffic = users[slot] = [0.0, 0.0]
                    traffic[0] += cur_demand[j] * chunk
                for uid, bits in upload_items:
                    traffic = users.get(slot_of[uid])
                    if traffic is None:  # pragma: no cover - uploaders are members
                        traffic = users[slot_of[uid]] = [0.0, 0.0]
                    traffic[1] += bits * chunk
                stretch_watch += watch_chunk
                window += chunk
            watch_total += stretch_watch
            if profile:
                account_s += perf_counter() - t1
        if w > prev_w:
            prev_w = w
        while index < num_events:
            event = ev[index]
            if event >> 34 != w:
                break
            kind = (event >> 32) & 3
            s = event & 0xFFFFFFFF
            if kind == _REMOVE:
                if in_list[s]:
                    in_list[s] = False
                    before = prv[s]
                    after = nxt[s]
                    if before != -1:
                        nxt[before] = after
                    else:
                        head = after
                    if after != -1:
                        prv[after] = before
                    else:
                        tail = before
                    live -= 1
            elif kind == _DEMOTE:
                if in_list[s]:
                    cur_demand[s] = 0.0
            else:
                in_list[s] = True
                prv[s] = tail
                nxt[s] = -1
                if tail == -1:
                    head = s
                else:
                    nxt[tail] = s
                tail = s
                live += 1
            index += 1

    return (
        watch_total,
        server_total,
        demanded_total,
        list(peer_totals.items()),
        [
            (day, entry[0], entry[1], entry[2], list(entry[3].items()))
            for day, entry in days.items()
        ],
        [(slot, traffic[0], traffic[1]) for slot, traffic in users.items()],
        match_s,
        account_s,
    )


def _sweep_compiled(
    schedule: ColumnSchedule,
    supplies: List[float],
    allow_cross: bool,
    profile: bool,
) -> Tuple:
    """Run the C sweep and lift its layer indices back to enums."""
    (
        demand_buf,
        uid_buf,
        mid_buf,
        slot_buf,
        ex_buf,
        pop_buf,
        isp_buf,
        ev_buf,
    ) = schedule.packed()
    (
        watch_total,
        server_total,
        demanded_total,
        peer_items,
        day_items,
        user_items,
        match_s,
        account_s,
    ) = _ckernel.sweep(
        schedule.n,
        demand_buf,
        supplies if type(supplies) is bytes else array("d", supplies),
        uid_buf,
        mid_buf,
        slot_buf,
        ex_buf,
        pop_buf,
        isp_buf,
        schedule.num_users,
        schedule.num_ex,
        schedule.num_pop,
        schedule.num_isp,
        ev_buf,
        schedule.windows_per_day,
        schedule.num_days,
        schedule.dtau,
        1 if allow_cross else 0,
        1 if profile else 0,
    )
    layers = _LAYERS
    return (
        watch_total,
        server_total,
        demanded_total,
        [(layers[layer], bits) for layer, bits in peer_items],
        [
            (
                day,
                watch,
                server,
                demanded,
                [(layers[layer], bits) for layer, bits in day_peer],
            )
            for day, watch, server, demanded, day_peer in day_items
        ],
        user_items,
        match_s,
        account_s,
    )


def _materialize(
    task: "SwarmTask | ExtentTaskRef", schedule: ColumnSchedule, flat: Tuple
) -> SwarmOutput:
    """Build the :class:`SwarmOutput` from a sweep's flat accumulators.

    Only ``task.key`` and ``task.horizon`` are read, so an extent ref
    works as well as a materialized task -- the accounting boundary
    interns nothing per session (the ledger's ISP comes from the key).
    """
    (
        watch_seconds,
        server_total,
        demanded_total,
        peer_items,
        day_items,
        user_items,
        _match_s,
        _account_s,
    ) = flat
    n = schedule.n
    horizon = task.horizon
    isp = task.key.isp if task.key.isp is not None else "all"
    per_isp_day = {
        (isp, day): ByteLedger(
            server_bits=server,
            peer_bits=dict(day_peer),
            demanded_bits=demanded,
            watch_seconds=watch,
        )
        for day, watch, server, demanded, day_peer in day_items
    }
    slot_users = schedule.slot_users
    per_user = {
        slot_users[slot]: UserTraffic(watched_bits=watched, uploaded_bits=uploaded)
        for slot, watched, uploaded in user_items
    }
    return SwarmOutput(
        result=SwarmResult(
            key=task.key,
            ledger=ByteLedger(
                server_bits=server_total,
                peer_bits=dict(peer_items),
                demanded_bits=demanded_total,
                watch_seconds=watch_seconds,
                sessions=n,
            ),
            capacity=watch_seconds / horizon if horizon > 0 else 0.0,
            arrival_rate=n / horizon if horizon > 0 else 0.0,
            mean_duration=schedule.mean_duration,
        ),
        per_isp_day=per_isp_day,
        per_user=per_user,
    )
