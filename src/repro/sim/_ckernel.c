/* Compiled columnar swarm sweep (optional fast path).
 *
 * A straight transcription of the pure-python columnar sweep in
 * repro/sim/kernel_columns.py (_sweep_python + matching's
 * match_window_arrays) into C, preserving the float-operation sequence
 * exactly: every addition, multiplication and division runs on the
 * same operands in the same order with the same association, so the
 * results are bit-for-bit identical to both the python fallback and
 * the object kernel.  Compile with -ffp-contract=off (setup.py does) --
 * fused multiply-adds would change roundings.
 *
 * Inputs are the packed columns of a ColumnSchedule (stdlib array
 * buffers: f64 demand/supply, i64 user/member ids and event windows,
 * i32 dense codes and event sessions, i8 event kinds); the output is a
 * flat tuple the python side materializes into a SwarmOutput.  Dict
 * insertion orders are reproduced via first-touch order stamps
 * (per-layer peer bits, per-day ledgers, per-user traffic).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

#define K_REMOVE 0
#define K_DEMOTE 1
/* kind 2 is ADD (anything not remove/demote). */

#define N_LAYERS 4 /* EXCHANGE, POP, CORE, SERVER -- phase index == layer */

static const double EPS = 1e-9;

static double now_seconds(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec;
}

/* All scratch state for one sweep call, allocated once. */
typedef struct {
    double *cur_demand;   /* [n] live demand (demotes zero it) */
    int32_t *nxt, *prv;   /* [n] membership linked list */
    uint8_t *in_list;     /* [n] */
    int32_t *order;       /* [n] live positions, list order */
    double *ph_dem;       /* [n] per-stretch matching working copies */
    double *ph_sup;       /* [n] */
    /* scope/block grouping, epoch-tagged so no per-stretch clearing */
    uint64_t *scope_epoch; /* [ncodes] */
    int32_t *scope_id;     /* [ncodes] code -> scope index */
    int32_t *scope_count;  /* [ncodes] then reused as scatter cursor */
    int32_t *scope_off;    /* [ncodes + 1] */
    int32_t *scope_members; /* [n] member positions grouped by scope */
    uint64_t *block_epoch; /* [nblk] */
    double *block_val;     /* [nblk] */
    int32_t *block_list;   /* [n] blocks touched in one scope */
    /* per-stretch uploads, keyed by user slot */
    uint64_t *up_epoch; /* [num_users] */
    double *up_acc;     /* [num_users] */
    int32_t *up_list;   /* [n] */
    /* totals */
    double *day_watch, *day_server, *day_demanded; /* [num_days] */
    uint8_t *day_touched;                          /* [num_days] */
    int64_t *day_order;                            /* [num_days] */
    double *day_peer;                              /* [num_days * 4] */
    uint8_t *day_peer_present;                     /* [num_days * 4] */
    uint8_t *day_peer_seq;                         /* [num_days * 4] */
    uint8_t *day_peer_cnt;                         /* [num_days] */
    double *user_watched, *user_uploaded; /* [num_users] */
    uint8_t *user_touched;                /* [num_users] */
    int32_t *user_order;                  /* [num_users] */
} Scratch;

static void scratch_free(Scratch *s) {
    free(s->cur_demand);
    free(s->nxt);
    free(s->prv);
    free(s->in_list);
    free(s->order);
    free(s->ph_dem);
    free(s->ph_sup);
    free(s->scope_epoch);
    free(s->scope_id);
    free(s->scope_count);
    free(s->scope_off);
    free(s->scope_members);
    free(s->block_epoch);
    free(s->block_val);
    free(s->block_list);
    free(s->up_epoch);
    free(s->up_acc);
    free(s->up_list);
    free(s->day_watch);
    free(s->day_server);
    free(s->day_demanded);
    free(s->day_touched);
    free(s->day_order);
    free(s->day_peer);
    free(s->day_peer_present);
    free(s->day_peer_seq);
    free(s->day_peer_cnt);
    free(s->user_watched);
    free(s->user_uploaded);
    free(s->user_touched);
    free(s->user_order);
}

static int scratch_alloc(Scratch *s, Py_ssize_t n, Py_ssize_t ncodes,
                         Py_ssize_t nblk, Py_ssize_t num_users,
                         Py_ssize_t num_days) {
    memset(s, 0, sizeof(*s));
    Py_ssize_t nd = num_days > 0 ? num_days : 1;
    Py_ssize_t nu = num_users > 0 ? num_users : 1;
    s->cur_demand = malloc(n * sizeof(double));
    s->nxt = malloc(n * sizeof(int32_t));
    s->prv = malloc(n * sizeof(int32_t));
    s->in_list = calloc(n, 1);
    s->order = malloc(n * sizeof(int32_t));
    s->ph_dem = malloc(n * sizeof(double));
    s->ph_sup = malloc(n * sizeof(double));
    s->scope_epoch = calloc(ncodes, sizeof(uint64_t));
    s->scope_id = malloc(ncodes * sizeof(int32_t));
    s->scope_count = malloc(ncodes * sizeof(int32_t));
    s->scope_off = malloc((ncodes + 1) * sizeof(int32_t));
    s->scope_members = malloc(n * sizeof(int32_t));
    s->block_epoch = calloc(nblk, sizeof(uint64_t));
    s->block_val = malloc(nblk * sizeof(double));
    s->block_list = malloc(n * sizeof(int32_t));
    s->up_epoch = calloc(nu, sizeof(uint64_t));
    s->up_acc = malloc(nu * sizeof(double));
    s->up_list = malloc(n * sizeof(int32_t));
    s->day_watch = calloc(nd, sizeof(double));
    s->day_server = calloc(nd, sizeof(double));
    s->day_demanded = calloc(nd, sizeof(double));
    s->day_touched = calloc(nd, 1);
    s->day_order = malloc(nd * sizeof(int64_t));
    s->day_peer = calloc(nd * N_LAYERS, sizeof(double));
    s->day_peer_present = calloc(nd * N_LAYERS, 1);
    s->day_peer_seq = malloc(nd * N_LAYERS);
    s->day_peer_cnt = calloc(nd, 1);
    s->user_watched = calloc(nu, sizeof(double));
    s->user_uploaded = calloc(nu, sizeof(double));
    s->user_touched = calloc(nu, 1);
    s->user_order = malloc(nu * sizeof(int32_t));
    if (!s->cur_demand || !s->nxt || !s->prv || !s->in_list || !s->order ||
        !s->ph_dem || !s->ph_sup || !s->scope_epoch || !s->scope_id ||
        !s->scope_count || !s->scope_off || !s->scope_members ||
        !s->block_epoch || !s->block_val || !s->block_list || !s->up_epoch ||
        !s->up_acc || !s->up_list || !s->day_watch || !s->day_server ||
        !s->day_demanded || !s->day_touched || !s->day_order || !s->day_peer ||
        !s->day_peer_present || !s->day_peer_seq || !s->day_peer_cnt ||
        !s->user_watched || !s->user_uploaded || !s->user_touched ||
        !s->user_order) {
        scratch_free(s);
        return -1;
    }
    return 0;
}

static int check_len(const Py_buffer *buf, Py_ssize_t count,
                     Py_ssize_t itemsize, const char *name) {
    if (buf->len != count * itemsize) {
        PyErr_Format(PyExc_ValueError, "%s buffer: expected %zd bytes, got %zd",
                     name, count * itemsize, buf->len);
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Columnar schedule builder: the fast path for ColumnSchedule.        */
/* Reads Session slots directly via member-descriptor offsets and      */
/* replays the python builder's arithmetic exactly.  Declines (returns */
/* None) whenever any assumption fails -- odd session types, non-float */
/* times, huge windows -- and the python builder takes over.           */

/* Open-addressing map from uint64 keys (user ids, attachment pointers,
 * bitrate bit patterns) to dense int32 codes; capacity 2x expected
 * inserts keeps the load factor under 50%. */
typedef struct {
    uint64_t *keys;
    int32_t *vals;
    uint8_t *used;
    uint64_t mask;
} U64Map;

static int u64map_init(U64Map *m, Py_ssize_t expected) {
    uint64_t cap = 16;
    while ((Py_ssize_t)(cap / 2) < expected) cap <<= 1;
    m->keys = malloc(cap * sizeof(uint64_t));
    m->vals = malloc(cap * sizeof(int32_t));
    m->used = calloc(cap, 1);
    m->mask = cap - 1;
    return (m->keys && m->vals && m->used) ? 0 : -1;
}

static void u64map_free(U64Map *m) {
    free(m->keys);
    free(m->vals);
    free(m->used);
}

/* Returns the probe slot for key; *found says whether it holds key. */
static uint64_t u64map_probe(const U64Map *m, uint64_t key, int *found) {
    uint64_t i = (key * UINT64_C(0x9E3779B97F4A7C15) >> 29) & m->mask;
    while (m->used[i]) {
        if (m->keys[i] == key) {
            *found = 1;
            return i;
        }
        i = (i + 1) & m->mask;
    }
    *found = 0;
    return i;
}

static void u64map_set(U64Map *m, uint64_t slot, uint64_t key, int32_t val) {
    m->used[slot] = 1;
    m->keys[slot] = key;
    m->vals[slot] = val;
}

/* Offset of a T_OBJECT(_EX) slot member, or -1 when `name` is not a
 * plain member descriptor on `tp` (caller declines to python). */
static Py_ssize_t member_offset(PyTypeObject *tp, const char *name) {
    PyObject *descr = PyObject_GetAttrString((PyObject *)tp, name);
    if (!descr) {
        PyErr_Clear();
        return -1;
    }
    Py_ssize_t off = -1;
    if (Py_TYPE(descr) == &PyMemberDescr_Type) {
        PyMemberDef *md = ((PyMemberDescrObject *)descr)->d_member;
        if (md->type == T_OBJECT_EX || md->type == T_OBJECT) off = md->offset;
    }
    Py_DECREF(descr);
    return off;
}

/* CPython's float floor-division (floatobject.c float_divmod), so that
 * int(start // dtau) here is bit-for-bit the python builder's value. */
static double py_float_floordiv(double vx, double wx) {
    double mod = fmod(vx, wx);
    double div = (vx - mod) / wx;
    if (mod != 0.0) {
        if ((wx < 0.0) != (mod < 0.0)) {
            mod += wx;
            div -= 1.0;
        }
    }
    if (div != 0.0) {
        double floordiv = floor(div);
        if (div - floordiv > 0.5) floordiv += 1.0;
        return floordiv;
    }
    return copysign(0.0, vx / wx);
}

static int cmp_i64(const void *a, const void *b) {
    int64_t x = *(const int64_t *)a, y = *(const int64_t *)b;
    return (x > y) - (x < y);
}

/* Dense first-encounter code for `key` in dict `of` (the canonical
 * scope-key maps: equality, not identity, decides code sharing). */
static int dense_code(PyObject *of, PyObject *key, int32_t *out) {
    PyObject *val = PyDict_GetItemWithError(of, key);
    if (val) {
        long code = PyLong_AsLong(val);
        if (code == -1 && PyErr_Occurred()) return -1;
        *out = (int32_t)code;
        return 0;
    }
    if (PyErr_Occurred()) return -1;
    Py_ssize_t code = PyDict_GET_SIZE(of);
    val = PyLong_FromSsize_t(code);
    if (!val) return -1;
    int rc = PyDict_SetItem(of, key, val);
    Py_DECREF(val);
    if (rc < 0) return -1;
    *out = (int32_t)code;
    return 0;
}

static int resolve_attachment(PyObject *att, PyObject *ex_of, PyObject *pop_of,
                              PyObject *isp_of, int32_t *ex, int32_t *pop,
                              int32_t *isp) {
    PyObject *isp_o = PyObject_GetAttrString(att, "isp");
    if (!isp_o) return -1;
    PyObject *exch_o = PyObject_GetAttrString(att, "exchange");
    PyObject *pop_o = exch_o ? PyObject_GetAttrString(att, "pop") : NULL;
    PyObject *key_ex = pop_o ? PyTuple_Pack(2, isp_o, exch_o) : NULL;
    PyObject *key_pop = key_ex ? PyTuple_Pack(2, isp_o, pop_o) : NULL;
    int rc = -1;
    if (key_pop && dense_code(ex_of, key_ex, ex) == 0 &&
        dense_code(pop_of, key_pop, pop) == 0 &&
        dense_code(isp_of, isp_o, isp) == 0)
        rc = 0;
    Py_XDECREF(key_ex);
    Py_XDECREF(key_pop);
    Py_DECREF(isp_o);
    Py_XDECREF(exch_o);
    Py_XDECREF(pop_o);
    return rc;
}

/* Compiled-path windows are packed into int64 as (w << 34) | ...; the
 * python builder handles anything wider. */
#define BUILD_WINDOW_LIMIT ((int64_t)1 << 29)

static PyObject *build(PyObject *self, PyObject *args) {
    PyObject *seq_in;
    double dtau;
    if (!PyArg_ParseTuple(args, "Od", &seq_in, &dtau)) return NULL;
    if (dtau <= 0.0) Py_RETURN_NONE;
    PyObject *seq = PySequence_Fast(seq_in, "sessions must be a sequence");
    if (!seq) return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    if (n <= 0 || n > INT32_MAX) {
        Py_DECREF(seq);
        Py_RETURN_NONE;
    }
    PyObject **items = PySequence_Fast_ITEMS(seq);
    PyTypeObject *tp = Py_TYPE(items[0]);
    Py_ssize_t off_start = member_offset(tp, "start");
    Py_ssize_t off_dur = member_offset(tp, "duration");
    Py_ssize_t off_rate = member_offset(tp, "bitrate");
    Py_ssize_t off_uid = member_offset(tp, "user_id");
    Py_ssize_t off_sid = member_offset(tp, "session_id");
    Py_ssize_t off_att = member_offset(tp, "attachment");
    if (off_start < 0 || off_dur < 0 || off_rate < 0 || off_uid < 0 ||
        off_sid < 0 || off_att < 0) {
        Py_DECREF(seq);
        Py_RETURN_NONE;
    }

    double *demand = malloc(n * sizeof(double));
    int64_t *uid = malloc(n * sizeof(int64_t));
    int64_t *mid = malloc(n * sizeof(int64_t));
    int32_t *slot = malloc(n * sizeof(int32_t));
    int32_t *exc = malloc(n * sizeof(int32_t));
    int32_t *popc = malloc(n * sizeof(int32_t));
    int32_t *ispc = malloc(n * sizeof(int32_t));
    int32_t *bcode = malloc(n * sizeof(int32_t));
    int64_t *ev = malloc(2 * n * sizeof(int64_t));
    double *distinct = malloc(n * sizeof(double));
    int32_t *att_ex = malloc(n * sizeof(int32_t));
    int32_t *att_pop = malloc(n * sizeof(int32_t));
    int32_t *att_isp = malloc(n * sizeof(int32_t));
    U64Map slot_map = {0}, att_map = {0}, rate_map = {0};
    PyObject *slot_users = NULL, *ex_of = NULL, *pop_of = NULL, *isp_of = NULL;
    PyObject *distinct_list = NULL, *result = NULL;
    int decline = 0;

    if (!demand || !uid || !mid || !slot || !exc || !popc || !ispc || !bcode ||
        !ev || !distinct || !att_ex || !att_pop || !att_isp ||
        u64map_init(&slot_map, n) < 0 || u64map_init(&att_map, n) < 0 ||
        u64map_init(&rate_map, n) < 0) {
        PyErr_NoMemory();
        goto done;
    }
    slot_users = PyList_New(0);
    ex_of = PyDict_New();
    pop_of = PyDict_New();
    isp_of = PyDict_New();
    if (!slot_users || !ex_of || !pop_of || !isp_of) goto done;

    int32_t num_slots = 0, num_att = 0, num_rates = 0;
    int64_t max_window = 0;
    double dur_total = 0.0;

    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *s = items[i];
        if (Py_TYPE(s) != tp) {
            decline = 1;
            goto done;
        }
        PyObject *v_start = *(PyObject **)((char *)s + off_start);
        PyObject *v_dur = *(PyObject **)((char *)s + off_dur);
        PyObject *v_rate = *(PyObject **)((char *)s + off_rate);
        PyObject *v_uid = *(PyObject **)((char *)s + off_uid);
        PyObject *v_sid = *(PyObject **)((char *)s + off_sid);
        PyObject *att = *(PyObject **)((char *)s + off_att);
        if (!v_start || !v_dur || !v_rate || !v_uid || !v_sid || !att ||
            !PyFloat_CheckExact(v_start) || !PyFloat_CheckExact(v_dur) ||
            !PyFloat_CheckExact(v_rate) || !PyLong_CheckExact(v_uid) ||
            !PyLong_CheckExact(v_sid)) {
            decline = 1;
            goto done;
        }
        double start = PyFloat_AS_DOUBLE(v_start);
        double duration = PyFloat_AS_DOUBLE(v_dur);
        double rate = PyFloat_AS_DOUBLE(v_rate);
        dur_total += duration;
        double end = start + duration;
        double fdiv = py_float_floordiv(start, dtau);
        double ce = ceil(end / dtau);
        if (!(fdiv >= 0.0) || fdiv >= (double)BUILD_WINDOW_LIMIT ||
            !(ce >= 0.0) || ce >= (double)BUILD_WINDOW_LIMIT) {
            decline = 1;
            goto done;
        }
        int64_t w_start = (int64_t)fdiv;
        int64_t w_end = (int64_t)ce;
        if (w_end <= w_start) w_end = w_start + 1;
        if (w_end > max_window) max_window = w_end;
        ev[2 * i] = (w_start << 34) | ((int64_t)2 << 32) | (int64_t)i;
        ev[2 * i + 1] = (w_end << 34) | (int64_t)i; /* K_REMOVE == 0 */
        demand[i] = rate * dtau;

        int64_t uval = PyLong_AsLongLong(v_uid);
        if (uval == -1 && PyErr_Occurred()) {
            PyErr_Clear();
            decline = 1;
            goto done;
        }
        int64_t sval = PyLong_AsLongLong(v_sid);
        if (sval == -1 && PyErr_Occurred()) {
            PyErr_Clear();
            decline = 1;
            goto done;
        }
        uid[i] = uval;
        mid[i] = sval;

        int found;
        uint64_t mslot = u64map_probe(&slot_map, (uint64_t)uval, &found);
        if (found) {
            slot[i] = slot_map.vals[mslot];
        } else {
            u64map_set(&slot_map, mslot, (uint64_t)uval, num_slots);
            if (PyList_Append(slot_users, v_uid) < 0) goto done;
            slot[i] = num_slots++;
        }

        /* Identity-keyed attachment cache; every attachment stays alive
         * (referenced by its session) so pointers are unambiguous. */
        uint64_t aslot =
            u64map_probe(&att_map, (uint64_t)(uintptr_t)att, &found);
        int32_t acode;
        if (found) {
            acode = att_map.vals[aslot];
        } else {
            if (resolve_attachment(att, ex_of, pop_of, isp_of, &att_ex[num_att],
                                   &att_pop[num_att], &att_isp[num_att]) < 0)
                goto done;
            u64map_set(&att_map, aslot, (uint64_t)(uintptr_t)att, num_att);
            acode = num_att++;
        }
        exc[i] = att_ex[acode];
        popc[i] = att_pop[acode];
        ispc[i] = att_isp[acode];

        uint64_t rbits;
        memcpy(&rbits, &rate, 8);
        uint64_t rslot = u64map_probe(&rate_map, rbits, &found);
        if (found) {
            bcode[i] = rate_map.vals[rslot];
        } else {
            u64map_set(&rate_map, rslot, rbits, num_rates);
            distinct[num_rates] = rate;
            bcode[i] = num_rates++;
        }
    }

    qsort(ev, (size_t)(2 * n), sizeof(int64_t), cmp_i64);

    distinct_list = PyList_New(num_rates);
    if (!distinct_list) goto done;
    for (int32_t k = 0; k < num_rates; k++) {
        PyObject *f = PyFloat_FromDouble(distinct[k]);
        if (!f) goto done;
        PyList_SET_ITEM(distinct_list, k, f);
    }

    result = Py_BuildValue(
        "(y#y#y#y#y#y#y#y#y#OOnnndL)", (char *)demand,
        n * (Py_ssize_t)sizeof(double), (char *)uid,
        n * (Py_ssize_t)sizeof(int64_t), (char *)mid,
        n * (Py_ssize_t)sizeof(int64_t), (char *)slot,
        n * (Py_ssize_t)sizeof(int32_t), (char *)exc,
        n * (Py_ssize_t)sizeof(int32_t), (char *)popc,
        n * (Py_ssize_t)sizeof(int32_t), (char *)ispc,
        n * (Py_ssize_t)sizeof(int32_t), (char *)ev,
        2 * n * (Py_ssize_t)sizeof(int64_t), (char *)bcode,
        n * (Py_ssize_t)sizeof(int32_t), distinct_list, slot_users,
        (Py_ssize_t)PyDict_GET_SIZE(ex_of), (Py_ssize_t)PyDict_GET_SIZE(pop_of),
        (Py_ssize_t)PyDict_GET_SIZE(isp_of), dur_total / (double)n,
        (long long)max_window);

done:
    free(demand);
    free(uid);
    free(mid);
    free(slot);
    free(exc);
    free(popc);
    free(ispc);
    free(bcode);
    free(ev);
    free(distinct);
    free(att_ex);
    free(att_pop);
    free(att_isp);
    u64map_free(&slot_map);
    u64map_free(&att_map);
    u64map_free(&rate_map);
    Py_XDECREF(slot_users);
    Py_XDECREF(ex_of);
    Py_XDECREF(pop_of);
    Py_XDECREF(isp_of);
    Py_XDECREF(distinct_list);
    Py_DECREF(seq);
    if (result) return result;
    if (decline && !PyErr_Occurred()) Py_RETURN_NONE;
    return NULL;
}

/* Fused zero-object ingest: decode raw 56-byte store records and build
 * the packed schedule columns in one pass over the extent buffer --
 * Session objects (and even per-field tuples) never exist.  The record
 * layout mirrors trace/store.py's _RECORD ("<qqIdddHIIH"): session_id@0
 * (i64), user_id@8 (i64), content_ref@16 (u32), start@20 (f64),
 * duration@28 (f64), bitrate@36 (f64), isp_ref@44 (u16), pop@46 (u32),
 * exchange@50 (u32), device_ref@54 (u16).  Packed little-endian, so the
 * doubles are unaligned (memcpy each field) and a big-endian host
 * declines to the python path.
 *
 * Scope codes are first-encounter dense codes over integer keys --
 * (isp_ref << 32 | exchange), (isp_ref << 32 | pop), isp_ref -- which
 * equal the string-keyed codes the python builders assign, because the
 * store's interned string table is a bijection within one file. */
#define DB_RECORD_SIZE 56

static PyObject *decode_build(PyObject *self, PyObject *args) {
    Py_buffer buf;
    Py_ssize_t n;
    double dtau;
    if (!PyArg_ParseTuple(args, "y*nd", &buf, &n, &dtau)) return NULL;
    const uint16_t endian_probe = 1;
    if (dtau <= 0.0 || n <= 0 || n > INT32_MAX ||
        buf.len != n * DB_RECORD_SIZE ||
        *(const uint8_t *)&endian_probe != 1) {
        PyBuffer_Release(&buf);
        Py_RETURN_NONE;
    }

    double *demand = malloc(n * sizeof(double));
    int64_t *uid = malloc(n * sizeof(int64_t));
    int64_t *mid = malloc(n * sizeof(int64_t));
    int32_t *slot = malloc(n * sizeof(int32_t));
    int32_t *exc = malloc(n * sizeof(int32_t));
    int32_t *popc = malloc(n * sizeof(int32_t));
    int32_t *ispc = malloc(n * sizeof(int32_t));
    int32_t *bcode = malloc(n * sizeof(int32_t));
    int64_t *ev = malloc(2 * n * sizeof(int64_t));
    double *distinct = malloc(n * sizeof(double));
    U64Map slot_map = {0}, ex_map = {0}, pop_map = {0}, isp_map = {0};
    U64Map rate_map = {0};
    PyObject *slot_users = NULL, *distinct_list = NULL, *result = NULL;
    int decline = 0;

    if (!demand || !uid || !mid || !slot || !exc || !popc || !ispc || !bcode ||
        !ev || !distinct || u64map_init(&slot_map, n) < 0 ||
        u64map_init(&ex_map, n) < 0 || u64map_init(&pop_map, n) < 0 ||
        u64map_init(&isp_map, n) < 0 || u64map_init(&rate_map, n) < 0) {
        PyErr_NoMemory();
        goto done;
    }
    slot_users = PyList_New(0);
    if (!slot_users) goto done;

    int32_t num_slots = 0, num_ex = 0, num_pop = 0, num_isp = 0;
    int32_t num_rates = 0;
    int64_t max_window = 0;
    double dur_total = 0.0;
    const uint8_t *base = (const uint8_t *)buf.buf;

    for (Py_ssize_t i = 0; i < n; i++) {
        const uint8_t *rec = base + i * DB_RECORD_SIZE;
        int64_t sval, uval;
        double start, duration, rate;
        uint16_t isp_ref;
        uint32_t popv, exchv;
        memcpy(&sval, rec, 8);
        memcpy(&uval, rec + 8, 8);
        memcpy(&start, rec + 20, 8);
        memcpy(&duration, rec + 28, 8);
        memcpy(&rate, rec + 36, 8);
        memcpy(&isp_ref, rec + 44, 2);
        memcpy(&popv, rec + 46, 4);
        memcpy(&exchv, rec + 50, 4);

        dur_total += duration;
        double end = start + duration;
        double fdiv = py_float_floordiv(start, dtau);
        double ce = ceil(end / dtau);
        if (!(fdiv >= 0.0) || fdiv >= (double)BUILD_WINDOW_LIMIT ||
            !(ce >= 0.0) || ce >= (double)BUILD_WINDOW_LIMIT) {
            decline = 1;
            goto done;
        }
        int64_t w_start = (int64_t)fdiv;
        int64_t w_end = (int64_t)ce;
        if (w_end <= w_start) w_end = w_start + 1;
        if (w_end > max_window) max_window = w_end;
        ev[2 * i] = (w_start << 34) | ((int64_t)2 << 32) | (int64_t)i;
        ev[2 * i + 1] = (w_end << 34) | (int64_t)i; /* K_REMOVE == 0 */
        demand[i] = rate * dtau;
        uid[i] = uval;
        mid[i] = sval;

        int found;
        uint64_t mslot = u64map_probe(&slot_map, (uint64_t)uval, &found);
        if (found) {
            slot[i] = slot_map.vals[mslot];
        } else {
            PyObject *uo = PyLong_FromLongLong((long long)uval);
            if (!uo) goto done;
            int rc = PyList_Append(slot_users, uo);
            Py_DECREF(uo);
            if (rc < 0) goto done;
            u64map_set(&slot_map, mslot, (uint64_t)uval, num_slots);
            slot[i] = num_slots++;
        }

        uint64_t key_ex = ((uint64_t)isp_ref << 32) | (uint64_t)exchv;
        uint64_t eslot = u64map_probe(&ex_map, key_ex, &found);
        if (found) {
            exc[i] = ex_map.vals[eslot];
        } else {
            u64map_set(&ex_map, eslot, key_ex, num_ex);
            exc[i] = num_ex++;
        }
        uint64_t key_pop = ((uint64_t)isp_ref << 32) | (uint64_t)popv;
        uint64_t pslot = u64map_probe(&pop_map, key_pop, &found);
        if (found) {
            popc[i] = pop_map.vals[pslot];
        } else {
            u64map_set(&pop_map, pslot, key_pop, num_pop);
            popc[i] = num_pop++;
        }
        uint64_t islot = u64map_probe(&isp_map, (uint64_t)isp_ref, &found);
        if (found) {
            ispc[i] = isp_map.vals[islot];
        } else {
            u64map_set(&isp_map, islot, (uint64_t)isp_ref, num_isp);
            ispc[i] = num_isp++;
        }

        uint64_t rbits;
        memcpy(&rbits, &rate, 8);
        uint64_t rslot = u64map_probe(&rate_map, rbits, &found);
        if (found) {
            bcode[i] = rate_map.vals[rslot];
        } else {
            u64map_set(&rate_map, rslot, rbits, num_rates);
            distinct[num_rates] = rate;
            bcode[i] = num_rates++;
        }
    }

    qsort(ev, (size_t)(2 * n), sizeof(int64_t), cmp_i64);

    distinct_list = PyList_New(num_rates);
    if (!distinct_list) goto done;
    for (int32_t k = 0; k < num_rates; k++) {
        PyObject *f = PyFloat_FromDouble(distinct[k]);
        if (!f) goto done;
        PyList_SET_ITEM(distinct_list, k, f);
    }

    result = Py_BuildValue(
        "(y#y#y#y#y#y#y#y#y#OOnnndL)", (char *)demand,
        n * (Py_ssize_t)sizeof(double), (char *)uid,
        n * (Py_ssize_t)sizeof(int64_t), (char *)mid,
        n * (Py_ssize_t)sizeof(int64_t), (char *)slot,
        n * (Py_ssize_t)sizeof(int32_t), (char *)exc,
        n * (Py_ssize_t)sizeof(int32_t), (char *)popc,
        n * (Py_ssize_t)sizeof(int32_t), (char *)ispc,
        n * (Py_ssize_t)sizeof(int32_t), (char *)ev,
        2 * n * (Py_ssize_t)sizeof(int64_t), (char *)bcode,
        n * (Py_ssize_t)sizeof(int32_t), distinct_list, slot_users,
        (Py_ssize_t)num_ex, (Py_ssize_t)num_pop, (Py_ssize_t)num_isp,
        dur_total / (double)n, (long long)max_window);

done:
    free(demand);
    free(uid);
    free(mid);
    free(slot);
    free(exc);
    free(popc);
    free(ispc);
    free(bcode);
    free(ev);
    free(distinct);
    u64map_free(&slot_map);
    u64map_free(&ex_map);
    u64map_free(&pop_map);
    u64map_free(&isp_map);
    u64map_free(&rate_map);
    Py_XDECREF(slot_users);
    Py_XDECREF(distinct_list);
    PyBuffer_Release(&buf);
    if (result) return result;
    if (decline && !PyErr_Occurred()) Py_RETURN_NONE;
    return NULL;
}

/* Supply column for a native-built schedule: out[i] = rates[bcode[i]]
 * (zeroed for non-participating slots).  rates[] is computed in python
 * as upload_rate_for(bitrate) * dtau per distinct bitrate, so values
 * match the python supplies_for exactly. */
static PyObject *supplies_helper(PyObject *self, PyObject *args) {
    Py_ssize_t n;
    Py_buffer bcode_b, rates_b, slot_b;
    PyObject *part_obj;
    if (!PyArg_ParseTuple(args, "ny*y*y*O", &n, &bcode_b, &rates_b, &slot_b,
                          &part_obj))
        return NULL;
    PyObject *result = NULL;
    Py_buffer part_b = {0};
    int have_part = 0;
    if (part_obj != Py_None) {
        if (PyObject_GetBuffer(part_obj, &part_b, PyBUF_SIMPLE) < 0) goto done;
        have_part = 1;
    }
    if (check_len(&bcode_b, n, 4, "bcode") ||
        check_len(&slot_b, n, 4, "user_slot"))
        goto done;
    const int32_t *bcode = bcode_b.buf;
    const double *rates = rates_b.buf;
    const int32_t *slot = slot_b.buf;
    Py_ssize_t num_rates = rates_b.len / (Py_ssize_t)sizeof(double);
    result = PyBytes_FromStringAndSize(NULL, n * (Py_ssize_t)sizeof(double));
    if (!result) goto done;
    double *out = (double *)PyBytes_AS_STRING(result);
    const uint8_t *part = have_part ? part_b.buf : NULL;
    for (Py_ssize_t i = 0; i < n; i++) {
        int32_t code = bcode[i];
        if (code < 0 || code >= num_rates ||
            (part && (slot[i] < 0 || slot[i] >= part_b.len))) {
            Py_CLEAR(result);
            PyErr_SetString(PyExc_ValueError, "supplies: code out of range");
            goto done;
        }
        out[i] = (!part || part[slot[i]]) ? rates[code] : 0.0;
    }

done:
    PyBuffer_Release(&bcode_b);
    PyBuffer_Release(&rates_b);
    PyBuffer_Release(&slot_b);
    if (have_part) PyBuffer_Release(&part_b);
    return result;
}

static PyObject *sweep(PyObject *self, PyObject *args) {
    Py_ssize_t n, num_users, num_ex, num_pop, num_isp;
    Py_ssize_t windows_per_day, num_days;
    double dtau;
    int allow_cross, profile;
    Py_buffer dem_b, sup_b, uid_b, mid_b, slot_b, ex_b, pop_b, isp_b;
    Py_buffer ev_b;

    if (!PyArg_ParseTuple(
            args, "ny*y*y*y*y*y*y*y*nnnny*nndii", &n, &dem_b, &sup_b, &uid_b,
            &mid_b, &slot_b, &ex_b, &pop_b, &isp_b, &num_users, &num_ex,
            &num_pop, &num_isp, &ev_b, &windows_per_day, &num_days, &dtau,
            &allow_cross, &profile))
        return NULL;

    PyObject *result = NULL;
    Scratch scr;
    int have_scratch = 0;
    Py_ssize_t m = ev_b.len / (Py_ssize_t)sizeof(int64_t);

    if (n <= 0 || n > INT32_MAX || windows_per_day <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "sweep requires 0 < n <= INT32_MAX and "
                        "windows_per_day > 0");
        goto done;
    }
    if (check_len(&dem_b, n, 8, "demand") || check_len(&sup_b, n, 8, "supply") ||
        check_len(&uid_b, n, 8, "user_id") ||
        check_len(&mid_b, n, 8, "member_id") ||
        check_len(&slot_b, n, 4, "user_slot") ||
        check_len(&ex_b, n, 4, "ex_code") || check_len(&pop_b, n, 4, "pop_code") ||
        check_len(&isp_b, n, 4, "isp_code"))
        goto done;

    const double *demand0 = dem_b.buf;
    const double *supply = sup_b.buf;
    const int64_t *uid = uid_b.buf;
    const int64_t *mid = mid_b.buf;
    const int32_t *slot = slot_b.buf;
    const int32_t *ex = ex_b.buf;
    const int32_t *pop = pop_b.buf;
    const int32_t *ispc = isp_b.buf;
    /* Events are packed (window << 34) | (kind << 32) | session_index;
     * integer order == (window, kind, index) lexicographic order. */
    const int64_t *evp = ev_b.buf;

    Py_ssize_t ncodes = 1;
    if (num_ex > ncodes) ncodes = num_ex;
    if (num_pop > ncodes) ncodes = num_pop;
    if (num_isp > ncodes) ncodes = num_isp;
    Py_ssize_t nblk = ncodes > n ? ncodes : n;
    if (scratch_alloc(&scr, n, ncodes, nblk, num_users, num_days) < 0) {
        PyErr_NoMemory();
        goto done;
    }
    have_scratch = 1;

    double watch_total = 0.0, server_total = 0.0, demanded_total = 0.0;
    double tot_peer[N_LAYERS] = {0.0, 0.0, 0.0, 0.0};
    uint8_t tot_peer_present[N_LAYERS] = {0, 0, 0, 0};
    uint8_t tot_peer_order[N_LAYERS];
    int tot_peer_cnt = 0;
    Py_ssize_t day_cnt = 0, user_cnt = 0;
    double match_s = 0.0, account_s = 0.0;
    int oom = 0;

    Py_BEGIN_ALLOW_THREADS;
    {
        memcpy(scr.cur_demand, demand0, n * sizeof(double));
        int32_t head = -1, tail = -1;
        Py_ssize_t live = 0;
        uint64_t epoch = 0;
        int64_t prev_w = 0;
        Py_ssize_t index = 0;

        while (index < m) {
            int64_t w = evp[index] >> 34;
            if (w > prev_w && live > 0) {
                /* Collect the live members in list (== dict) order. */
                Py_ssize_t L = 0;
                for (int32_t j = head; j != -1; j = scr.nxt[j])
                    scr.order[L++] = j;

                Py_ssize_t viewers = 0;
                for (Py_ssize_t i = 0; i < L; i++)
                    if (scr.cur_demand[scr.order[i]] > 0.0) viewers++;
                double watch_per_window = (double)viewers * dtau;

                double t_match = profile ? now_seconds() : 0.0;

                /* -- match_window_arrays, transcribed ------------------ */
                double demanded_bits = 0.0;
                for (Py_ssize_t i = 0; i < L; i++)
                    demanded_bits += scr.cur_demand[scr.order[i]];
                double server_bits;
                double alloc_val[N_LAYERS];
                uint8_t alloc_present[N_LAYERS] = {0, 0, 0, 0};
                uint8_t alloc_order[N_LAYERS];
                int alloc_cnt = 0;
                Py_ssize_t up_cnt = 0;
                uint64_t up_epoch_cur = 0;

                if (L == 1) {
                    server_bits = scr.cur_demand[scr.order[0]];
                } else {
                    /* Seed: min over (demand > 0, user_id, member_id);
                     * keep-first on ties, exactly like python min(). */
                    Py_ssize_t seed = 0;
                    int sk_d = scr.cur_demand[scr.order[0]] > 0.0;
                    int64_t sk_u = uid[scr.order[0]], sk_m = mid[scr.order[0]];
                    for (Py_ssize_t i = 1; i < L; i++) {
                        int32_t pos = scr.order[i];
                        int kd = scr.cur_demand[pos] > 0.0;
                        int64_t ku = uid[pos], km = mid[pos];
                        if (kd < sk_d ||
                            (kd == sk_d &&
                             (ku < sk_u || (ku == sk_u && km < sk_m)))) {
                            seed = i;
                            sk_d = kd;
                            sk_u = ku;
                            sk_m = km;
                        }
                    }
                    /* Fresh: max over watchers by (user_id, member_id);
                     * replace only on strictly-greater (keep-first). */
                    Py_ssize_t fresh = -1;
                    int64_t fk_u = 0, fk_m = 0;
                    for (Py_ssize_t i = 0; i < L; i++) {
                        if (i == seed) continue;
                        int32_t pos = scr.order[i];
                        if (!(scr.cur_demand[pos] > 0.0)) continue;
                        int64_t ku = uid[pos], km = mid[pos];
                        if (fresh < 0 || ku > fk_u ||
                            (ku == fk_u && km > fk_m)) {
                            fresh = i;
                            fk_u = ku;
                            fk_m = km;
                        }
                    }
                    server_bits = scr.cur_demand[scr.order[seed]];
                    for (Py_ssize_t i = 0; i < L; i++) {
                        int32_t pos = scr.order[i];
                        scr.ph_dem[i] =
                            i == seed ? 0.0 : scr.cur_demand[pos];
                        scr.ph_sup[i] = supply[pos];
                    }
                    if (fresh >= 0) scr.ph_sup[fresh] = 0.0;

                    int num_phases = allow_cross ? 4 : 3;
                    for (int phase = 0; phase < num_phases; phase++) {
                        const int32_t *gcodes =
                            phase == 0 ? ex
                            : phase == 1 ? pop
                            : phase == 2 ? ispc
                                         : NULL;
                        Py_ssize_t nscopes;
                        if (gcodes == NULL) {
                            nscopes = 1;
                            scr.scope_off[0] = 0;
                            scr.scope_off[1] = (int32_t)L;
                            for (Py_ssize_t i = 0; i < L; i++)
                                scr.scope_members[i] = (int32_t)i;
                        } else {
                            epoch++;
                            nscopes = 0;
                            for (Py_ssize_t i = 0; i < L; i++) {
                                int32_t c = gcodes[scr.order[i]];
                                if (scr.scope_epoch[c] != epoch) {
                                    scr.scope_epoch[c] = epoch;
                                    scr.scope_id[c] = (int32_t)nscopes;
                                    scr.scope_count[nscopes] = 0;
                                    nscopes++;
                                }
                                scr.scope_count[scr.scope_id[c]]++;
                            }
                            scr.scope_off[0] = 0;
                            for (Py_ssize_t sc = 0; sc < nscopes; sc++)
                                scr.scope_off[sc + 1] =
                                    scr.scope_off[sc] + scr.scope_count[sc];
                            for (Py_ssize_t sc = 0; sc < nscopes; sc++)
                                scr.scope_count[sc] = scr.scope_off[sc];
                            for (Py_ssize_t i = 0; i < L; i++) {
                                int32_t sc =
                                    scr.scope_id[gcodes[scr.order[i]]];
                                scr.scope_members[scr.scope_count[sc]++] =
                                    (int32_t)i;
                            }
                        }
                        for (Py_ssize_t sc = 0; sc < nscopes; sc++) {
                            Py_ssize_t lo = scr.scope_off[sc];
                            Py_ssize_t hi = scr.scope_off[sc + 1];
                            if (hi - lo < 2 && phase == 0) continue;
                            double td = 0.0, ts = 0.0;
                            for (Py_ssize_t i = lo; i < hi; i++)
                                td += scr.ph_dem[scr.scope_members[i]];
                            for (Py_ssize_t i = lo; i < hi; i++)
                                ts += scr.ph_sup[scr.scope_members[i]];
                            if (td <= EPS || ts <= EPS) continue;
                            /* Block totals: (0.0 + d) + s, then max of
                             * the final values -- python association. */
                            double mx;
                            if (phase == 0) {
                                /* Blocks are member positions: each is
                                 * its own block, so the max is direct. */
                                mx = 0.0 + scr.ph_dem[scr.scope_members[lo]] +
                                     scr.ph_sup[scr.scope_members[lo]];
                                for (Py_ssize_t i = lo + 1; i < hi; i++) {
                                    double v =
                                        0.0 +
                                        scr.ph_dem[scr.scope_members[i]] +
                                        scr.ph_sup[scr.scope_members[i]];
                                    if (v > mx) mx = v;
                                }
                            } else {
                                const int32_t *bcodes =
                                    phase == 1 ? ex
                                    : phase == 2 ? pop
                                                 : ispc;
                                epoch++;
                                Py_ssize_t nblocks = 0;
                                for (Py_ssize_t i = lo; i < hi; i++) {
                                    int32_t posn = scr.scope_members[i];
                                    int32_t b = bcodes[scr.order[posn]];
                                    if (scr.block_epoch[b] != epoch) {
                                        scr.block_epoch[b] = epoch;
                                        scr.block_val[b] = 0.0;
                                        scr.block_list[nblocks++] = b;
                                    }
                                    double v = scr.block_val[b];
                                    v = v + scr.ph_dem[posn];
                                    v = v + scr.ph_sup[posn];
                                    scr.block_val[b] = v;
                                }
                                mx = scr.block_val[scr.block_list[0]];
                                for (Py_ssize_t i = 1; i < nblocks; i++) {
                                    double v =
                                        scr.block_val[scr.block_list[i]];
                                    if (v > mx) mx = v;
                                }
                            }
                            double bound = td + ts - mx;
                            double transferred = td;
                            if (ts < transferred) transferred = ts;
                            if (bound < transferred) transferred = bound;
                            if (transferred <= EPS) continue;
                            double df = transferred / td;
                            double sf = transferred / ts;
                            for (Py_ssize_t i = lo; i < hi; i++) {
                                int32_t posn = scr.scope_members[i];
                                double sp = scr.ph_sup[posn];
                                if (sp > 0.0) {
                                    double contributed = sp * sf;
                                    int32_t us = slot[scr.order[posn]];
                                    if (up_epoch_cur == 0) {
                                        epoch++;
                                        up_epoch_cur = epoch;
                                    }
                                    if (scr.up_epoch[us] != up_epoch_cur) {
                                        scr.up_epoch[us] = up_epoch_cur;
                                        scr.up_acc[us] = 0.0;
                                        scr.up_list[up_cnt++] = us;
                                    }
                                    scr.up_acc[us] =
                                        scr.up_acc[us] + contributed;
                                    scr.ph_sup[posn] = sp - contributed;
                                }
                                double dm = scr.ph_dem[posn];
                                if (dm > 0.0)
                                    scr.ph_dem[posn] = dm - dm * df;
                            }
                            if (!alloc_present[phase]) {
                                alloc_present[phase] = 1;
                                alloc_order[alloc_cnt++] = (uint8_t)phase;
                                alloc_val[phase] = 0.0;
                            }
                            alloc_val[phase] =
                                alloc_val[phase] + transferred;
                        }
                    }
                    for (Py_ssize_t i = 0; i < L; i++)
                        server_bits += scr.ph_dem[i];
                }
                /* -- end match_window_arrays --------------------------- */

                double t_account = 0.0;
                if (profile) {
                    t_account = now_seconds();
                    match_s += t_account - t_match;
                }

                double stretch_watch = 0.0;
                int64_t window = prev_w;
                while (window < w) {
                    int64_t day = window / windows_per_day;
                    int64_t day_end = (day + 1) * windows_per_day;
                    int64_t end = w < day_end ? w : day_end;
                    double chunk = (double)(end - window);
                    if (!scr.day_touched[day]) {
                        scr.day_touched[day] = 1;
                        scr.day_order[day_cnt++] = day;
                    }
                    double watch_chunk = watch_per_window * chunk;
                    scr.day_watch[day] += watch_chunk;
                    double server_chunk = server_bits * chunk;
                    double demanded_chunk = demanded_bits * chunk;
                    server_total += server_chunk;
                    demanded_total += demanded_chunk;
                    scr.day_server[day] += server_chunk;
                    scr.day_demanded[day] += demanded_chunk;
                    for (int k = 0; k < alloc_cnt; k++) {
                        int layer = alloc_order[k];
                        double peer_chunk = alloc_val[layer] * chunk;
                        if (!tot_peer_present[layer]) {
                            tot_peer_present[layer] = 1;
                            tot_peer_order[tot_peer_cnt++] = (uint8_t)layer;
                        }
                        tot_peer[layer] += peer_chunk;
                        Py_ssize_t dslot = day * N_LAYERS + layer;
                        if (!scr.day_peer_present[dslot]) {
                            scr.day_peer_present[dslot] = 1;
                            scr.day_peer_seq[day * N_LAYERS +
                                             scr.day_peer_cnt[day]++] =
                                (uint8_t)layer;
                        }
                        scr.day_peer[dslot] += peer_chunk;
                    }
                    for (Py_ssize_t i = 0; i < L; i++) {
                        int32_t pos = scr.order[i];
                        int32_t us = slot[pos];
                        if (!scr.user_touched[us]) {
                            scr.user_touched[us] = 1;
                            scr.user_order[user_cnt++] = us;
                        }
                        scr.user_watched[us] +=
                            scr.cur_demand[pos] * chunk;
                    }
                    for (Py_ssize_t k = 0; k < up_cnt; k++) {
                        int32_t us = scr.up_list[k];
                        if (!scr.user_touched[us]) {
                            scr.user_touched[us] = 1;
                            scr.user_order[user_cnt++] = us;
                        }
                        scr.user_uploaded[us] += scr.up_acc[us] * chunk;
                    }
                    stretch_watch += watch_chunk;
                    window = end;
                }
                watch_total += stretch_watch;
                if (profile) account_s += now_seconds() - t_account;
            }
            if (w > prev_w) prev_w = w;
            while (index < m && (evp[index] >> 34) == w) {
                int64_t event = evp[index];
                int kind = (int)((event >> 32) & 3);
                int32_t sess = (int32_t)(event & 0xFFFFFFFF);
                if (kind == K_REMOVE) {
                    if (scr.in_list[sess]) {
                        scr.in_list[sess] = 0;
                        int32_t before = scr.prv[sess];
                        int32_t after = scr.nxt[sess];
                        if (before != -1)
                            scr.nxt[before] = after;
                        else
                            head = after;
                        if (after != -1)
                            scr.prv[after] = before;
                        else
                            tail = before;
                        live--;
                    }
                } else if (kind == K_DEMOTE) {
                    if (scr.in_list[sess]) scr.cur_demand[sess] = 0.0;
                } else {
                    scr.in_list[sess] = 1;
                    scr.prv[sess] = tail;
                    scr.nxt[sess] = -1;
                    if (tail == -1)
                        head = sess;
                    else
                        scr.nxt[tail] = sess;
                    tail = sess;
                    live++;
                }
                index++;
            }
        }
    }
    Py_END_ALLOW_THREADS;
    (void)oom;

    /* Build the flat result tuple. */
    PyObject *peer_list = PyList_New(tot_peer_cnt);
    if (!peer_list) goto done;
    for (int k = 0; k < tot_peer_cnt; k++) {
        int layer = tot_peer_order[k];
        PyObject *item = Py_BuildValue("(id)", layer, tot_peer[layer]);
        if (!item) {
            Py_DECREF(peer_list);
            goto done;
        }
        PyList_SET_ITEM(peer_list, k, item);
    }
    PyObject *day_list = PyList_New(day_cnt);
    if (!day_list) {
        Py_DECREF(peer_list);
        goto done;
    }
    for (Py_ssize_t k = 0; k < day_cnt; k++) {
        int64_t day = scr.day_order[k];
        int cnt = scr.day_peer_cnt[day];
        PyObject *inner = PyList_New(cnt);
        if (!inner) {
            Py_DECREF(peer_list);
            Py_DECREF(day_list);
            goto done;
        }
        for (int t = 0; t < cnt; t++) {
            int layer = scr.day_peer_seq[day * N_LAYERS + t];
            PyObject *item = Py_BuildValue(
                "(id)", layer, scr.day_peer[day * N_LAYERS + layer]);
            if (!item) {
                Py_DECREF(inner);
                Py_DECREF(peer_list);
                Py_DECREF(day_list);
                goto done;
            }
            PyList_SET_ITEM(inner, t, item);
        }
        PyObject *entry = Py_BuildValue(
            "(LdddN)", (long long)day, scr.day_watch[day],
            scr.day_server[day], scr.day_demanded[day], inner);
        if (!entry) {
            Py_DECREF(peer_list);
            Py_DECREF(day_list);
            goto done;
        }
        PyList_SET_ITEM(day_list, k, entry);
    }
    PyObject *user_list = PyList_New(user_cnt);
    if (!user_list) {
        Py_DECREF(peer_list);
        Py_DECREF(day_list);
        goto done;
    }
    for (Py_ssize_t k = 0; k < user_cnt; k++) {
        int32_t us = scr.user_order[k];
        PyObject *item = Py_BuildValue("(idd)", (int)us, scr.user_watched[us],
                                       scr.user_uploaded[us]);
        if (!item) {
            Py_DECREF(peer_list);
            Py_DECREF(day_list);
            Py_DECREF(user_list);
            goto done;
        }
        PyList_SET_ITEM(user_list, k, item);
    }
    result = Py_BuildValue("(dddNNNdd)", watch_total, server_total,
                           demanded_total, peer_list, day_list, user_list,
                           match_s, account_s);

done:
    if (have_scratch) scratch_free(&scr);
    PyBuffer_Release(&dem_b);
    PyBuffer_Release(&sup_b);
    PyBuffer_Release(&uid_b);
    PyBuffer_Release(&mid_b);
    PyBuffer_Release(&slot_b);
    PyBuffer_Release(&ex_b);
    PyBuffer_Release(&pop_b);
    PyBuffer_Release(&isp_b);
    PyBuffer_Release(&ev_b);
    return result;
}

static PyMethodDef ckernel_methods[] = {
    {"sweep", sweep, METH_VARARGS,
     "Columnar swarm sweep over packed schedule columns; returns the "
     "flat accumulator tuple kernel_columns materializes."},
    {"build", build, METH_VARARGS,
     "Build packed schedule columns straight from Session objects "
     "(no-linger case); returns None when the python builder should "
     "take over."},
    {"decode_build", decode_build, METH_VARARGS,
     "Fused zero-object ingest: decode raw 56-byte store records and "
     "build packed schedule columns in one pass over the extent buffer "
     "(no-linger case); returns None when the python path should take "
     "over."},
    {"supplies", supplies_helper, METH_VARARGS,
     "Per-session supply column from per-bitrate rates (and optional "
     "per-slot participation bytes) for a native-built schedule."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.sim._ckernel",
    "Compiled columnar swarm sweep (bit-for-bit replay of the python "
    "kernels; see repro/sim/kernel_columns.py).",
    -1,
    ckernel_methods,
};

PyMODINIT_FUNC PyInit__ckernel(void) {
    return PyModule_Create(&ckernel_module);
}
