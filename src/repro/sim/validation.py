"""Controlled validation of the simulator against the analytical model.

The paper's central empirical claim is that the master equation (Eq. 12)
"is a reasonable approximation that can potentially be used for network
planning purposes" -- i.e. the closed form tracks the trace-driven
simulation.  This module packages that check as a reusable harness: it
manufactures *stationary* single-item workloads at chosen capacities
(flat arrivals, uniform bitrate, one ISP -- the M/M/inf model's exact
assumptions), simulates them, and compares measured offload and savings
against Eq. 3 / Eq. 12 point by point.

Used three ways: by the test-suite (tight tolerances under stationary
conditions), by the validation benchmark, and by users who modify the
engine and want to know it still honours the theory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.core.energy import EnergyModel, VALANCIUS
from repro.core.savings import SavingsModel
from repro.sim.engine import SimulationConfig, Simulator
from repro.topology.city import CityNetwork
from repro.topology.isp import ISPNetwork
from repro.trace.diurnal import FLAT_PROFILE
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.population import DeviceProfile

__all__ = ["ValidationPoint", "ValidationReport", "validate_against_theory"]

#: Mean completion of the generator's Beta(6, 2) viewing model.
_MEAN_COMPLETION = 6.0 / (6.0 + 2.0)


@dataclass(frozen=True)
class ValidationPoint:
    """One (capacity, upload-ratio) comparison.

    Attributes:
        target_capacity: the capacity the workload was built to hit.
        measured_capacity: the capacity the simulation actually measured.
        upload_ratio: the ``q / beta`` simulated.
        offload_sim: measured offload fraction ``G``.
        offload_theory: Eq. 3 at the measured capacity.
        savings_sim: measured savings ``S`` (Eq. 1).
        savings_theory: Eq. 12 at the measured capacity.
    """

    target_capacity: float
    measured_capacity: float
    upload_ratio: float
    offload_sim: float
    offload_theory: float
    savings_sim: float
    savings_theory: float

    @property
    def offload_error(self) -> float:
        return abs(self.offload_sim - self.offload_theory)

    @property
    def savings_error(self) -> float:
        return abs(self.savings_sim - self.savings_theory)


@dataclass(frozen=True)
class ValidationReport:
    """All validation points plus aggregate agreement."""

    model_name: str
    points: Tuple[ValidationPoint, ...]

    @property
    def max_offload_error(self) -> float:
        return max(p.offload_error for p in self.points)

    @property
    def max_savings_error(self) -> float:
        return max(p.savings_error for p in self.points)

    def passes(self, *, offload_tol: float = 0.02, savings_tol: float = 0.02) -> bool:
        """True when every point agrees within the given tolerances."""
        return (
            self.max_offload_error <= offload_tol
            and self.max_savings_error <= savings_tol
        )

    def render(self) -> str:
        """The comparison as a table (one row per point)."""
        rows = [
            [
                round(p.measured_capacity, 2),
                p.upload_ratio,
                round(p.offload_sim, 4),
                round(p.offload_theory, 4),
                round(p.savings_sim, 4),
                round(p.savings_theory, 4),
            ]
            for p in self.points
        ]
        return render_table(
            ["capacity", "q/beta", "G sim", "G theo", "S sim", "S theo"],
            rows,
            title=f"Simulator vs Eq. 3/12 ({self.model_name}, stationary workloads)",
        )


def validate_against_theory(
    capacities: Sequence[float] = (1.0, 3.0, 8.0, 20.0),
    upload_ratios: Sequence[float] = (0.4, 1.0),
    *,
    model: EnergyModel = VALANCIUS,
    days: int = 4,
    seed: int = 20180601,
) -> ValidationReport:
    """Run the stationary validation sweep.

    Args:
        capacities: target swarm capacities to manufacture.
        upload_ratios: ``q / beta`` values to simulate at each capacity.
        model: energy parameterisation for the savings comparison.
        days: workload length (longer = tighter statistics).
        seed: workload seed.

    Returns:
        A :class:`ValidationReport`; points appear in sweep order.
    """
    if not capacities:
        raise ValueError("need at least one capacity")
    if not upload_ratios:
        raise ValueError("need at least one upload ratio")

    # One ISP, one bitrate, flat arrivals: exactly the closed form's world.
    city = CityNetwork(
        name="validation-city", isps=(ISPNetwork("ISP-1"),), shares=(1.0,)
    )
    device_mix = (DeviceProfile("uniform", bitrate=1.5e6, share=1.0),)

    points: List[ValidationPoint] = []
    for capacity in capacities:
        trace = _stationary_item_trace(capacity, days, seed, city, device_mix)
        for ratio in upload_ratios:
            simulator = Simulator(SimulationConfig(upload_ratio=ratio))
            result = simulator.run(trace)
            swarm = max(result.per_swarm.values(), key=lambda r: r.capacity)
            theory = SavingsModel(model, upload_ratio=ratio)
            points.append(
                ValidationPoint(
                    target_capacity=capacity,
                    measured_capacity=swarm.capacity,
                    upload_ratio=ratio,
                    offload_sim=swarm.ledger.offload_fraction,
                    offload_theory=theory.offload_fraction(swarm.capacity),
                    savings_sim=swarm.savings(model),
                    savings_theory=theory.savings(swarm.capacity),
                )
            )
    return ValidationReport(model_name=model.name, points=tuple(points))


def _stationary_item_trace(capacity, days, seed, city, device_mix):
    """A flat-arrival single-item trace hitting a target capacity."""
    horizon = days * 86_400.0
    # Little's law, inverted: views = c * horizon / mean session length.
    # Catalogue durations average ~2 610 s over the TV slot grid.
    mean_duration = 2_610.0 * _MEAN_COMPLETION
    views = capacity * horizon / mean_duration
    config = GeneratorConfig(
        num_users=max(200, int(views)),
        num_items=1,
        days=days,
        expected_sessions=0.0,
        pinned_views={"validation-item": views},
        seed=seed,
    )
    generator = TraceGenerator(
        config=config, city=city, device_mix=tuple(device_mix), profile=FLAT_PROFILE
    )
    return generator.generate()
