"""The discrete time-step simulator (paper Section IV.A).

The paper: "we implemented a discrete time step simulator where
timestamps of events (i.e., start times and durations), and bitrates of
user sessions, are taken from the trace.  The simulator proceeds with a
fixed time step of dtau = 10 seconds where for each dtau the simulator
assesses how many peers are online, how much upload bandwidth they can
share and how much download bandwidth they require ... We match peers
that are closest to each other."

Implementation notes:

* Sessions are quantized to whole windows; a session covers windows
  ``[floor(start / dtau), ceil(end / dtau))`` and demands
  ``bitrate * dtau`` bits in each.
* Between consecutive session starts/ends the online set of a swarm is
  constant, so the per-window allocation is identical across the whole
  stretch; the engine computes it once and scales -- the results are
  *bit-for-bit identical* to stepping every window, at a cost of
  O(sessions) rather than O(watched-time / dtau) per swarm.
* Stretches are split at day boundaries so per-day ledgers stay exact
  (``dtau`` must divide a day; 2/10/30/60 s all do).

Sharding / merge architecture (the parallel runtime):

* The engine itself holds no simulation state.  It partitions the
  session stream into canonically ordered, immutable
  :class:`~repro.sim.kernel.SwarmTask` shards
  (:func:`~repro.sim.kernel.build_tasks`), hands them to an execution
  backend (:mod:`repro.sim.backends` -- serial loop, thread pool or
  process pool, selected via ``SimulationConfig(workers=...,
  backend=...)``), and deterministically folds the returned
  :class:`~repro.sim.kernel.SwarmOutput` partials
  (:func:`~repro.sim.kernel.merge_outputs`).
* Each kernel run is a pure function of (task, config) and returns its
  own per-(ISP, day) and per-user deltas instead of mutating shared
  dicts; backends restore task order before the fold, so every backend
  -- and every worker count -- produces bit-for-bit identical
  :class:`~repro.sim.results.SimulationResult` values.
* :meth:`Simulator.run_stream` feeds the same pipeline from a lazy
  session iterator (e.g. ``TraceGenerator.iter_sessions()``) without
  ever materializing a full :class:`~repro.trace.events.Trace`.
* ``SimulationConfig(grouping=...)`` picks how the stream becomes
  tasks: "memory" (dict-of-lists in the coordinator, O(sessions)
  resident) or "external" (out-of-core merge-sort into a shard file
  whose extents workers decode themselves; coordinator grouping
  memory bounded by the sort buffer -- :mod:`repro.sim.grouping`).
* ``SimulationConfig(reduction=...)`` picks how shard outputs reduce:
  "batched" materializes all outputs before the fold, "streaming"
  folds them as shards complete with at most ``workers + 1`` blocks
  resident, and "spill" additionally keeps per-user deltas on disk
  until the result is built (:mod:`repro.sim.reduce`).  All grouping
  and reduction modes are bit-for-bit identical.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.sim.backends import BACKEND_NAMES, ExecutionBackend, resolve_backend
from repro.sim.grouping import (
    GROUPING_MODES,
    GroupingStats,
    GroupingStrategy,
    TaskPlan,
    resolve_grouping,
)
from repro.sim.kernel import merge_outputs
from repro.sim.policies import PAPER_POLICY, SwarmPolicy
from repro.sim.reduce import (
    REDUCTION_MODES,
    FootprintAccumulator,
    ReductionStats,
    StreamingReducer,
    SweepReducer,
)
from repro.sim.results import SimulationResult
from repro.trace.events import SECONDS_PER_DAY, Session, Trace
from repro.trace.store import trace_fingerprint

__all__ = [
    "KERNEL_MODES",
    "SimulationConfig",
    "Simulator",
    "SweepStats",
    "simulate",
]

#: Selectable per-swarm kernels: the single source of truth consumed by
#: ``SimulationConfig`` validation and the CLI's ``--kernel`` choices.
#: All modes are bit-for-bit identical (see ``SimulationConfig.kernel``).
KERNEL_MODES: tuple = ("auto", "object", "columnar")


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of a simulation run.

    Attributes:
        delta_tau: window length in seconds (paper: 10 s); must divide a
            day so per-day accounting is exact.
        upload_ratio: per-peer upload bandwidth as a fraction of the
            session bitrate (the paper's ``q / beta`` axis).
        upload_bandwidth: absolute per-peer upload bandwidth in bits/s;
            overrides ``upload_ratio`` when set (models a fixed access
            technology instead of a ratio).
        policy: swarm scoping policy (paper default: ISP-friendly,
            bitrate-split).
        allow_cross_isp_matching: enable the extra cross-ISP matching
            phase (transit-priced); only the ablation turns this on.
        locality_aware_matching: match closest-first (paper default);
            False switches to random matching for the locality ablation.
        participation_rate: fraction of users who contribute upload
            capacity.  The paper's conclusion cites Akamai NetSession,
            where "as little as 30 % of its users participate";
            non-participants still stream but never upload.  Which users
            participate is a deterministic hash of the user id, so the
            same users opt in across runs and swarms.
        seed_linger_seconds: how long a finished viewer keeps serving
            the content as an upload-only "lingering seed" (the paper's
            future-work caching direction).  0 reproduces the paper:
            peers share only what they are currently watching.
        workers: how many workers execute swarm shards.  ``None`` or 1
            runs serially; > 1 selects the process pool unless
            ``backend`` says otherwise.  Results are bit-for-bit
            identical at any worker count.
        backend: execution backend name ("serial", "thread", "process"
            or "distributed"); ``None`` auto-selects from ``workers``.
            See :mod:`repro.sim.backends`.  "distributed" fans swarm
            shards out over a file-based work queue to worker processes
            that may live on other hosts (``python -m
            repro.sim.worker``); ``workers`` then sizes the locally
            spawned worker fleet.  Results stay bit-for-bit identical
            to serial.
        queue_dir: the shared work-queue directory for
            ``backend="distributed"`` (any storage every worker host
            can see).  ``None`` uses a run-scoped private temporary
            queue served by locally spawned workers.  Only valid with
            the distributed backend.
        reduction: how shard outputs reduce into the final result (see
            :data:`repro.sim.reduce.REDUCTION_MODES`).  "batched" (the
            default) materializes every output before folding;
            "streaming" folds outputs as shards complete, holding at
            most ``workers + 1`` shard blocks resident and packing
            per-user traffic into float columns; "spill" additionally
            appends per-user deltas to a disk log until the final
            result is materialized.  All three modes are bit-for-bit
            identical -- the choice is a pure memory/IO trade.
        spill_dir: where "spill" mode writes its per-user delta log.
            ``None`` (the default) uses a run-scoped temporary
            directory that is removed once the result is built; an
            explicit directory keeps the log for out-of-core
            consumers (readable via
            :func:`repro.sim.reduce.iter_user_deltas`).  Only valid
            with ``reduction="spill"``.
        grouping: how the session stream is partitioned into swarm
            tasks (see :data:`repro.sim.grouping.GROUPING_MODES`).
            "memory" (the default) groups in the coordinator --
            O(sessions) resident during grouping; "external" groups by
            out-of-core merge-sort into a shard file whose extents
            workers decode themselves, bounding coordinator grouping
            memory by the sort buffer regardless of trace size.  Both
            modes are bit-for-bit identical on every backend and
            reduction mode.
        shard_dir: where "external" grouping keeps its sorted shard
            file.  ``None`` (the default) uses a run-scoped temporary
            directory that is removed once the run finishes; an
            explicit directory keeps the shard for out-of-core
            consumers.  Only valid with ``grouping="external"``.
        kernel: which per-swarm kernel sweeps the windows (see
            :data:`KERNEL_MODES`).  "object" is the original
            per-session-object kernel -- the semantics reference every
            other path must reproduce bit for bit.  "columnar" packs
            each swarm into flat per-session columns and sweeps them
            with :mod:`repro.sim.kernel_columns` (using the compiled
            ``repro.sim._ckernel`` extension when it is built, a pure
            python column sweep otherwise).  "auto" (the default)
            picks columnar for single-config runs and keeps the
            amortized object multi-kernel for sweeps.  All kernels are
            bit-for-bit identical; the choice is wall-clock only.
            Random (locality-blind) matching always runs on the object
            kernel regardless of this setting.
    """

    delta_tau: float = 10.0
    upload_ratio: float = 1.0
    upload_bandwidth: Optional[float] = None
    policy: SwarmPolicy = PAPER_POLICY
    allow_cross_isp_matching: bool = False
    locality_aware_matching: bool = True
    participation_rate: float = 1.0
    seed_linger_seconds: float = 0.0
    workers: Optional[int] = None
    backend: Optional[str] = None
    queue_dir: Optional[str] = None
    reduction: str = "batched"
    spill_dir: Optional[str] = None
    grouping: str = "memory"
    shard_dir: Optional[str] = None
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.delta_tau <= 0:
            raise ValueError(f"delta_tau must be > 0, got {self.delta_tau!r}")
        if SECONDS_PER_DAY % self.delta_tau != 0:
            raise ValueError(
                f"delta_tau must divide a day (86400 s), got {self.delta_tau!r}"
            )
        if self.upload_ratio < 0:
            raise ValueError(f"upload_ratio must be >= 0, got {self.upload_ratio!r}")
        if self.upload_bandwidth is not None and self.upload_bandwidth < 0:
            raise ValueError(
                f"upload_bandwidth must be >= 0, got {self.upload_bandwidth!r}"
            )
        if not 0.0 <= self.participation_rate <= 1.0:
            raise ValueError(
                f"participation_rate must be in [0, 1], got {self.participation_rate!r}"
            )
        if self.seed_linger_seconds < 0:
            raise ValueError(
                f"seed_linger_seconds must be >= 0, got {self.seed_linger_seconds!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, got {self.backend!r}"
            )
        if self.queue_dir is not None and self.backend != "distributed":
            raise ValueError(
                "queue_dir is only valid with backend='distributed', "
                f"got backend={self.backend!r}"
            )
        if self.reduction not in REDUCTION_MODES:
            raise ValueError(
                f"reduction must be one of {REDUCTION_MODES}, got {self.reduction!r}"
            )
        if self.spill_dir is not None and self.reduction != "spill":
            raise ValueError(
                "spill_dir is only valid with reduction='spill', "
                f"got reduction={self.reduction!r}"
            )
        if self.grouping not in GROUPING_MODES:
            raise ValueError(
                f"grouping must be one of {GROUPING_MODES}, got {self.grouping!r}"
            )
        if self.shard_dir is not None and self.grouping != "external":
            raise ValueError(
                "shard_dir is only valid with grouping='external', "
                f"got grouping={self.grouping!r}"
            )
        if self.kernel not in KERNEL_MODES:
            raise ValueError(
                f"kernel must be one of {KERNEL_MODES}, got {self.kernel!r}"
            )

    def upload_rate_for(self, bitrate: float) -> float:
        """A peer's upload bandwidth in bits/s given their bitrate."""
        if self.upload_bandwidth is not None:
            return self.upload_bandwidth
        return self.upload_ratio * bitrate

    def participates(self, user_id: int) -> bool:
        """Whether a user contributes upload capacity.

        A deterministic hash of the user id, so participation is a
        stable user property (across swarms, runs and processes) rather
        than per-window noise.
        """
        if self.participation_rate >= 1.0:
            return True
        if self.participation_rate <= 0.0:
            return False
        bucket = zlib.crc32(str(user_id).encode("ascii")) % 10_000
        return bucket < self.participation_rate * 10_000


@dataclass(frozen=True)
class SweepStats:
    """What one ``run_sweep`` actually shared, for benchmarks and tests.

    Attributes:
        configs: sweep configs evaluated.
        tasks: swarm tasks swept (each decoded and scheduled once for
            the whole sweep, not once per config).
        memo_hits: memo-eligible window allocations answered from the
            per-swarm allocation memo instead of re-solving
            ``match_window`` (see :func:`repro.sim.kernel.run_swarm_multi`).
        memo_misses: memo-eligible allocations that had to be solved.
        schedule_builds: event schedules built across all tasks -- one
            per task per distinct ``(delta_tau, seed_linger,
            participation)`` signature, versus ``tasks x configs`` for
            independent runs.
        cache_hit: the grouping layer's shard-cache outcome (see
            :attr:`repro.sim.grouping.GroupingStats.cache_hit`).
    """

    configs: int
    tasks: int
    memo_hits: int
    memo_misses: int
    schedule_builds: int
    cache_hit: Optional[bool] = None

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of memo-eligible allocations served from the memo."""
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0


class Simulator:
    """Runs the windowed hybrid-CDN simulation over a trace.

    Args:
        config: run parameters (including ``workers`` / ``backend``).
        backend: explicit :class:`~repro.sim.backends.ExecutionBackend`
            instance; overrides whatever the config would select (used
            by tests and benchmarks to inject a backend directly).
        grouping: explicit :class:`~repro.sim.grouping.GroupingStrategy`
            instance; overrides whatever the config would select (used
            by tests and benchmarks to inject e.g. an
            ``ExternalGrouping`` with a tiny sort buffer).
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        backend: Optional[ExecutionBackend] = None,
        grouping: Optional[GroupingStrategy] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self._backend = backend
        # An injected backend belongs to the caller; one resolved from
        # the config is owned (and released) by this simulator.
        self._owns_backend = backend is None
        self._grouping = grouping
        #: :class:`~repro.sim.reduce.ReductionStats` of the most recent
        #: run -- how many blocks folded, the peak resident partial
        #: count, and where deltas spilled.  Benchmarks and tests
        #: assert the streaming memory bound through this.
        self.last_reduction: Optional[ReductionStats] = None
        #: :class:`~repro.sim.grouping.GroupingStats` of the most recent
        #: run -- how grouping happened (mode, peak buffered sessions,
        #: spilled runs, shard location, cache outcome).  Benchmarks and
        #: tests assert the out-of-core grouping bound through this.
        self.last_grouping: Optional[GroupingStats] = None
        #: :class:`SweepStats` of the most recent :meth:`run_sweep` --
        #: how much work the sweep actually shared (allocation-memo hit
        #: rate, schedule builds, shard-cache outcome).  ``None`` after
        #: single-config runs.
        self.last_sweep: Optional[SweepStats] = None

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend this simulator dispatches to.

        Resolved from the config once and cached (the config is frozen,
        so the resolution cannot change).
        """
        if self._backend is None:
            self._backend = resolve_backend(
                self.config.backend, self.config.workers, self.config.queue_dir
            )
        return self._backend

    @property
    def grouping(self) -> GroupingStrategy:
        """The grouping strategy this simulator partitions streams with.

        Resolved from the config once and cached (the config is frozen,
        so the resolution cannot change).
        """
        if self._grouping is None:
            self._grouping = resolve_grouping(
                self.config.grouping, self.config.shard_dir
            )
        return self._grouping

    def close(self) -> None:
        """Release backend-owned resources (pools, worker fleets, queues).

        Only closes a backend this simulator resolved from its own
        config -- an injected backend belongs to the caller.  Safe to
        call repeatedly; a closed backend re-creates its resources
        lazily if the simulator is used again.
        """
        if (
            self._owns_backend
            and self._backend is not None
            and hasattr(self._backend, "close")
        ):
            self._backend.close()

    def _cache_token(self, trace: Trace) -> Optional[str]:
        """A shard-cache token for ``trace``, when caching can pay off.

        The fingerprint is one streamed hashing pass -- far cheaper than
        the sort it can skip -- but still only worth computing when the
        grouping strategy actually persists shards
        (:attr:`~repro.sim.grouping.GroupingStrategy.supports_cache`).
        """
        if getattr(self.grouping, "supports_cache", False):
            return trace_fingerprint(trace)
        return None

    def run(self, trace: Trace) -> SimulationResult:
        """Simulate the whole trace.

        With a cache-capable grouping (``grouping="external"`` and a
        persistent ``shard_dir``), the trace is fingerprinted and the
        sorted shard is reused across runs and processes
        (:attr:`last_grouping` ``.cache_hit`` reports the outcome).

        Returns:
            A :class:`~repro.sim.results.SimulationResult` with ledgers
            at system / swarm / (ISP, day) / user level.
        """
        return self.run_stream(
            trace, trace.horizon, cache_token=self._cache_token(trace)
        )

    def run_stream(
        self,
        sessions: Iterable[Session],
        horizon: float,
        *,
        cache_token: Optional[str] = None,
    ) -> SimulationResult:
        """Simulate a session stream without materializing a Trace.

        Accepts any iterable of sessions -- in particular
        ``TraceGenerator.iter_sessions()`` -- consumed exactly once and
        partitioned directly into swarm shards.  Because shards are
        canonically ordered, the result is a pure function of the
        session *multiset*: ``run_stream(iter(trace), trace.horizon)``
        equals ``run(trace)`` bit for bit.

        With ``config.reduction`` set to "streaming" or "spill" the
        whole pipeline is end-to-end streaming: sessions in, folded
        result out, with the peak resident shard count bounded by
        ``workers + 1`` instead of the shard total (see
        :mod:`repro.sim.reduce`).  Results are bit-for-bit identical
        across reduction modes.

        Args:
            sessions: the session stream (any order).
            horizon: trace length in seconds (must cover every session).
            cache_token: optional content fingerprint of the stream
                (see :func:`repro.trace.store.trace_fingerprint`); with
                a cache-capable grouping it lets the plan come from the
                content-addressed shard cache without consuming
                ``sessions``.
        """
        config = self.config
        self.last_reduction = None  # never report a previous run's stats
        self.last_grouping = None
        self.last_sweep = None
        plan = self.grouping.plan(
            sessions, horizon, config.policy, cache_token=cache_token
        )
        try:
            if config.reduction == "batched":
                outputs = self.backend.map_swarms(plan, config)
                self.last_reduction = ReductionStats(
                    mode="batched",
                    outputs=len(outputs),
                    blocks=len(outputs),
                    # Everything is resident at once by construction.
                    peak_resident=len(outputs),
                    peak_resident_outputs=len(outputs),
                )
                return merge_outputs(
                    outputs,
                    delta_tau=config.delta_tau,
                    horizon=horizon,
                    upload_ratio=config.upload_ratio,
                )
            return self._run_streaming(plan, horizon)
        finally:
            # Cleanup before stats: a temporary shard is deleted here,
            # and the stats must not advertise a path that is gone.
            plan.cleanup()
            self.last_grouping = plan.stats()

    def _run_streaming(self, tasks: TaskPlan, horizon: float) -> SimulationResult:
        """The incremental path: fold shard blocks as they complete."""
        config = self.config
        temp_spill_dir: Optional[str] = None
        spill_path: Optional[Path] = None
        if config.reduction == "spill":
            if config.spill_dir is not None:
                spill_root = Path(config.spill_dir)
                spill_root.mkdir(parents=True, exist_ok=True)
            else:
                temp_spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
                spill_root = Path(temp_spill_dir)
            handle, raw_path = tempfile.mkstemp(
                prefix="user-deltas-", suffix=".log", dir=spill_root
            )
            os.close(handle)
            spill_path = Path(raw_path)
        users = FootprintAccumulator(spill_path=spill_path)
        reducer = StreamingReducer(
            delta_tau=config.delta_tau,
            horizon=horizon,
            upload_ratio=config.upload_ratio,
            users=users,
        )
        try:
            for start_index, block in self.backend.iter_outputs(tasks, config):
                reducer.add(start_index, block)
            result = reducer.result()
        finally:
            users.close()
            if temp_spill_dir is not None:
                shutil.rmtree(temp_spill_dir, ignore_errors=True)
        if reducer.outputs_folded != len(tasks):
            raise RuntimeError(
                f"backend {self.backend.name!r} delivered "
                f"{reducer.outputs_folded} outputs for {len(tasks)} tasks"
            )
        stats = reducer.stats(config.reduction)
        if temp_spill_dir is not None:
            # The run-scoped temp log is gone; don't advertise its path.
            stats = replace(stats, spill_path=None)
        self.last_reduction = stats
        return result

    # ------------------------------------------------------------------
    # Multi-config sweeps
    # ------------------------------------------------------------------

    def run_sweep(
        self, trace: Trace, configs: Sequence[SimulationConfig]
    ) -> List[SimulationResult]:
        """Simulate the whole trace under every config in one pass.

        The sweep-amortized counterpart of K independent :meth:`run`
        calls: the trace is grouped once, each swarm's sessions are
        decoded and scheduled once, the membership timeline is swept
        once per distinct schedule signature, and every backend
        round-trip carries one task ref plus K config deltas.  Results
        are **bit-for-bit identical** to the K independent runs, in
        config order; :attr:`last_sweep` reports what was shared.
        """
        return self.run_sweep_stream(
            trace, trace.horizon, configs, cache_token=self._cache_token(trace)
        )

    def run_sweep_stream(
        self,
        sessions: Iterable[Session],
        horizon: float,
        configs: Sequence[SimulationConfig],
        *,
        cache_token: Optional[str] = None,
    ) -> List[SimulationResult]:
        """Simulate a session stream under every config in one pass.

        The swept configs supply the *physics* axes (``delta_tau``,
        upload ratio/bandwidth, participation, lingering, matching
        flags) and must share one swarm policy -- the task partition is
        policy-defined, so mixed policies cannot share a plan.  The
        *runtime* knobs (backend, workers, reduction, grouping,
        spill/shard dirs) come from this simulator's own config; the
        swept configs' runtime fields are ignored.

        Returns per-config results in config order, each bit-for-bit
        equal to ``run_stream`` under that config, on every backend x
        reduction x grouping combination.
        """
        configs = list(configs)
        if not configs:
            raise ValueError("run_sweep needs at least one config")
        policy = configs[0].policy
        for config in configs[1:]:
            if config.policy != policy:
                raise ValueError(
                    "sweep configs must share one swarm policy; got "
                    f"{policy!r} and {config.policy!r} (run separate sweeps "
                    "per policy -- the task partition is policy-defined)"
                )
        run_config = self.config
        self.last_reduction = None
        self.last_grouping = None
        self.last_sweep = None
        plan = self.grouping.plan(sessions, horizon, policy, cache_token=cache_token)
        try:
            if run_config.reduction == "batched":
                multis = self.backend.map_swarms_multi(plan, configs)
                memo_hits = sum(multi.memo_hits for multi in multis)
                memo_misses = sum(multi.memo_misses for multi in multis)
                schedule_builds = sum(multi.schedule_builds for multi in multis)
                results = [
                    merge_outputs(
                        (multi.outputs[position] for multi in multis),
                        delta_tau=config.delta_tau,
                        horizon=horizon,
                        upload_ratio=config.upload_ratio,
                    )
                    for position, config in enumerate(configs)
                ]
                total_outputs = len(multis) * len(configs)
                self.last_reduction = ReductionStats(
                    mode="batched",
                    outputs=total_outputs,
                    blocks=total_outputs,
                    # Everything is resident at once by construction.
                    peak_resident=total_outputs,
                    peak_resident_outputs=total_outputs,
                )
            else:
                results, kernel_stats = self._run_streaming_sweep(
                    plan, horizon, configs
                )
                memo_hits, memo_misses, schedule_builds = kernel_stats
        finally:
            # Cleanup before stats: a temporary shard is deleted here,
            # and the stats must not advertise a path that is gone.
            plan.cleanup()
            self.last_grouping = plan.stats()
        self.last_sweep = SweepStats(
            configs=len(configs),
            tasks=len(plan),
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            schedule_builds=schedule_builds,
            cache_hit=self.last_grouping.cache_hit,
        )
        return results

    def _run_streaming_sweep(
        self,
        tasks: TaskPlan,
        horizon: float,
        configs: List[SimulationConfig],
    ):
        """The incremental sweep path: K reducers fed from one block stream."""
        config = self.config
        temp_spill_dir: Optional[str] = None
        spill_root: Optional[Path] = None
        if config.reduction == "spill":
            if config.spill_dir is not None:
                spill_root = Path(config.spill_dir)
                spill_root.mkdir(parents=True, exist_ok=True)
            else:
                temp_spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
                spill_root = Path(temp_spill_dir)
        accumulators: List[FootprintAccumulator] = []
        reducers: List[StreamingReducer] = []
        for position, sweep_config in enumerate(configs):
            spill_path: Optional[Path] = None
            if spill_root is not None:
                handle, raw_path = tempfile.mkstemp(
                    prefix=f"user-deltas-cfg{position}-", suffix=".log", dir=spill_root
                )
                os.close(handle)
                spill_path = Path(raw_path)
            users = FootprintAccumulator(spill_path=spill_path)
            accumulators.append(users)
            reducers.append(
                StreamingReducer(
                    delta_tau=sweep_config.delta_tau,
                    horizon=horizon,
                    upload_ratio=sweep_config.upload_ratio,
                    users=users,
                )
            )
        sweep_reducer = SweepReducer(reducers)
        memo_hits = memo_misses = schedule_builds = 0
        try:
            for start_index, block in self.backend.iter_outputs_multi(tasks, configs):
                for multi in block:
                    memo_hits += multi.memo_hits
                    memo_misses += multi.memo_misses
                    schedule_builds += multi.schedule_builds
                sweep_reducer.add(start_index, block)
            results = sweep_reducer.results()
        finally:
            for users in accumulators:
                users.close()
            if temp_spill_dir is not None:
                shutil.rmtree(temp_spill_dir, ignore_errors=True)
        if sweep_reducer.outputs_folded != len(tasks):
            raise RuntimeError(
                f"backend {self.backend.name!r} delivered "
                f"{sweep_reducer.outputs_folded} sweep outputs for "
                f"{len(tasks)} tasks"
            )
        stats = sweep_reducer.stats(config.reduction)
        if temp_spill_dir is not None:
            # The run-scoped temp log is gone; don't advertise its path.
            stats = replace(stats, spill_path=None)
        self.last_reduction = stats
        return results, (memo_hits, memo_misses, schedule_builds)


def simulate(
    trace: Trace, config: Optional[SimulationConfig] = None
) -> SimulationResult:
    """One-call simulation with defaults (see :class:`SimulationConfig`)."""
    return Simulator(config).run(trace)
