"""The discrete time-step simulator (paper Section IV.A).

The paper: "we implemented a discrete time step simulator where
timestamps of events (i.e., start times and durations), and bitrates of
user sessions, are taken from the trace.  The simulator proceeds with a
fixed time step of dtau = 10 seconds where for each dtau the simulator
assesses how many peers are online, how much upload bandwidth they can
share and how much download bandwidth they require ... We match peers
that are closest to each other."

Implementation notes:

* Sessions are quantized to whole windows; a session covers windows
  ``[floor(start / dtau), ceil(end / dtau))`` and demands
  ``bitrate * dtau`` bits in each.
* Between consecutive session starts/ends the online set of a swarm is
  constant, so the per-window allocation is identical across the whole
  stretch; the engine computes it once and scales -- the results are
  *bit-for-bit identical* to stepping every window, at a cost of
  O(sessions) rather than O(watched-time / dtau) per swarm.
* Stretches are split at day boundaries so per-day ledgers stay exact
  (``dtau`` must divide a day; 2/10/30/60 s all do).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.accounting import ByteLedger
from repro.sim.matching import PeerState, WindowAllocation, match_window
from repro.sim.policies import PAPER_POLICY, SwarmKey, SwarmPolicy
from repro.sim.results import SimulationResult, SwarmResult, UserTraffic
from repro.trace.events import SECONDS_PER_DAY, Session, Trace

__all__ = ["SimulationConfig", "Simulator", "simulate"]

#: Event kinds, in the order they apply within one window.
_REMOVE, _DEMOTE, _ADD = 0, 1, 2


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of a simulation run.

    Attributes:
        delta_tau: window length in seconds (paper: 10 s); must divide a
            day so per-day accounting is exact.
        upload_ratio: per-peer upload bandwidth as a fraction of the
            session bitrate (the paper's ``q / beta`` axis).
        upload_bandwidth: absolute per-peer upload bandwidth in bits/s;
            overrides ``upload_ratio`` when set (models a fixed access
            technology instead of a ratio).
        policy: swarm scoping policy (paper default: ISP-friendly,
            bitrate-split).
        allow_cross_isp_matching: enable the extra cross-ISP matching
            phase (transit-priced); only the ablation turns this on.
        locality_aware_matching: match closest-first (paper default);
            False switches to random matching for the locality ablation.
        participation_rate: fraction of users who contribute upload
            capacity.  The paper's conclusion cites Akamai NetSession,
            where "as little as 30 % of its users participate";
            non-participants still stream but never upload.  Which users
            participate is a deterministic hash of the user id, so the
            same users opt in across runs and swarms.
        seed_linger_seconds: how long a finished viewer keeps serving
            the content as an upload-only "lingering seed" (the paper's
            future-work caching direction).  0 reproduces the paper:
            peers share only what they are currently watching.
    """

    delta_tau: float = 10.0
    upload_ratio: float = 1.0
    upload_bandwidth: Optional[float] = None
    policy: SwarmPolicy = PAPER_POLICY
    allow_cross_isp_matching: bool = False
    locality_aware_matching: bool = True
    participation_rate: float = 1.0
    seed_linger_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.delta_tau <= 0:
            raise ValueError(f"delta_tau must be > 0, got {self.delta_tau!r}")
        if SECONDS_PER_DAY % self.delta_tau != 0:
            raise ValueError(
                f"delta_tau must divide a day (86400 s), got {self.delta_tau!r}"
            )
        if self.upload_ratio < 0:
            raise ValueError(f"upload_ratio must be >= 0, got {self.upload_ratio!r}")
        if self.upload_bandwidth is not None and self.upload_bandwidth < 0:
            raise ValueError(
                f"upload_bandwidth must be >= 0, got {self.upload_bandwidth!r}"
            )
        if not 0.0 <= self.participation_rate <= 1.0:
            raise ValueError(
                f"participation_rate must be in [0, 1], got {self.participation_rate!r}"
            )
        if self.seed_linger_seconds < 0:
            raise ValueError(
                f"seed_linger_seconds must be >= 0, got {self.seed_linger_seconds!r}"
            )

    def upload_rate_for(self, bitrate: float) -> float:
        """A peer's upload bandwidth in bits/s given their bitrate."""
        if self.upload_bandwidth is not None:
            return self.upload_bandwidth
        return self.upload_ratio * bitrate

    def participates(self, user_id: int) -> bool:
        """Whether a user contributes upload capacity.

        A deterministic hash of the user id, so participation is a
        stable user property (across swarms, runs and processes) rather
        than per-window noise.
        """
        if self.participation_rate >= 1.0:
            return True
        if self.participation_rate <= 0.0:
            return False
        bucket = zlib.crc32(str(user_id).encode("ascii")) % 10_000
        return bucket < self.participation_rate * 10_000


@dataclass
class _SwarmAccumulator:
    """Mutable per-swarm state while sweeping one swarm's events."""

    key: SwarmKey
    ledger: ByteLedger = field(default_factory=ByteLedger)
    watch_seconds: float = 0.0
    durations_total: float = 0.0
    sessions: int = 0


class Simulator:
    """Runs the windowed hybrid-CDN simulation over a trace."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config or SimulationConfig()

    def run(self, trace: Trace) -> SimulationResult:
        """Simulate the whole trace.

        Returns:
            A :class:`~repro.sim.results.SimulationResult` with ledgers
            at system / swarm / (ISP, day) / user level.
        """
        config = self.config
        swarms: Dict[SwarmKey, List[Session]] = {}
        for session in trace:
            swarms.setdefault(config.policy.key_for(session), []).append(session)

        per_swarm: Dict[SwarmKey, SwarmResult] = {}
        per_isp_day: Dict[Tuple[str, int], ByteLedger] = {}
        per_user: Dict[int, UserTraffic] = {}
        total = ByteLedger()

        for key, sessions in swarms.items():
            result = self._run_swarm(key, sessions, trace.horizon, per_isp_day, per_user)
            per_swarm[key] = result
            total.merge(result.ledger)

        return SimulationResult(
            total=total,
            per_swarm=per_swarm,
            per_isp_day=per_isp_day,
            per_user=per_user,
            delta_tau=config.delta_tau,
            horizon=trace.horizon,
            upload_ratio=config.upload_ratio,
        )

    # ------------------------------------------------------------------
    # Per-swarm sweep
    # ------------------------------------------------------------------

    def _run_swarm(
        self,
        key: SwarmKey,
        sessions: List[Session],
        horizon: float,
        per_isp_day: Dict[Tuple[str, int], ByteLedger],
        per_user: Dict[int, UserTraffic],
    ) -> SwarmResult:
        config = self.config
        dtau = config.delta_tau
        windows_per_day = int(SECONDS_PER_DAY // dtau)

        # Build events on the window grid.  Event kinds sort as
        # remove (0) < demote (1) < add (2), so at a shared window a
        # session ending exactly when another starts never overlaps it.
        # "Demote" turns a finished viewer into an upload-only lingering
        # seed (the caching extension); with seed_linger_seconds == 0
        # sessions go straight to removal, reproducing the paper.
        events: List[Tuple[int, int, Session]] = []
        for session in sessions:
            w_start = int(session.start // dtau)
            w_end = max(w_start + 1, int(math.ceil(session.end / dtau)))
            events.append((w_start, _ADD, session))
            lingers = (
                config.seed_linger_seconds > 0.0
                and config.participates(session.user_id)
            )
            if lingers:
                w_linger = int(math.ceil((session.end + config.seed_linger_seconds) / dtau))
                if w_linger > w_end:
                    events.append((w_end, _DEMOTE, session))
                    events.append((w_linger, _REMOVE, session))
                else:
                    events.append((w_end, _REMOVE, session))
            else:
                events.append((w_end, _REMOVE, session))
        events.sort(key=lambda e: (e[0], e[1]))

        acc = _SwarmAccumulator(key=key)
        acc.sessions = len(sessions)
        acc.durations_total = sum(s.duration for s in sessions)
        acc.ledger.sessions = len(sessions)

        members: Dict[int, PeerState] = {}
        previous_window = 0
        index = 0
        while index < len(events):
            window = events[index][0]
            if window > previous_window and members:
                self._account_stretch(
                    acc, members, previous_window, window, windows_per_day,
                    per_isp_day, per_user,
                )
            previous_window = max(previous_window, window)
            # Apply every event at this window (removals first by sort).
            while index < len(events) and events[index][0] == window:
                _, kind, session = events[index]
                if kind == _REMOVE:
                    members.pop(session.session_id, None)
                elif kind == _DEMOTE:
                    viewer = members.get(session.session_id)
                    if viewer is not None:
                        members[session.session_id] = PeerState(
                            member_id=viewer.member_id,
                            user_id=viewer.user_id,
                            demand=0.0,
                            supply=viewer.supply,
                            exchange=viewer.exchange,
                            pop=viewer.pop,
                            isp=viewer.isp,
                        )
                else:
                    supply_rate = (
                        config.upload_rate_for(session.bitrate)
                        if config.participates(session.user_id)
                        else 0.0
                    )
                    members[session.session_id] = PeerState(
                        member_id=session.session_id,
                        user_id=session.user_id,
                        demand=session.bitrate * dtau,
                        supply=supply_rate * dtau,
                        exchange=session.attachment.exchange,
                        pop=session.attachment.pop,
                        isp=session.isp,
                    )
                index += 1

        acc.ledger.watch_seconds = acc.watch_seconds
        return SwarmResult(
            key=key,
            ledger=acc.ledger,
            capacity=acc.watch_seconds / horizon if horizon > 0 else 0.0,
            arrival_rate=len(sessions) / horizon if horizon > 0 else 0.0,
            mean_duration=acc.durations_total / len(sessions) if sessions else 0.0,
        )

    def _account_stretch(
        self,
        acc: _SwarmAccumulator,
        members: Dict[int, PeerState],
        w_from: int,
        w_to: int,
        windows_per_day: int,
        per_isp_day: Dict[Tuple[str, int], ByteLedger],
        per_user: Dict[int, UserTraffic],
    ) -> None:
        """Account a run of identical windows, split at day boundaries."""
        config = self.config
        member_list = list(members.values())
        allocation = match_window(
            member_list,
            allow_cross_isp=config.allow_cross_isp_matching,
            locality_aware=config.locality_aware_matching,
        )
        # Lingering seeds (demand 0) are not *viewers*: capacity counts
        # concurrent watchers only, as in the paper.
        viewers = sum(1 for m in member_list if m.demand > 0.0)
        watch_per_window = viewers * config.delta_tau

        window = w_from
        while window < w_to:
            day = window // windows_per_day
            day_end = (day + 1) * windows_per_day
            chunk = min(w_to, day_end) - window
            self._apply_allocation(
                acc, allocation, member_list, chunk, day,
                watch_per_window * chunk, per_isp_day, per_user,
            )
            acc.watch_seconds += watch_per_window * chunk
            window += chunk

    def _apply_allocation(
        self,
        acc: _SwarmAccumulator,
        allocation: WindowAllocation,
        member_list: List[PeerState],
        num_windows: int,
        day: int,
        watch_seconds: float,
        per_isp_day: Dict[Tuple[str, int], ByteLedger],
        per_user: Dict[int, UserTraffic],
    ) -> None:
        isp = acc.key.isp if acc.key.isp is not None else "all"
        day_ledger = per_isp_day.get((isp, day))
        if day_ledger is None:
            day_ledger = per_isp_day[(isp, day)] = ByteLedger()
        day_ledger.watch_seconds += watch_seconds

        server = allocation.server_bits * num_windows
        demanded = allocation.demanded_bits * num_windows
        for ledger in (acc.ledger, day_ledger):
            ledger.server_bits += server
            ledger.demanded_bits += demanded
            for layer, bits in allocation.peer_bits.items():
                ledger.peer_bits[layer] = ledger.peer_bits.get(layer, 0.0) + bits * num_windows

        for member in member_list:
            traffic = per_user.get(member.user_id)
            if traffic is None:
                traffic = per_user[member.user_id] = UserTraffic()
            traffic.watched_bits += member.demand * num_windows
        for user_id, bits in allocation.uploaded_bits.items():
            traffic = per_user.get(user_id)
            if traffic is None:
                traffic = per_user[user_id] = UserTraffic()
            traffic.uploaded_bits += bits * num_windows


def simulate(trace: Trace, config: Optional[SimulationConfig] = None) -> SimulationResult:
    """One-call simulation with defaults (see :class:`SimulationConfig`)."""
    return Simulator(config).run(trace)
