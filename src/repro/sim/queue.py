"""A crash-safe, file-based work queue for distributed swarm execution.

The distributed backend (:class:`repro.sim.backends.DistributedBackend`)
fans swarm shards out to worker processes that share **nothing but
storage**: no sockets, no broker, no coordinator RPC.  Every queue
operation is a file create or an atomic ``os.rename`` on one
filesystem, so the protocol inherits exactly the guarantees POSIX
rename gives -- a work item is claimed by at most one worker, a result
file is either absent or complete, and any participant can crash at
any instruction without corrupting the queue.

Layout of one job directory::

    job-<id>/
        job.pkl          # JobSpec: what to run (config or sweep configs)
        plan.json        # grouping handoff: where the shard/manifest live
        pending/         # item-<pos>.task  (pickled WorkItem, ready to claim)
        claimed/         # item-<pos>.task  (claimed; mtime is the lease clock)
                         # item-<pos>.task.lease (who claimed, informational)
        results/         # item-<pos>.out   (pickled kernel outputs)
        acked/           # item-<pos>.task  (completed work items)
        failed/          # item-<pos>.task + .error (corrupt/poisoned items)
        DONE             # coordinator finished collecting; workers skip

Protocol:

* **enqueue** (coordinator): write the payload to a temp file, rename
  into ``pending/``.  Items appear atomically.
* **claim** (worker): rename ``pending/x`` -> ``claimed/x``.  Exactly
  one renamer wins; losers see ``FileNotFoundError`` and try the next
  item.  The claimed file's mtime starts the lease; workers renew it
  (``os.utime``) while the task runs.
* **ack** (worker): write the result to a temp file, rename into
  ``results/``, then rename ``claimed/x`` -> ``acked/x``.  Acking is
  **idempotent**: kernels are pure, so a duplicate execution renames an
  identical result over the first one, and a missing claimed file
  (someone requeued and finished it already) is ignored.
* **requeue** (coordinator): a claimed item whose lease expired is
  renamed back to ``pending/`` -- unless its result already exists, in
  which case the dead worker finished the work and is acked on its
  behalf.  Because rename is atomic, a late worker and the requeue
  race benignly: whoever renames first wins, the other's rename fails
  and is ignored.
* **resume** (coordinator): all state is on disk, so a restarted
  coordinator reopens the directory and continues -- acked results are
  collected without re-running, pending/claimed items proceed normally.

Shared-storage assumptions: rename atomicity within the queue
directory (true for local filesystems and NFS).  Lease ages are
measured **on the storage server's clock** (the mtime of a freshly
written probe file, see :meth:`WorkQueue.fs_now`), never against the
coordinator host's ``time.time()`` -- so clock skew between hosts
sharing the queue can neither requeue a live lease nor keep a dead
one alive.
"""

from __future__ import annotations

import logging
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import SimulationConfig

__all__ = [
    "JobSpec",
    "QueueItemError",
    "WorkClaim",
    "WorkItem",
    "WorkQueue",
    "atomic_write_bytes",
    "quarantine_abandoned",
]

logger = logging.getLogger(__name__)

#: Suffix of work-item payload files.
_TASK_SUFFIX = ".task"

#: Suffix of result payload files.
_RESULT_SUFFIX = ".out"

#: Probe file (in ``claimed/``) whose mtime reads the storage clock.
_CLOCK_PROBE_FILENAME = ".clock-probe"

#: Prefix a quarantined job directory is renamed under (workers only
#: scan ``job-*``, so the rename atomically hides the job).
QUARANTINE_PREFIX = "quarantined-"


class QueueItemError(RuntimeError):
    """A work-item or spec payload could not be decoded (corrupt file)."""


@dataclass(frozen=True)
class WorkItem:
    """One contiguous block of swarm-task refs, addressed for the queue.

    Attributes:
        item_id: stable identifier (``item-<position>``); doubles as the
            file stem in every queue subdirectory.
        start_index: task index of the block's first ref -- the tag the
            streaming reducer re-orders by.
        refs: picklable task refs (resident
            :class:`~repro.sim.kernel.SwarmTask` values under memory
            grouping, :class:`~repro.sim.grouping.ExtentTaskRef` extent
            handles under external grouping).
    """

    item_id: str
    start_index: int
    refs: Tuple[object, ...]


@dataclass(frozen=True)
class JobSpec:
    """What one distributed job runs: a single config, or a K-config sweep.

    ``kind`` is ``"single"`` (workers call
    :func:`~repro.sim.kernel.run_shard` with ``config``) or ``"sweep"``
    (workers call :func:`~repro.sim.kernel.run_shard_multi` with
    ``configs``).

    ``lease_timeout`` is the *coordinator's* lease horizon, published
    with the job so workers pace their renewals against the clock that
    actually requeues them -- a worker's own configuration can never
    drift out from under the coordinator's ``requeue_stale``.
    """

    kind: str
    config: Optional["SimulationConfig"] = None
    configs: Optional[Tuple["SimulationConfig", ...]] = None
    lease_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in ("single", "sweep"):
            raise ValueError(f"kind must be 'single' or 'sweep', got {self.kind!r}")
        if self.kind == "single" and self.config is None:
            raise ValueError("single jobs need a config")
        if self.kind == "sweep" and not self.configs:
            raise ValueError("sweep jobs need at least one config")
        if self.lease_timeout <= 0:
            raise ValueError(
                f"lease_timeout must be > 0, got {self.lease_timeout!r}"
            )


@dataclass(frozen=True)
class WorkClaim:
    """A successful claim: the worker's exclusive lease on one item."""

    item_id: str
    path: Path
    worker_id: str

    def renew(self) -> bool:
        """Refresh the lease clock (claimed-file mtime).

        Returns False when the claimed file is gone -- the coordinator
        requeued the item past a stale lease, so this worker's result
        (if it still produces one) will be acked idempotently or
        ignored.
        """
        try:
            os.utime(self.path)
            return True
        except OSError:
            return False


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` so ``path`` is only ever absent or complete.

    The queue's one publication primitive (temp file + ``os.replace``),
    exported because the service checkpoint
    (:class:`repro.sim.service.ServiceCheckpoint`) publishes with the
    same discipline.
    """
    handle, raw = tempfile.mkstemp(prefix=path.name + ".", dir=path.parent)
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        os.replace(raw, path)
    except BaseException:
        try:
            os.unlink(raw)
        except OSError:
            pass
        raise


#: Backwards-compatible private alias (pre-service-mode name).
_atomic_write = atomic_write_bytes


class WorkQueue:
    """One job's work queue, rooted at a (shared-storage) directory.

    Both the coordinator and every worker construct their own
    ``WorkQueue`` over the same directory; all state lives on disk, so
    instances are cheap, stateless views that can be re-created at any
    time (in particular by a restarted coordinator).

    Args:
        job_dir: the job directory (created if ``create``).
        lease_timeout: seconds a claimed item's lease may go unrenewed
            before :meth:`requeue_stale` hands it to another worker.
        create: create the queue subdirectories (coordinator side);
            workers pass ``False`` and treat missing directories as an
            empty queue.
    """

    SPEC_FILENAME = "job.pkl"
    PLAN_FILENAME = "plan.json"
    DONE_FILENAME = "DONE"

    def __init__(
        self,
        job_dir,
        lease_timeout: float = 30.0,
        create: bool = True,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout!r}")
        self.job_dir = Path(job_dir)
        self.lease_timeout = lease_timeout
        self.pending_dir = self.job_dir / "pending"
        self.claimed_dir = self.job_dir / "claimed"
        self.results_dir = self.job_dir / "results"
        self.acked_dir = self.job_dir / "acked"
        self.failed_dir = self.job_dir / "failed"
        if create:
            for directory in (
                self.pending_dir,
                self.claimed_dir,
                self.results_dir,
                self.acked_dir,
                self.failed_dir,
            ):
                directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------

    def write_spec(self, spec: JobSpec) -> None:
        """Publish the job spec (atomically; workers skip spec-less jobs)."""
        _atomic_write(self.job_dir / self.SPEC_FILENAME, pickle.dumps(spec))

    def load_spec(self) -> JobSpec:
        """The job spec, or :class:`QueueItemError` if absent/corrupt."""
        path = self.job_dir / self.SPEC_FILENAME
        try:
            payload = pickle.loads(path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError) as error:
            raise QueueItemError(f"unreadable job spec {path}: {error}") from error
        if not isinstance(payload, JobSpec):
            raise QueueItemError(f"job spec {path} holds {type(payload).__name__}")
        return payload

    def put(self, item: WorkItem) -> None:
        """Enqueue one work item (appears atomically in ``pending/``)."""
        _atomic_write(
            self.pending_dir / f"{item.item_id}{_TASK_SUFFIX}", pickle.dumps(item)
        )

    def fs_now(self) -> float:
        """The queue storage's clock: mtime of a freshly touched probe.

        Claimed-file mtimes are written by whatever server hosts the
        queue directory; comparing them against the coordinator host's
        ``time.time()`` silently mixes two clocks, and on shared
        storage with skew that either requeues live leases (skew
        forward) or never expires dead ones (skew backward).  Touching
        a probe file and reading its mtime back asks the *same* clock
        that stamps every lease renewal, so lease ages are
        skew-immune.  Falls back to the local clock only when the
        queue directory is gone (the job was retired under us).
        """
        probe = self.claimed_dir / _CLOCK_PROBE_FILENAME
        try:
            probe.touch()
            return probe.stat().st_mtime
        except OSError:
            return time.time()

    def requeue_stale(self) -> List[str]:
        """Return expired claims to ``pending/`` (or ack finished ones).

        A claim is stale when its lease clock (the claimed file's
        mtime, renewed by live workers) is older than
        ``lease_timeout`` on the storage server's clock
        (:meth:`fs_now`).  If the claimant died *after* writing its
        result but before acking, the result is honoured: the item is
        acked on the dead worker's behalf instead of re-run.

        Returns the item ids that were actually handed back to
        ``pending/`` (i.e. will run again).
        """
        requeued: List[str] = []
        now = self.fs_now()
        for path in self._list(self.claimed_dir, _TASK_SUFFIX):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # acked or requeued under us
            if age < self.lease_timeout:
                continue
            item_id = path.stem
            lease = path.with_name(path.name + ".lease")
            if (self.results_dir / f"{item_id}{_RESULT_SUFFIX}").exists():
                # The worker finished, then died before acking.
                if self._rename(path, self.acked_dir / path.name):
                    logger.warning(
                        "acked %s on behalf of a dead worker (result present)",
                        item_id,
                    )
            elif self._rename(path, self.pending_dir / path.name):
                logger.warning(
                    "requeued %s: lease expired after %.1fs", item_id, age
                )
                requeued.append(item_id)
            lease.unlink(missing_ok=True)
        return requeued

    def result_ids(self) -> Set[str]:
        """Item ids that currently have a (complete) result file."""
        return {
            path.stem for path in self._list(self.results_dir, _RESULT_SUFFIX)
        }

    def load_result(self, item_id: str) -> object:
        """Unpickle one result payload (rename-published, so complete)."""
        path = self.results_dir / f"{item_id}{_RESULT_SUFFIX}"
        return pickle.loads(path.read_bytes())

    def failed_items(self) -> Dict[str, str]:
        """Item id -> error text for items workers gave up on."""
        failures: Dict[str, str] = {}
        for path in self._list(self.failed_dir, _TASK_SUFFIX):
            error_path = path.with_name(path.name + ".error")
            try:
                failures[path.stem] = error_path.read_text().strip()
            except OSError:
                failures[path.stem] = "unknown failure"
        return failures

    def mark_done(self) -> None:
        """Tell workers this job is over (they skip DONE-marked jobs)."""
        (self.job_dir / self.DONE_FILENAME).touch()

    @property
    def is_done(self) -> bool:
        return (self.job_dir / self.DONE_FILENAME).exists()

    def pending_ids(self) -> Set[str]:
        return {path.stem for path in self._list(self.pending_dir, _TASK_SUFFIX)}

    def claimed_ids(self) -> Set[str]:
        return {path.stem for path in self._list(self.claimed_dir, _TASK_SUFFIX)}

    def acked_ids(self) -> Set[str]:
        return {path.stem for path in self._list(self.acked_dir, _TASK_SUFFIX)}

    def known_item_ids(self) -> Set[str]:
        """Every item id this job has ever seen, in any state.

        The resume primitive behind per-epoch jobs: a restarted
        coordinator re-publishing an epoch enqueues only the items not
        already present, so work acked before the crash is collected
        instead of re-run.
        """
        known = (
            self.pending_ids()
            | self.claimed_ids()
            | self.acked_ids()
            | self.result_ids()
        )
        known |= {path.stem for path in self._list(self.failed_dir, _TASK_SUFFIX)}
        return known

    def is_abandoned(self, ttl: float) -> bool:
        """Whether this job's coordinator is presumed dead.

        A job is abandoned when it has a published spec but **no
        pending and no claimed items** -- nothing is running and
        nothing is waiting to run -- and its newest sign of life (the
        spec, or any result/acked/failed file) is older than ``ttl``
        seconds on the storage clock.  That covers both halves of the
        orphan-job leak: a coordinator that crashed between spec
        publication and the first ``put`` (empty queue from birth),
        and one that crashed after workers drained every item but
        before it collected and retired the directory.

        Jobs with pending or claimed items are never abandoned: a
        claimed item within its lease is live work, and an expired one
        is the (live) coordinator's ``requeue_stale`` business.
        """
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl!r}")
        spec_path = self.job_dir / self.SPEC_FILENAME
        try:
            newest = spec_path.stat().st_mtime
        except OSError:
            return False  # spec not (yet) published: not our call
        if self.pending_ids() or self.claimed_ids():
            return False
        for directory, suffix in (
            (self.results_dir, _RESULT_SUFFIX),
            (self.acked_dir, _TASK_SUFFIX),
            (self.failed_dir, _TASK_SUFFIX),
        ):
            for path in self._list(directory, suffix):
                try:
                    newest = max(newest, path.stat().st_mtime)
                except OSError:
                    continue
        return self.fs_now() - newest > ttl

    def quarantine(self, reason: str) -> bool:
        """Atomically hide this job from workers (rename the dir).

        Returns False when someone else renamed or removed the job
        first (benign race with a coordinator retiring it).
        """
        target = self.job_dir.with_name(QUARANTINE_PREFIX + self.job_dir.name)
        if not self._rename(self.job_dir, target):
            return False
        try:
            (target / "QUARANTINED").write_text(reason + "\n")
        except OSError:  # pragma: no cover - informational only
            pass
        logger.warning("quarantined job %s: %s", self.job_dir.name, reason)
        return True

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def claim(self, worker_id: str) -> Optional[WorkClaim]:
        """Claim the next pending item, or None if nothing is claimable.

        Lowest item first (matching the streaming reducer's fold
        frontier); the atomic rename guarantees exclusivity, so
        concurrent claimers simply fall through to the next item.
        """
        for path in sorted(self._list(self.pending_dir, _TASK_SUFFIX)):
            target = self.claimed_dir / path.name
            if not self._rename(path, target):
                continue  # another worker won this item
            try:
                os.utime(target)  # start the lease clock at claim time
            except OSError:
                continue  # requeued already; let them have it
            claim = WorkClaim(item_id=path.stem, path=target, worker_id=worker_id)
            try:
                _atomic_write(
                    target.with_name(target.name + ".lease"),
                    f"{worker_id} {time.time():.3f}\n".encode("ascii"),
                )
            except OSError:  # pragma: no cover - informational only
                pass
            return claim
        return None

    def load_item(self, claim: WorkClaim) -> WorkItem:
        """Decode a claimed item; :class:`QueueItemError` if corrupt."""
        try:
            payload = pickle.loads(claim.path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError) as error:
            raise QueueItemError(
                f"corrupt work item {claim.path}: {error}"
            ) from error
        if not isinstance(payload, WorkItem):
            raise QueueItemError(
                f"work item {claim.path} holds {type(payload).__name__}"
            )
        return payload

    def ack(self, claim: WorkClaim, result: object) -> None:
        """Publish the result, then retire the claim.  Idempotent.

        The result rename happens *first*, so a crash between the two
        renames loses nothing: :meth:`requeue_stale` sees the result
        and acks on this worker's behalf.  A duplicate ack (the item
        was requeued and finished elsewhere) replaces the result with
        an identical one -- kernels are pure -- and skips the missing
        claimed file.
        """
        _atomic_write(
            self.results_dir / f"{claim.item_id}{_RESULT_SUFFIX}",
            pickle.dumps(result),
        )
        self._rename(claim.path, self.acked_dir / claim.path.name)
        claim.path.with_name(claim.path.name + ".lease").unlink(missing_ok=True)

    def discard(self, claim: WorkClaim, error: str) -> None:
        """Move a poisoned item to ``failed/`` with its error text.

        Failed items are terminal: they are never requeued, and the
        coordinator surfaces the error instead of waiting forever.
        """
        target = self.failed_dir / claim.path.name
        try:
            _atomic_write(target.with_name(target.name + ".error"), error.encode())
        except OSError:  # pragma: no cover - the .task move still lands
            pass
        self._rename(claim.path, target)
        claim.path.with_name(claim.path.name + ".lease").unlink(missing_ok=True)
        logger.error("discarded work item %s: %s", claim.item_id, error)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _list(directory: Path, suffix: str) -> List[Path]:
        try:
            return [
                directory / name
                for name in os.listdir(directory)
                if name.endswith(suffix)
            ]
        except OSError:
            return []  # job dir removed (or not yet created): empty queue

    @staticmethod
    def _rename(source: Path, target: Path) -> bool:
        """Atomic rename; False when someone else moved ``source`` first."""
        try:
            os.rename(source, target)
            return True
        except OSError:
            return False


def quarantine_abandoned(queue_root, ttl: float) -> List[str]:
    """Quarantine every abandoned ``job-*`` directory under a queue root.

    Workers call this once per scan (when launched with a job TTL) so a
    coordinator that crashed between job publication and collection
    cannot leak its directory forever.  Returns the names of the jobs
    actually quarantined.
    """
    root = Path(queue_root)
    try:
        names = sorted(
            name for name in os.listdir(root) if name.startswith("job-")
        )
    except OSError:
        return []
    quarantined: List[str] = []
    for name in names:
        queue = WorkQueue(root / name, create=False)
        try:
            abandoned = queue.is_abandoned(ttl)
        except OSError:  # pragma: no cover - dir vanished mid-check
            continue
        if abandoned and queue.quarantine(
            f"abandoned: no pending/claimed items and no activity for {ttl}s"
        ):
            quarantined.append(name)
    return quarantined


def item_id_for(position: int) -> str:
    """The canonical item id for a block position (sortable, stable)."""
    return f"item-{position:06d}"


def position_of(item_id: str) -> int:
    """Inverse of :func:`item_id_for`."""
    return int(item_id.rsplit("-", 1)[1])


def make_items(blocks: Sequence[Tuple[int, Sequence[object]]]) -> List[WorkItem]:
    """Wrap ``contiguous_blocks`` output into enqueueable work items."""
    return [
        WorkItem(
            item_id=item_id_for(position),
            start_index=start,
            refs=tuple(refs),
        )
        for position, (start, refs) in enumerate(blocks)
    ]
