"""A crash-safe, file-based work queue for distributed swarm execution.

The distributed backend (:class:`repro.sim.backends.DistributedBackend`)
fans swarm shards out to worker processes that share **nothing but
storage**: no sockets, no broker, no coordinator RPC.  Every queue
operation is a file create or an atomic ``os.rename`` on one
filesystem, so the protocol inherits exactly the guarantees POSIX
rename gives -- a work item is claimed by at most one worker, a result
file is either absent or complete, and any participant can crash at
any instruction without corrupting the queue.

Layout of one job directory::

    job-<id>/
        job.pkl          # JobSpec: what to run (config or sweep configs)
        plan.json        # grouping handoff: where the shard/manifest live
        pending/         # item-<pos>.task  (pickled WorkItem, ready to claim)
        claimed/         # item-<pos>.task  (claimed; mtime is the lease clock)
                         # item-<pos>.task.lease (who claimed, informational)
        results/         # item-<pos>.out   (pickled kernel outputs)
        acked/           # item-<pos>.task  (completed work items)
        failed/          # item-<pos>.task + .error (corrupt/poisoned items)
        DONE             # coordinator finished collecting; workers skip

Protocol:

* **enqueue** (coordinator): write the payload to a temp file, rename
  into ``pending/``.  Items appear atomically.
* **claim** (worker): rename ``pending/x`` -> ``claimed/x``.  Exactly
  one renamer wins; losers see ``FileNotFoundError`` and try the next
  item.  The claimed file's mtime starts the lease; workers renew it
  (``os.utime``) while the task runs.
* **ack** (worker): write the result to a temp file, rename into
  ``results/``, then rename ``claimed/x`` -> ``acked/x``.  Acking is
  **idempotent**: kernels are pure, so a duplicate execution renames an
  identical result over the first one, and a missing claimed file
  (someone requeued and finished it already) is ignored.
* **requeue** (coordinator): a claimed item whose lease expired is
  renamed back to ``pending/`` -- unless its result already exists, in
  which case the dead worker finished the work and is acked on its
  behalf.  Because rename is atomic, a late worker and the requeue
  race benignly: whoever renames first wins, the other's rename fails
  and is ignored.
* **resume** (coordinator): all state is on disk, so a restarted
  coordinator reopens the directory and continues -- acked results are
  collected without re-running, pending/claimed items proceed normally.

Shared-storage assumptions: rename atomicity within the queue
directory (true for local filesystems and NFS).  Lease ages are
measured **on the storage server's clock** (the mtime of a freshly
written probe file, see :meth:`WorkQueue.fs_now`), never against the
coordinator host's ``time.time()`` -- so clock skew between hosts
sharing the queue can neither requeue a live lease nor keep a dead
one alive.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import struct
import tempfile
import time
import traceback as traceback_module
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.sim import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import SimulationConfig

__all__ = [
    "FailureRecord",
    "JobSpec",
    "QueueItemError",
    "WorkClaim",
    "WorkItem",
    "WorkQueue",
    "atomic_write_bytes",
    "quarantine_abandoned",
]

logger = logging.getLogger(__name__)

#: Suffix of work-item payload files.
_TASK_SUFFIX = ".task"

#: Suffix of result payload files.
_RESULT_SUFFIX = ".out"

#: Probe file (in ``claimed/``) whose mtime reads the storage clock.
_CLOCK_PROBE_FILENAME = ".clock-probe"

#: Prefix a quarantined job directory is renamed under (workers only
#: scan ``job-*``, so the rename atomically hides the job).
QUARANTINE_PREFIX = "quarantined-"

#: Per-record header of the results pack: id length, payload length.
_PACK_HEADER = struct.Struct("<II")


class QueueItemError(RuntimeError):
    """A work-item or spec payload could not be decoded (corrupt file)."""


class FailureRecord(str):
    """A failure reason carrying structured sidecar metadata.

    Subclasses :class:`str` (the bare reason text), so every existing
    consumer of :meth:`WorkQueue.failed_items` -- substring checks,
    error formatting -- keeps working, while supervisors get the
    exception type, traceback, worker id and attempt count the
    ``failed/<id>.error.json`` sidecar recorded.
    """

    exception_type: Optional[str]
    traceback_text: Optional[str]
    worker_id: Optional[str]
    attempts: int

    def __new__(
        cls,
        message: str,
        *,
        exception_type: Optional[str] = None,
        traceback_text: Optional[str] = None,
        worker_id: Optional[str] = None,
        attempts: int = 1,
    ) -> "FailureRecord":
        record = super().__new__(cls, message)
        record.exception_type = exception_type
        record.traceback_text = traceback_text
        record.worker_id = worker_id
        record.attempts = attempts
        return record


@dataclass(frozen=True)
class WorkItem:
    """One contiguous block of swarm-task refs, addressed for the queue.

    Attributes:
        item_id: stable identifier (``item-<position>``); doubles as the
            file stem in every queue subdirectory.
        start_index: task index of the block's first ref -- the tag the
            streaming reducer re-orders by.
        refs: picklable task refs (resident
            :class:`~repro.sim.kernel.SwarmTask` values under memory
            grouping, :class:`~repro.sim.grouping.ExtentTaskRef` extent
            handles under external grouping).
    """

    item_id: str
    start_index: int
    refs: Tuple[object, ...]


@dataclass(frozen=True)
class JobSpec:
    """What one distributed job runs: a single config, or a K-config sweep.

    ``kind`` is ``"single"`` (workers call
    :func:`~repro.sim.kernel.run_shard` with ``config``) or ``"sweep"``
    (workers call :func:`~repro.sim.kernel.run_shard_multi` with
    ``configs``).

    ``lease_timeout`` is the *coordinator's* lease horizon, published
    with the job so workers pace their renewals against the clock that
    actually requeues them -- a worker's own configuration can never
    drift out from under the coordinator's ``requeue_stale``.
    """

    kind: str
    config: Optional["SimulationConfig"] = None
    configs: Optional[Tuple["SimulationConfig", ...]] = None
    lease_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in ("single", "sweep"):
            raise ValueError(f"kind must be 'single' or 'sweep', got {self.kind!r}")
        if self.kind == "single" and self.config is None:
            raise ValueError("single jobs need a config")
        if self.kind == "sweep" and not self.configs:
            raise ValueError("sweep jobs need at least one config")
        if self.lease_timeout <= 0:
            raise ValueError(
                f"lease_timeout must be > 0, got {self.lease_timeout!r}"
            )


@dataclass(frozen=True)
class WorkClaim:
    """A successful claim: the worker's exclusive lease on one item."""

    item_id: str
    path: Path
    worker_id: str

    def renew(self) -> bool:
        """Refresh the lease clock (claimed-file mtime).

        Returns False when the claimed file is gone -- the coordinator
        requeued the item past a stale lease, so this worker's result
        (if it still produces one) will be acked idempotently or
        ignored.  Transient storage errors are retried before the
        renewal is given up on.
        """
        try:
            _retry_utime(self.path, "lease.renew")
            return True
        except FileNotFoundError:
            logger.debug(
                "fault site lease.renew: claim %s gone (requeued under us)",
                self.path.name,
            )
            return False
        except OSError as error:
            logger.debug(
                "fault site lease.renew: renewing %s failed: %s",
                self.path.name,
                error,
            )
            return False


def _retry_utime(path: Path, site: str) -> None:
    faults.retrying(site, lambda: faults.storage().utime(path, site=site))


def atomic_write_bytes(
    path: Path,
    data: bytes,
    *,
    site: str = "atomic_write",
    policy: Optional[faults.RetryPolicy] = None,
) -> None:
    """Write ``data`` so ``path`` is only ever absent or complete.

    The queue's one publication primitive (temp file + ``os.replace``),
    exported because the service checkpoint
    (:class:`repro.sim.service.ServiceCheckpoint`) publishes with the
    same discipline.  Transient storage errors (torn writes, ENOSPC,
    EIO -- see :data:`repro.sim.faults.TRANSIENT_ERRNOS`) retry the
    whole publication with a fresh temp file, so a partially written
    temp never becomes visible and a hiccup never loses the payload.
    ``site`` names the fault site for injection and retry logging.
    """
    path = Path(path)

    def publish() -> None:
        """Write the temp file and rename it into place."""
        handle, raw = tempfile.mkstemp(prefix=path.name + ".", dir=path.parent)
        try:
            with os.fdopen(handle, "wb") as stream:
                faults.storage().write(stream, data, site=site)
            faults.storage().replace(raw, path, site=site)
        except BaseException:
            try:
                os.unlink(raw)
            except OSError:
                pass
            raise

    faults.retrying(site, publish, policy=policy)


#: Backwards-compatible private alias (pre-service-mode name).
_atomic_write = atomic_write_bytes


class WorkQueue:
    """One job's work queue, rooted at a (shared-storage) directory.

    Both the coordinator and every worker construct their own
    ``WorkQueue`` over the same directory; all state lives on disk, so
    instances are cheap, stateless views that can be re-created at any
    time (in particular by a restarted coordinator).

    Args:
        job_dir: the job directory (created if ``create``).
        lease_timeout: seconds a claimed item's lease may go unrenewed
            before :meth:`requeue_stale` hands it to another worker.
        create: create the queue subdirectories (coordinator side);
            workers pass ``False`` and treat missing directories as an
            empty queue.
    """

    SPEC_FILENAME = "job.pkl"
    PLAN_FILENAME = "plan.json"
    DONE_FILENAME = "DONE"
    REQUEUES_FILENAME = "requeues.log"
    RESULTS_PACK_FILENAME = "results.pack"

    def __init__(
        self,
        job_dir,
        lease_timeout: float = 30.0,
        create: bool = True,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout!r}")
        self.job_dir = Path(job_dir)
        self.lease_timeout = lease_timeout
        self.pending_dir = self.job_dir / "pending"
        self.claimed_dir = self.job_dir / "claimed"
        self.results_dir = self.job_dir / "results"
        self.acked_dir = self.job_dir / "acked"
        self.failed_dir = self.job_dir / "failed"
        self._pack_ids: Dict[str, Tuple[int, int]] = {}
        self._pack_offset = 0
        if create:
            for directory in (
                self.pending_dir,
                self.claimed_dir,
                self.results_dir,
                self.acked_dir,
                self.failed_dir,
            ):
                directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------

    def write_spec(self, spec: JobSpec) -> None:
        """Publish the job spec (atomically; workers skip spec-less jobs)."""
        _atomic_write(
            self.job_dir / self.SPEC_FILENAME,
            pickle.dumps(spec),
            site="queue.spec",
        )

    def load_spec(self) -> JobSpec:
        """The job spec, or :class:`QueueItemError` if absent/corrupt."""
        path = self.job_dir / self.SPEC_FILENAME
        try:
            payload = pickle.loads(path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError) as error:
            raise QueueItemError(f"unreadable job spec {path}: {error}") from error
        if not isinstance(payload, JobSpec):
            raise QueueItemError(f"job spec {path} holds {type(payload).__name__}")
        return payload

    def put(self, item: WorkItem) -> None:
        """Enqueue one work item (appears atomically in ``pending/``)."""
        _atomic_write(
            self.pending_dir / f"{item.item_id}{_TASK_SUFFIX}",
            pickle.dumps(item),
            site="queue.put",
        )

    def fs_now(self) -> float:
        """The queue storage's clock: mtime of a freshly touched probe.

        Claimed-file mtimes are written by whatever server hosts the
        queue directory; comparing them against the coordinator host's
        ``time.time()`` silently mixes two clocks, and on shared
        storage with skew that either requeues live leases (skew
        forward) or never expires dead ones (skew backward).  Touching
        a probe file and reading its mtime back asks the *same* clock
        that stamps every lease renewal, so lease ages are
        skew-immune.  Falls back to the local clock only when the
        queue directory is gone (the job was retired under us).
        """
        probe = self.claimed_dir / _CLOCK_PROBE_FILENAME

        def read_probe() -> float:
            """Stat the probe file's mtime (the fault-injectable read)."""
            store = faults.storage()
            store.touch(probe, site="queue.fs_now")
            return store.mtime(probe, site="queue.fs_now")

        try:
            return faults.retrying("queue.fs_now", read_probe)
        except OSError as error:
            logger.debug(
                "fault site queue.fs_now: probe failed (%s); "
                "falling back to the local clock",
                error,
            )
            return time.time()

    def requeue_stale(self) -> List[str]:
        """Return expired claims to ``pending/`` (or ack finished ones).

        A claim is stale when its lease clock (the claimed file's
        mtime, renewed by live workers) is older than
        ``lease_timeout`` on the storage server's clock
        (:meth:`fs_now`).  If the claimant died *after* writing its
        result but before acking, the result is honoured: the item is
        acked on the dead worker's behalf instead of re-run.

        Returns the item ids that were actually handed back to
        ``pending/`` (i.e. will run again).
        """
        requeued: List[str] = []
        now = self.fs_now()
        for path in self._list(
            self.claimed_dir, _TASK_SUFFIX, site="queue.scan_claimed"
        ):
            try:
                age = now - path.stat().st_mtime
            except OSError as error:
                # Acked or requeued under us.
                logger.debug(
                    "fault site queue.lease_age: %s gone (%s)", path.name, error
                )
                continue
            if age < self.lease_timeout:
                continue
            item_id = path.stem
            lease = path.with_name(path.name + ".lease")
            if self.has_result(item_id):
                # The worker finished, then died before acking.
                if self._rename(
                    path, self.acked_dir / path.name, site="queue.ack_rename"
                ):
                    logger.warning(
                        "acked %s on behalf of a dead worker (result present)",
                        item_id,
                    )
            elif self._rename(
                path, self.pending_dir / path.name, site="queue.requeue_rename"
            ):
                logger.warning(
                    "requeued %s: lease expired after %.1fs", item_id, age
                )
                requeued.append(item_id)
            try:
                lease.unlink(missing_ok=True)
            except OSError as error:
                logger.debug("fault site queue.lease_unlink: %s", error)
        if requeued:
            self._log_requeues(requeued)
        return requeued

    def has_result(self, item_id: str) -> bool:
        """Whether a complete result exists (loose file or results pack).

        The loose-file check goes through the storage facade's
        ``queue.result_visible`` fault site -- the NFS-ish case where a
        worker's result rename has happened but is not yet observed by
        the coordinator's host.  The protocol tolerates the delayed
        observation (the item is requeued and re-acked idempotently);
        the chaos tests inject it here to prove that.
        """
        loose = self.results_dir / f"{item_id}{_RESULT_SUFFIX}"
        if faults.storage().exists(loose, site="queue.result_visible"):
            return True
        return item_id in self._scan_pack()

    def _log_requeues(self, item_ids: Sequence[str]) -> None:
        """Append requeued ids to the job's requeue log (best effort).

        The log is how attempt counts survive worker turnover: a worker
        discarding a poisoned item reads :meth:`requeue_counts` to
        stamp the failure sidecar with how many times the fleet has
        tried the item, even though every attempt ran somewhere else.
        """
        try:
            with open(
                self.job_dir / self.REQUEUES_FILENAME, "a", encoding="ascii"
            ) as stream:
                for item_id in item_ids:
                    stream.write(item_id + "\n")
        except OSError as error:
            logger.debug("fault site queue.requeue_log: %s", error)

    def requeue_counts(self) -> Dict[str, int]:
        """Item id -> how many times it has been requeued (from the log)."""
        counts: Dict[str, int] = {}
        try:
            text = (self.job_dir / self.REQUEUES_FILENAME).read_text(
                encoding="ascii"
            )
        except OSError:
            return counts
        for line in text.splitlines():
            item_id = line.strip()
            if item_id:
                counts[item_id] = counts.get(item_id, 0) + 1
        return counts

    def result_ids(self) -> Set[str]:
        """Item ids with a complete result (loose file or results pack)."""
        ids = {
            path.stem for path in self._list(self.results_dir, _RESULT_SUFFIX)
        }
        ids.update(self._scan_pack())
        return ids

    def load_result(self, item_id: str) -> object:
        """Unpickle one result payload (rename-published, so complete).

        Loose ``results/<id>.out`` files win over the results pack --
        a crash between a pack append and the loose-file cleanup leaves
        a benign duplicate, and both copies are identical bytes.
        """
        path = self.results_dir / f"{item_id}{_RESULT_SUFFIX}"
        try:
            return pickle.loads(path.read_bytes())
        except FileNotFoundError:
            pass
        entry = self._scan_pack().get(item_id)
        if entry is None:
            raise FileNotFoundError(f"no result for {item_id} in {self.job_dir}")
        offset, length = entry
        with open(self._pack_path, "rb") as stream:
            stream.seek(offset)
            return pickle.loads(stream.read(length))

    # -- results pack (compaction for million-block jobs) --------------

    @property
    def _pack_path(self) -> Path:
        return self.results_dir / self.RESULTS_PACK_FILENAME

    def _scan_pack(self) -> Dict[str, Tuple[int, int]]:
        """Index the results pack: id -> (payload offset, length).

        Incremental: only bytes past the last fully parsed record are
        re-read, so collectors polling every few milliseconds pay for
        new records only.  A torn tail (a crashed append) simply stops
        the scan; :meth:`compact_results` truncates it before the next
        append, and until then the affected item still has its loose
        result file (loose files are only unlinked after fsync).
        """
        try:
            size = os.path.getsize(self._pack_path)
        except OSError:
            self._pack_ids = {}
            self._pack_offset = 0
            return self._pack_ids
        if size == self._pack_offset:
            return self._pack_ids
        if size < self._pack_offset:  # replaced/truncated under us
            self._pack_ids = {}
            self._pack_offset = 0
        with open(self._pack_path, "rb") as stream:
            stream.seek(self._pack_offset)
            while True:
                header = stream.read(_PACK_HEADER.size)
                if len(header) < _PACK_HEADER.size:
                    break
                id_length, payload_length = _PACK_HEADER.unpack(header)
                body = stream.read(id_length + payload_length)
                if len(body) < id_length + payload_length:
                    break
                item_id = body[:id_length].decode("ascii", "replace")
                self._pack_ids[item_id] = (
                    self._pack_offset + _PACK_HEADER.size + id_length,
                    payload_length,
                )
                self._pack_offset += (
                    _PACK_HEADER.size + id_length + payload_length
                )
        return self._pack_ids

    def compact_results(self, item_ids: Sequence[str]) -> int:
        """Fold loose result files into the append-only results pack.

        A million-block job otherwise leaves a million ``.out`` files
        in one directory, and shared filesystems degrade badly on huge
        directories.  The coordinator (the pack's single writer) calls
        this with ids it has already collected: each loose payload is
        appended to ``results/results.pack`` and fsynced **before** the
        loose file is unlinked, so a crash anywhere leaves every result
        readable (worst case: both copies, which
        :meth:`load_result` resolves loose-first).  Torn pack appends
        are truncated back to the last complete record before writing.
        Returns how many results were compacted.
        """
        records: List[Tuple[str, Path, bytes]] = []
        for item_id in item_ids:
            loose = self.results_dir / f"{item_id}{_RESULT_SUFFIX}"
            try:
                payload = loose.read_bytes()
            except OSError:
                continue  # already compacted (or never produced)
            records.append((item_id, loose, payload))
        if not records:
            return 0
        self._scan_pack()  # establish the last valid offset

        def append_all() -> None:
            """Append every collected record to the open pack handle."""
            with open(self._pack_path, "ab") as stream:
                if stream.tell() > self._pack_offset:
                    # Torn tail from a crashed/failed append: discard it
                    # (every record past the valid end is re-appended).
                    stream.truncate(self._pack_offset)
                for item_id, _, payload in records:
                    ident = item_id.encode("ascii")
                    faults.storage().write(
                        stream,
                        _PACK_HEADER.pack(len(ident), len(payload))
                        + ident
                        + payload,
                        site="queue.compact",
                    )
                stream.flush()
                os.fsync(stream.fileno())

        faults.retrying("queue.compact", append_all)
        offset = self._pack_offset
        for item_id, _, payload in records:
            id_length = len(item_id.encode("ascii"))
            self._pack_ids[item_id] = (
                offset + _PACK_HEADER.size + id_length,
                len(payload),
            )
            offset += _PACK_HEADER.size + id_length + len(payload)
        self._pack_offset = offset
        for _, loose, _ in records:
            try:
                faults.storage().unlink(
                    loose, missing_ok=True, site="queue.compact_unlink"
                )
            except OSError as error:
                logger.debug("fault site queue.compact_unlink: %s", error)
        return len(records)

    def failed_items(self) -> Dict[str, FailureRecord]:
        """Item id -> :class:`FailureRecord` for items workers gave up on.

        Values are plain strings (the reason text) carrying the
        structured ``failed/<id>.error.json`` sidecar as attributes;
        legacy bare ``.error`` text files are still honoured.
        """
        failures: Dict[str, FailureRecord] = {}
        for path in self._list(self.failed_dir, _TASK_SUFFIX):
            item_id = path.stem
            sidecar = self.failed_dir / f"{item_id}.error.json"
            try:
                data = json.loads(sidecar.read_text(encoding="utf-8"))
                failures[item_id] = FailureRecord(
                    str(data.get("error", "unknown failure")),
                    exception_type=data.get("exception_type"),
                    traceback_text=data.get("traceback"),
                    worker_id=data.get("worker_id"),
                    attempts=int(data.get("attempts", 1)),
                )
                continue
            except (OSError, ValueError, TypeError):
                pass  # no/corrupt sidecar: fall back to legacy text
            error_path = path.with_name(path.name + ".error")
            try:
                failures[item_id] = FailureRecord(
                    error_path.read_text().strip()
                )
            except OSError:
                failures[item_id] = FailureRecord("unknown failure")
        return failures

    def mark_done(self) -> None:
        """Tell workers this job is over (they skip DONE-marked jobs)."""
        (self.job_dir / self.DONE_FILENAME).touch()

    @property
    def is_done(self) -> bool:
        """True once every item of the job has been acked."""
        return (self.job_dir / self.DONE_FILENAME).exists()

    def pending_ids(self) -> Set[str]:
        """Ids of items currently waiting in ``pending/``."""
        return {path.stem for path in self._list(self.pending_dir, _TASK_SUFFIX)}

    def claimed_ids(self) -> Set[str]:
        """Ids of items currently claimed (leased) by workers."""
        return {path.stem for path in self._list(self.claimed_dir, _TASK_SUFFIX)}

    def acked_ids(self) -> Set[str]:
        """Ids of items already retired to ``acked/``."""
        return {path.stem for path in self._list(self.acked_dir, _TASK_SUFFIX)}

    def known_item_ids(self) -> Set[str]:
        """Every item id this job has ever seen, in any state.

        The resume primitive behind per-epoch jobs: a restarted
        coordinator re-publishing an epoch enqueues only the items not
        already present, so work acked before the crash is collected
        instead of re-run.
        """
        known = (
            self.pending_ids()
            | self.claimed_ids()
            | self.acked_ids()
            | self.result_ids()
        )
        known |= {path.stem for path in self._list(self.failed_dir, _TASK_SUFFIX)}
        return known

    def is_abandoned(self, ttl: float) -> bool:
        """Whether this job's coordinator is presumed dead.

        A job is abandoned when it has a published spec but **no
        pending and no claimed items** -- nothing is running and
        nothing is waiting to run -- and its newest sign of life (the
        spec, or any result/acked/failed file) is older than ``ttl``
        seconds on the storage clock.  That covers both halves of the
        orphan-job leak: a coordinator that crashed between spec
        publication and the first ``put`` (empty queue from birth),
        and one that crashed after workers drained every item but
        before it collected and retired the directory.

        Jobs with pending or claimed items are never abandoned: a
        claimed item within its lease is live work, and an expired one
        is the (live) coordinator's ``requeue_stale`` business.
        """
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl!r}")
        spec_path = self.job_dir / self.SPEC_FILENAME
        try:
            newest = spec_path.stat().st_mtime
        except OSError:
            return False  # spec not (yet) published: not our call
        if self.pending_ids() or self.claimed_ids():
            return False
        for directory, suffix in (
            (self.results_dir, _RESULT_SUFFIX),
            (self.acked_dir, _TASK_SUFFIX),
            (self.failed_dir, _TASK_SUFFIX),
        ):
            for path in self._list(directory, suffix):
                try:
                    newest = max(newest, path.stat().st_mtime)
                except OSError:
                    continue
        return self.fs_now() - newest > ttl

    def quarantine(self, reason: str) -> bool:
        """Atomically hide this job from workers (rename the dir).

        Returns False when someone else renamed or removed the job
        first (benign race with a coordinator retiring it).
        """
        target = self.job_dir.with_name(QUARANTINE_PREFIX + self.job_dir.name)
        if not self._rename(self.job_dir, target):
            return False
        try:
            (target / "QUARANTINED").write_text(reason + "\n")
        except OSError:  # pragma: no cover - informational only
            pass
        logger.warning("quarantined job %s: %s", self.job_dir.name, reason)
        return True

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def claim(self, worker_id: str) -> Optional[WorkClaim]:
        """Claim the next pending item, or None if nothing is claimable.

        Lowest item first (matching the streaming reducer's fold
        frontier); the atomic rename guarantees exclusivity, so
        concurrent claimers simply fall through to the next item.
        """
        for path in sorted(
            self._list(self.pending_dir, _TASK_SUFFIX, site="queue.scan_pending")
        ):
            target = self.claimed_dir / path.name
            if not self._rename(path, target, site="queue.claim_rename"):
                continue  # another worker won this item
            try:
                # Start the lease clock at claim time.
                _retry_utime(target, "queue.claim_utime")
            except OSError as error:
                logger.debug(
                    "fault site queue.claim_utime: %s requeued under us (%s)",
                    path.stem,
                    error,
                )
                continue
            claim = WorkClaim(item_id=path.stem, path=target, worker_id=worker_id)
            try:
                _atomic_write(
                    target.with_name(target.name + ".lease"),
                    f"{worker_id} {time.time():.3f}\n".encode("ascii"),
                    site="queue.lease",
                )
            except OSError as error:  # informational only
                logger.debug("fault site queue.lease: %s", error)
            return claim
        return None

    def load_item(self, claim: WorkClaim) -> WorkItem:
        """Decode a claimed item; :class:`QueueItemError` if corrupt."""
        try:
            payload = pickle.loads(claim.path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError) as error:
            raise QueueItemError(
                f"corrupt work item {claim.path}: {error}"
            ) from error
        if not isinstance(payload, WorkItem):
            raise QueueItemError(
                f"work item {claim.path} holds {type(payload).__name__}"
            )
        return payload

    def ack(self, claim: WorkClaim, result: object) -> None:
        """Publish the result, then retire the claim.  Idempotent.

        The result rename happens *first*, so a crash between the two
        renames loses nothing: :meth:`requeue_stale` sees the result
        and acks on this worker's behalf.  A duplicate ack (the item
        was requeued and finished elsewhere) replaces the result with
        an identical one -- kernels are pure -- and skips the missing
        claimed file.
        """
        _atomic_write(
            self.results_dir / f"{claim.item_id}{_RESULT_SUFFIX}",
            pickle.dumps(result),
            site="queue.result",
        )
        faults.crash_point("queue.ack.crash")
        self._rename(
            claim.path, self.acked_dir / claim.path.name, site="queue.ack_rename"
        )
        try:
            claim.path.with_name(claim.path.name + ".lease").unlink(
                missing_ok=True
            )
        except OSError as error:
            logger.debug("fault site queue.lease_unlink: %s", error)

    def release(self, claim: WorkClaim) -> bool:
        """Hand a claimed-but-unstarted item back to ``pending/``.

        The graceful half of a worker self-limit (``--max-rss``): when
        the worker decides *after* claiming that it should not run the
        item, releasing it makes the work immediately claimable by the
        rest of the fleet instead of parking it until the lease
        expires.  Returns False when the claim was already requeued or
        acked under us (benign).
        """
        released = self._rename(
            claim.path,
            self.pending_dir / claim.path.name,
            site="queue.release_rename",
        )
        try:
            claim.path.with_name(claim.path.name + ".lease").unlink(
                missing_ok=True
            )
        except OSError as error:
            logger.debug("fault site queue.lease_unlink: %s", error)
        if released:
            logger.info(
                "released %s back to pending (worker self-limit)",
                claim.item_id,
            )
        return released

    def discard(
        self,
        claim: WorkClaim,
        error: str,
        *,
        exception: Optional[BaseException] = None,
        worker_id: Optional[str] = None,
        attempts: int = 1,
    ) -> None:
        """Move a poisoned item to ``failed/`` with a structured sidecar.

        Failed items are terminal: they are never requeued, and the
        coordinator surfaces the error instead of waiting forever.  The
        ``failed/<id>.error.json`` sidecar records the exception type
        and traceback, the worker that gave up, and the fleet-wide
        attempt count (see :meth:`requeue_counts`), so a supervisor can
        tell a poisoned payload from an unlucky item without grepping
        worker logs.
        """
        target = self.failed_dir / claim.path.name
        sidecar = {
            "error": str(error),
            "exception_type": (
                type(exception).__name__ if exception is not None else None
            ),
            "traceback": (
                "".join(traceback_module.format_exception(exception))
                if exception is not None
                else None
            ),
            "worker_id": worker_id or claim.worker_id,
            "attempts": attempts,
        }
        try:
            _atomic_write(
                self.failed_dir / f"{claim.item_id}.error.json",
                json.dumps(sidecar, indent=2).encode("utf-8"),
                site="queue.error",
            )
        except OSError as err:  # the .task move still lands
            logger.debug("fault site queue.error: sidecar write failed: %s", err)
        self._rename(claim.path, target, site="queue.discard_rename")
        try:
            claim.path.with_name(claim.path.name + ".lease").unlink(
                missing_ok=True
            )
        except OSError as err:
            logger.debug("fault site queue.lease_unlink: %s", err)
        logger.error("discarded work item %s: %s", claim.item_id, error)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _list(
        directory: Path, suffix: str, site: str = "queue.scan"
    ) -> List[Path]:
        try:
            return [
                directory / name
                for name in faults.storage().listdir(directory, site=site)
                if name.endswith(suffix)
            ]
        except OSError as error:
            # Job dir removed (or not yet created): empty queue.
            logger.debug(
                "fault site %s: listing %s failed: %s", site, directory, error
            )
            return []

    @staticmethod
    def _rename(source: Path, target: Path, site: str = "queue.rename") -> bool:
        """Atomic rename; False when someone else moved ``source`` first.

        Transient storage errors are retried (bounded, jittered) before
        the rename is reported lost; an ENOENT is never retried -- a
        missing source *is* how rename races lose, and losing the race
        is part of the protocol, not a failure.
        """

        def rename() -> None:
            """One atomic rename through the fault-injectable facade."""
            faults.storage().rename(source, target, site=site)

        try:
            faults.retrying(site, rename)
            return True
        except FileNotFoundError:
            logger.debug(
                "fault site %s: lost the rename race for %s", site, source.name
            )
            return False
        except OSError as error:
            logger.debug(
                "fault site %s: rename %s failed: %s", site, source.name, error
            )
            return False


def quarantine_abandoned(queue_root, ttl: float) -> List[str]:
    """Quarantine every abandoned ``job-*`` directory under a queue root.

    Workers call this once per scan (when launched with a job TTL) so a
    coordinator that crashed between job publication and collection
    cannot leak its directory forever.  Returns the names of the jobs
    actually quarantined.
    """
    root = Path(queue_root)
    try:
        names = sorted(
            name for name in os.listdir(root) if name.startswith("job-")
        )
    except OSError:
        return []
    quarantined: List[str] = []
    for name in names:
        queue = WorkQueue(root / name, create=False)
        try:
            abandoned = queue.is_abandoned(ttl)
        except OSError:  # pragma: no cover - dir vanished mid-check
            continue
        if abandoned and queue.quarantine(
            f"abandoned: no pending/claimed items and no activity for {ttl}s"
        ):
            quarantined.append(name)
    return quarantined


def item_id_for(position: int) -> str:
    """The canonical item id for a block position (sortable, stable)."""
    return f"item-{position:06d}"


def position_of(item_id: str) -> int:
    """Inverse of :func:`item_id_for`."""
    return int(item_id.rsplit("-", 1)[1])


def make_items(blocks: Sequence[Tuple[int, Sequence[object]]]) -> List[WorkItem]:
    """Wrap ``contiguous_blocks`` output into enqueueable work items."""
    return [
        WorkItem(
            item_id=item_id_for(position),
            start_index=start,
            refs=tuple(refs),
        )
        for position, (start, refs) in enumerate(blocks)
    ]
