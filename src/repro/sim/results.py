"""Result structures produced by a simulation run.

A :class:`SimulationResult` holds byte ledgers at every aggregation level
the paper reports on:

* whole-system (headline savings, Fig. 4's numerator),
* per (ISP, day) -- Fig. 4's daily series,
* per swarm and per content item -- Fig. 2's dots and Fig. 3's CCDFs,
* per user -- Fig. 6's carbon-credit CDF.

Energy models are applied lazily so one run serves both parameter sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.carbon import UserFootprint
from repro.core.energy import EnergyModel
from repro.sim.accounting import ByteLedger, savings
from repro.sim.policies import SwarmKey

__all__ = ["SwarmResult", "UserTraffic", "SimulationResult"]


@dataclass
class SwarmResult:
    """Outcome of one swarm over the simulated horizon.

    Attributes:
        key: the swarm's identity under the scoping policy.
        ledger: bytes moved for this swarm.
        capacity: measured average concurrent viewers (watch-seconds over
            the horizon -- the empirical analogue of Little's-law ``c``).
        arrival_rate: measured session arrivals per second.
        mean_duration: measured mean session duration in seconds.
    """

    key: SwarmKey
    ledger: ByteLedger
    capacity: float
    arrival_rate: float
    mean_duration: float

    def savings(self, model: EnergyModel) -> float:
        """This swarm's simulated savings under ``model``."""
        return savings(self.ledger, model)


@dataclass
class UserTraffic:
    """Per-user byte totals over the run.

    Attributes:
        watched_bits: bits the user streamed (server + peers).
        uploaded_bits: bits the user uploaded to peers.
    """

    watched_bits: float = 0.0
    uploaded_bits: float = 0.0

    def footprint(self) -> UserFootprint:
        """As a :class:`~repro.core.carbon.UserFootprint` for Eq. 13."""
        return UserFootprint(
            watched_bits=self.watched_bits, uploaded_bits=self.uploaded_bits
        )


@dataclass
class SimulationResult:
    """Everything a run produced, aggregated at the paper's levels.

    Attributes:
        total: whole-system ledger.
        per_swarm: ledgers and measured dynamics per swarm key.
        per_isp_day: ledgers keyed by (ISP name, zero-based day).
        per_user: byte totals per user id.
        delta_tau: window size the run used (seconds).
        horizon: trace horizon (seconds).
        upload_ratio: the ``q / beta`` the run was configured with.
    """

    total: ByteLedger
    per_swarm: Dict[SwarmKey, SwarmResult]
    per_isp_day: Dict[Tuple[str, int], ByteLedger]
    per_user: Dict[int, UserTraffic]
    delta_tau: float
    horizon: float
    upload_ratio: float

    # ------------------------------------------------------------------
    # Headline numbers
    # ------------------------------------------------------------------

    def savings(self, model: EnergyModel) -> float:
        """System-wide simulated savings ``S_sim`` under ``model``."""
        return savings(self.total, model)

    def offload_fraction(self) -> float:
        """System-wide measured ``G`` (model-independent)."""
        return self.total.offload_fraction

    # ------------------------------------------------------------------
    # Figure-level views
    # ------------------------------------------------------------------

    def isp_names(self) -> List[str]:
        return sorted({isp for isp, _ in self.per_isp_day})

    def days(self) -> List[int]:
        return sorted({day for _, day in self.per_isp_day})

    def daily_savings(self, isp: str, model: EnergyModel) -> List[Tuple[int, float]]:
        """Fig. 4 series: (day, savings) for one ISP, day-ordered."""
        rows = []
        for (name, day), ledger in self.per_isp_day.items():
            if name == isp:
                rows.append((day, savings(ledger, model)))
        return sorted(rows)

    def isp_ledger(self, isp: str) -> ByteLedger:
        """All of one ISP's traffic, merged across days."""
        return ByteLedger.merged(
            ledger for (name, _), ledger in self.per_isp_day.items() if name == isp
        )

    def per_content_results(self) -> Dict[str, SwarmResult]:
        """Swarms merged up to content-item level (Fig. 3's unit).

        Capacity adds across sub-swarms (concurrent viewers of the item
        across ISPs and bitrate classes); arrival rates add; mean
        duration is session-weighted.
        """
        merged: Dict[str, List[SwarmResult]] = {}
        for result in self.per_swarm.values():
            merged.setdefault(result.key.content_id, []).append(result)
        out: Dict[str, SwarmResult] = {}
        for content_id, results in merged.items():
            ledger = ByteLedger.merged(r.ledger for r in results)
            sessions = sum(r.ledger.sessions for r in results)
            mean_duration = (
                sum(r.mean_duration * r.ledger.sessions for r in results) / sessions
                if sessions
                else 0.0
            )
            out[content_id] = SwarmResult(
                key=SwarmKey(content_id=content_id),
                ledger=ledger,
                capacity=sum(r.capacity for r in results),
                arrival_rate=sum(r.arrival_rate for r in results),
                mean_duration=mean_duration,
            )
        return out

    def user_footprints(self) -> Dict[int, UserFootprint]:
        """Per-user footprints for the Fig. 6 carbon-credit CDF."""
        return {uid: traffic.footprint() for uid, traffic in self.per_user.items()}

    def carbon_positive_share(self, model: EnergyModel) -> float:
        """Fraction of users whose credit covers their footprint."""
        footprints = self.user_footprints()
        if not footprints:
            return 0.0
        positive = sum(
            1 for fp in footprints.values() if fp.is_carbon_positive(model)
        )
        return positive / len(footprints)
