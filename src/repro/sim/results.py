"""Result structures produced by a simulation run.

A :class:`SimulationResult` holds byte ledgers at every aggregation level
the paper reports on:

* whole-system (headline savings, Fig. 4's numerator),
* per (ISP, day) -- Fig. 4's daily series,
* per swarm and per content item -- Fig. 2's dots and Fig. 3's CCDFs,
* per user -- Fig. 6's carbon-credit CDF.

Energy models are applied lazily so one run serves both parameter sets.

Every level is **associatively mergeable**: :class:`ByteLedger`,
:class:`UserTraffic` and :class:`SwarmResult` fold pairwise, and
:meth:`SimulationResult.merge` / :meth:`SimulationResult.from_partials`
reduce partial results from swarm-disjoint shards into one result --
deterministically, regardless of the order partials complete in (see
``from_partials``).  This is what lets the parallel backends compute
shards anywhere and reduce them afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.core.carbon import UserFootprint
from repro.core.energy import EnergyModel
from repro.sim.accounting import ByteLedger, savings
from repro.sim.policies import SwarmKey

__all__ = [
    "SwarmResult",
    "UserTraffic",
    "SimulationResult",
    "merge_ledger_map",
    "merge_traffic_map",
]


def merge_ledger_map(
    target: Dict, source: Mapping[object, ByteLedger]
) -> None:
    """Copy-or-merge fold of keyed ledgers into ``target`` in place.

    The one shared reduction used by both the kernel's output fold and
    :meth:`SimulationResult.merge`, so the two paths cannot drift.
    ``source`` is never mutated or aliased.
    """
    for key, ledger in source.items():
        existing = target.get(key)
        if existing is None:
            target[key] = ledger.copy()
        else:
            existing.merge(ledger)


def merge_traffic_map(
    target: Dict, source: Mapping[int, "UserTraffic"]
) -> None:
    """Copy-or-merge fold of per-user traffic into ``target`` in place.

    Shared by the kernel's output fold and
    :meth:`SimulationResult.merge`; ``source`` is never mutated or
    aliased.
    """
    for user_id, traffic in source.items():
        existing = target.get(user_id)
        if existing is None:
            target[user_id] = traffic.copy()
        else:
            existing.merge(traffic)


@dataclass
class SwarmResult:
    """Outcome of one swarm over the simulated horizon.

    Attributes:
        key: the swarm's identity under the scoping policy.
        ledger: bytes moved for this swarm.
        capacity: measured average concurrent viewers (watch-seconds over
            the horizon -- the empirical analogue of Little's-law ``c``).
        arrival_rate: measured session arrivals per second.
        mean_duration: measured mean session duration in seconds.
    """

    key: SwarmKey
    ledger: ByteLedger
    capacity: float
    arrival_rate: float
    mean_duration: float

    def savings(self, model: EnergyModel) -> float:
        """This swarm's simulated savings under ``model``."""
        return savings(self.ledger, model)

    @classmethod
    def combine(cls, key: SwarmKey, results: Iterable["SwarmResult"]) -> "SwarmResult":
        """Merge sub-results into one result under ``key``.

        Ledgers and capacities add (concurrent viewers across the
        sub-swarms), arrival rates add, mean duration is
        session-weighted.  Associative up to float rounding -- the merge
        primitive behind both content-level roll-ups and partial-result
        reduction.
        """
        results = list(results)
        ledger = ByteLedger.merged(r.ledger for r in results)
        sessions = sum(r.ledger.sessions for r in results)
        mean_duration = (
            sum(r.mean_duration * r.ledger.sessions for r in results) / sessions
            if sessions
            else 0.0
        )
        return cls(
            key=key,
            ledger=ledger,
            capacity=sum(r.capacity for r in results),
            arrival_rate=sum(r.arrival_rate for r in results),
            mean_duration=mean_duration,
        )


@dataclass(slots=True)
class UserTraffic:
    """Per-user byte totals over the run.

    A hot accounting type -- one instance per user per shard output --
    so ``slots=True`` keeps it dict-free.

    Attributes:
        watched_bits: bits the user streamed (server + peers).
        uploaded_bits: bits the user uploaded to peers.
    """

    watched_bits: float = 0.0
    uploaded_bits: float = 0.0

    def footprint(self) -> UserFootprint:
        """As a :class:`~repro.core.carbon.UserFootprint` for Eq. 13."""
        return UserFootprint(
            watched_bits=self.watched_bits, uploaded_bits=self.uploaded_bits
        )

    def merge(self, other: "UserTraffic") -> None:
        """Fold another user's-worth of traffic into this one in place."""
        self.watched_bits += other.watched_bits
        self.uploaded_bits += other.uploaded_bits

    def copy(self) -> "UserTraffic":
        return UserTraffic(
            watched_bits=self.watched_bits, uploaded_bits=self.uploaded_bits
        )


@dataclass
class SimulationResult:
    """Everything a run produced, aggregated at the paper's levels.

    Attributes:
        total: whole-system ledger.
        per_swarm: ledgers and measured dynamics per swarm key.
        per_isp_day: ledgers keyed by (ISP name, zero-based day).
        per_user: byte totals per user id.
        delta_tau: window size the run used (seconds).
        horizon: trace horizon (seconds).
        upload_ratio: the ``q / beta`` the run was configured with.
    """

    total: ByteLedger
    per_swarm: Dict[SwarmKey, SwarmResult]
    per_isp_day: Dict[Tuple[str, int], ByteLedger]
    per_user: Dict[int, UserTraffic]
    delta_tau: float
    horizon: float
    upload_ratio: float

    # ------------------------------------------------------------------
    # Partial-result reduction
    # ------------------------------------------------------------------

    def merge(self, other: "SimulationResult") -> "SimulationResult":
        """Fold another (swarm-disjoint) partial result into this one.

        All levels merge associatively: totals and (ISP, day) / user
        ledgers add, colliding swarm keys combine via
        :meth:`SwarmResult.combine`.  ``other`` is never mutated or
        aliased, so partials stay valid after merging.  Returns ``self``
        for chaining.

        Raises:
            ValueError: if the runs used different ``delta_tau``,
                ``upload_ratio`` or ``horizon`` (ledgers priced on
                different windows, or capacities/arrival rates
                normalized by different denominators, are not
                comparable).  A zero ``self.horizon`` (the empty
                accumulator ``from_partials`` starts from) accepts any
                horizon.
        """
        if other.delta_tau != self.delta_tau:
            raise ValueError(
                "cannot merge results with different delta_tau: "
                f"{self.delta_tau!r} vs {other.delta_tau!r}"
            )
        if other.upload_ratio != self.upload_ratio:
            raise ValueError(
                "cannot merge results with different upload_ratio: "
                f"{self.upload_ratio!r} vs {other.upload_ratio!r}"
            )
        if self.horizon > 0.0 and other.horizon > 0.0 and self.horizon != other.horizon:
            raise ValueError(
                "cannot merge results with different horizons: "
                f"{self.horizon!r} vs {other.horizon!r} (capacities and "
                "arrival rates are normalized by the horizon)"
            )
        self.total.merge(other.total)
        for key, result in other.per_swarm.items():
            mine = self.per_swarm.get(key)
            parts = [mine, result] if mine is not None else [result]
            self.per_swarm[key] = SwarmResult.combine(key, parts)
        merge_ledger_map(self.per_isp_day, other.per_isp_day)
        merge_traffic_map(self.per_user, other.per_user)
        self.horizon = max(self.horizon, other.horizon)
        return self

    def identical_to(self, other: "SimulationResult") -> bool:
        """Exact (bit-for-bit, not approximate) equality at every level.

        The canonical check behind the runtime's determinism guarantee
        -- backends, worker counts and session orderings must all
        satisfy it.  Compares every accounting field (via the same
        fingerprints :meth:`from_partials` orders by), so new ledger
        fields are automatically covered.
        """
        return _partial_order_key(self) == _partial_order_key(other) and (
            self.delta_tau,
            self.upload_ratio,
        ) == (other.delta_tau, other.upload_ratio)

    @classmethod
    def from_partials(
        cls, partials: Iterable["SimulationResult"]
    ) -> "SimulationResult":
        """Reduce partial results from swarm-disjoint shards into one.

        Partials are first ordered canonically by a fingerprint of their
        *entire* content, then folded left-to-right -- so the reduction
        performs the same float-addition sequence **regardless of the
        order the partials arrived in** (i.e. regardless of shard
        completion order).  Two partials can only tie if they are
        bitwise identical at every level, in which case swapping them
        cannot change the fold.  Inputs are not mutated.

        Raises:
            ValueError: if ``partials`` is empty, or the runs disagree
                on ``delta_tau`` / ``upload_ratio``.
        """
        ordered = sorted(partials, key=_partial_order_key)
        if not ordered:
            raise ValueError("from_partials needs at least one partial result")
        first = ordered[0]
        merged = cls(
            total=ByteLedger(),
            per_swarm={},
            per_isp_day={},
            per_user={},
            delta_tau=first.delta_tau,
            horizon=0.0,
            upload_ratio=first.upload_ratio,
        )
        for partial in ordered:
            merged.merge(partial)
        return merged

    # ------------------------------------------------------------------
    # Headline numbers
    # ------------------------------------------------------------------

    def savings(self, model: EnergyModel) -> float:
        """System-wide simulated savings ``S_sim`` under ``model``."""
        return savings(self.total, model)

    def offload_fraction(self) -> float:
        """System-wide measured ``G`` (model-independent)."""
        return self.total.offload_fraction

    # ------------------------------------------------------------------
    # Figure-level views
    # ------------------------------------------------------------------

    def isp_names(self) -> List[str]:
        return sorted({isp for isp, _ in self.per_isp_day})

    def days(self) -> List[int]:
        return sorted({day for _, day in self.per_isp_day})

    def daily_savings(self, isp: str, model: EnergyModel) -> List[Tuple[int, float]]:
        """Fig. 4 series: (day, savings) for one ISP, day-ordered."""
        rows = []
        for (name, day), ledger in self.per_isp_day.items():
            if name == isp:
                rows.append((day, savings(ledger, model)))
        return sorted(rows)

    def isp_ledger(self, isp: str) -> ByteLedger:
        """All of one ISP's traffic, merged across days."""
        return ByteLedger.merged(
            ledger for (name, _), ledger in self.per_isp_day.items() if name == isp
        )

    def per_content_results(self) -> Dict[str, SwarmResult]:
        """Swarms merged up to content-item level (Fig. 3's unit).

        Capacity adds across sub-swarms (concurrent viewers of the item
        across ISPs and bitrate classes); arrival rates add; mean
        duration is session-weighted.
        """
        merged: Dict[str, List[SwarmResult]] = {}
        for result in self.per_swarm.values():
            merged.setdefault(result.key.content_id, []).append(result)
        return {
            content_id: SwarmResult.combine(SwarmKey(content_id=content_id), results)
            for content_id, results in merged.items()
        }

    def user_footprints(self) -> Dict[int, UserFootprint]:
        """Per-user footprints for the Fig. 6 carbon-credit CDF."""
        return {uid: traffic.footprint() for uid, traffic in self.per_user.items()}

    def carbon_positive_share(self, model: EnergyModel) -> float:
        """Fraction of users whose credit covers their footprint."""
        footprints = self.user_footprints()
        if not footprints:
            return 0.0
        positive = sum(
            1 for fp in footprints.values() if fp.is_carbon_positive(model)
        )
        return positive / len(footprints)


def _ledger_fingerprint(ledger: ByteLedger) -> Tuple:
    """Every field of a ledger as a sortable tuple.

    Derived from ``dataclasses.fields`` so fields added to
    :class:`ByteLedger` later are covered automatically -- this feeds
    both :meth:`SimulationResult.identical_to` and the canonical
    partial ordering, which must never silently skip a field.
    """
    values = []
    for spec in fields(ByteLedger):
        value = getattr(ledger, spec.name)
        if isinstance(value, dict):
            value = tuple(sorted((key.value, bits) for key, bits in value.items()))
        values.append(value)
    return tuple(values)


def _partial_order_key(partial: SimulationResult) -> Tuple:
    """Canonical order for :meth:`SimulationResult.from_partials`.

    Covers every value the fold touches, so partials that compare equal
    are bitwise-interchangeable and the reduction is provably
    independent of arrival order.
    """
    return (
        tuple(
            sorted(
                (key.sort_key(), _ledger_fingerprint(r.ledger), r.capacity,
                 r.arrival_rate, r.mean_duration)
                for key, r in partial.per_swarm.items()
            )
        ),
        _ledger_fingerprint(partial.total),
        tuple(
            sorted(
                (isp_day, _ledger_fingerprint(ledger))
                for isp_day, ledger in partial.per_isp_day.items()
            )
        ),
        tuple(
            sorted(
                (uid, t.watched_bits, t.uploaded_bits)
                for uid, t in partial.per_user.items()
            )
        ),
        partial.horizon,
    )
