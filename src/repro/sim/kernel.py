"""Pure per-swarm simulation kernel: the unit of parallel work.

The engine's original sweep mutated three shared dicts (total ledger,
per-(ISP, day) ledgers, per-user traffic) while iterating swarms, which
made the run order load-bearing and the work impossible to distribute.
This module is the refactored core: a swarm is described by an immutable
:class:`SwarmTask`, simulated by the pure function :func:`run_swarm`,
and its *entire* effect on the world is returned as a self-contained
:class:`SwarmOutput` -- the swarm's ledger plus its own per-(ISP, day)
and per-user deltas.  Nothing is shared, nothing is mutated, and a task
round-trips through ``pickle`` unchanged, so the same kernel runs
unmodified under the serial, thread and process backends
(:mod:`repro.sim.backends`).

Determinism contract:

* :func:`build_tasks` orders swarms canonically (sorted swarm key) and
  sorts each swarm's sessions by ``(start, session_id)``, so the task
  list is a pure function of the session *multiset* -- independent of
  trace ordering, iterator chunking or backend.
* :func:`run_swarm` consumes only its task and the config; two calls
  with equal arguments produce bit-for-bit equal outputs in any process.
* :func:`merge_outputs` folds outputs in task order, so every backend
  reduces to the identical float-addition sequence: parallel runs are
  bit-for-bit equal to serial runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

from repro.sim.accounting import ByteLedger
from repro.sim.matching import PeerState, WindowAllocation, match_window
from repro.sim.policies import SwarmKey, SwarmPolicy
from repro.sim.reduce import reduce_outputs
from repro.sim.results import SimulationResult, SwarmResult, UserTraffic
from repro.trace.events import SECONDS_PER_DAY, Session

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.sim.engine import SimulationConfig

__all__ = [
    "SwarmTask",
    "SwarmOutput",
    "build_tasks",
    "resolve_task",
    "run_swarm",
    "run_shard",
    "merge_outputs",
]

#: Event kinds, in the order they apply within one window.
_REMOVE, _DEMOTE, _ADD = 0, 1, 2


@dataclass(frozen=True)
class SwarmTask:
    """One swarm's complete, immutable work description.

    Attributes:
        key: the swarm's identity under the scoping policy.
        sessions: the swarm's sessions, sorted by ``(start, session_id)``.
        horizon: trace horizon in seconds (for capacity/arrival rates).
    """

    key: SwarmKey
    sessions: Tuple[Session, ...]
    horizon: float

    @property
    def num_sessions(self) -> int:
        """Session count (shared shape with extent refs, for balancing)."""
        return len(self.sessions)

    def materialize(self) -> "SwarmTask":
        """A task *is* its own materialization (see :func:`resolve_task`)."""
        return self


def resolve_task(ref: object) -> SwarmTask:
    """Turn a task ref into a resident :class:`SwarmTask`.

    The worker-side half of the lazy task plan contract
    (:mod:`repro.sim.grouping`): a ref is either a ``SwarmTask``
    already (memory grouping -- sessions travelled with the ref) or an
    extent handle whose ``materialize()`` decodes the sessions from the
    shard file the worker opens itself (external grouping -- only
    ``(path, offset, length, key)`` ever crossed the process boundary).
    """
    if isinstance(ref, SwarmTask):
        return ref
    return ref.materialize()  # type: ignore[attr-defined]


@dataclass
class SwarmOutput:
    """Everything one swarm contributed to the run.

    Self-contained: holds the swarm's own per-(ISP, day) and per-user
    deltas instead of mutating shared accounting structures, so outputs
    can be produced on any worker and reduced in any process.

    Attributes:
        result: the swarm's ledger and measured dynamics.
        per_isp_day: this swarm's ledger deltas keyed by (ISP, day).
        per_user: this swarm's byte deltas keyed by user id.
    """

    result: SwarmResult
    per_isp_day: Dict[Tuple[str, int], ByteLedger] = field(default_factory=dict)
    per_user: Dict[int, UserTraffic] = field(default_factory=dict)


def build_tasks(
    sessions: Iterable[Session], horizon: float, policy: SwarmPolicy
) -> List[SwarmTask]:
    """Partition a session stream into canonically ordered swarm tasks.

    Consumes any iterable (a :class:`~repro.trace.events.Trace`, a list,
    or a lazy generator) exactly once; only the grouped sessions are
    retained, never an intermediate full-trace tuple.

    Raises:
        ValueError: if ``horizon <= 0`` or a session ends after it.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon!r}")
    groups: Dict[SwarmKey, List[Session]] = {}
    latest_end = 0.0
    for session in sessions:
        groups.setdefault(policy.key_for(session), []).append(session)
        if session.end > latest_end:
            latest_end = session.end
    if latest_end > horizon:
        raise ValueError(
            f"horizon {horizon} shorter than last session end {latest_end}"
        )
    tasks = []
    for key in sorted(groups, key=SwarmKey.sort_key):
        members = sorted(groups[key], key=lambda s: (s.start, s.session_id))
        tasks.append(SwarmTask(key=key, sessions=tuple(members), horizon=horizon))
    return tasks


# ----------------------------------------------------------------------
# The per-swarm sweep
# ----------------------------------------------------------------------


def run_swarm(task: SwarmTask, config: "SimulationConfig") -> SwarmOutput:
    """Simulate one swarm; pure, picklable, shared-nothing.

    Builds add/demote/remove events on the window grid, sweeps the
    stretches of constant membership, and accounts every byte into the
    output's own ledgers.  See the module docstring in
    :mod:`repro.sim.engine` for the windowing scheme.
    """
    dtau = config.delta_tau
    windows_per_day = int(SECONDS_PER_DAY // dtau)
    sessions = task.sessions

    # Build events on the window grid.  Event kinds sort as
    # remove (0) < demote (1) < add (2), so at a shared window a session
    # ending exactly when another starts never overlaps it.  "Demote"
    # turns a finished viewer into an upload-only lingering seed (the
    # caching extension); with seed_linger_seconds == 0 sessions go
    # straight to removal, reproducing the paper.
    events: List[Tuple[int, int, Session]] = []
    for session in sessions:
        w_start = int(session.start // dtau)
        w_end = max(w_start + 1, int(math.ceil(session.end / dtau)))
        events.append((w_start, _ADD, session))
        lingers = (
            config.seed_linger_seconds > 0.0
            and config.participates(session.user_id)
        )
        if lingers:
            w_linger = int(math.ceil((session.end + config.seed_linger_seconds) / dtau))
            if w_linger > w_end:
                events.append((w_end, _DEMOTE, session))
                events.append((w_linger, _REMOVE, session))
            else:
                events.append((w_end, _REMOVE, session))
        else:
            events.append((w_end, _REMOVE, session))
    events.sort(key=lambda e: (e[0], e[1]))

    output = SwarmOutput(
        result=SwarmResult(
            key=task.key,
            ledger=ByteLedger(sessions=len(sessions)),
            capacity=0.0,
            arrival_rate=len(sessions) / task.horizon if task.horizon > 0 else 0.0,
            mean_duration=(
                sum(s.duration for s in sessions) / len(sessions) if sessions else 0.0
            ),
        )
    )
    watch_seconds = 0.0

    members: Dict[int, PeerState] = {}
    previous_window = 0
    index = 0
    while index < len(events):
        window = events[index][0]
        if window > previous_window and members:
            watch_seconds += _account_stretch(
                output, members, previous_window, window, windows_per_day, config
            )
        previous_window = max(previous_window, window)
        # Apply every event at this window (removals first by sort).
        while index < len(events) and events[index][0] == window:
            _, kind, session = events[index]
            if kind == _REMOVE:
                members.pop(session.session_id, None)
            elif kind == _DEMOTE:
                viewer = members.get(session.session_id)
                if viewer is not None:
                    members[session.session_id] = PeerState(
                        member_id=viewer.member_id,
                        user_id=viewer.user_id,
                        demand=0.0,
                        supply=viewer.supply,
                        exchange=viewer.exchange,
                        pop=viewer.pop,
                        isp=viewer.isp,
                    )
            else:
                supply_rate = (
                    config.upload_rate_for(session.bitrate)
                    if config.participates(session.user_id)
                    else 0.0
                )
                members[session.session_id] = PeerState(
                    member_id=session.session_id,
                    user_id=session.user_id,
                    demand=session.bitrate * dtau,
                    supply=supply_rate * dtau,
                    exchange=session.attachment.exchange,
                    pop=session.attachment.pop,
                    isp=session.isp,
                )
            index += 1

    output.result.ledger.watch_seconds = watch_seconds
    output.result.capacity = (
        watch_seconds / task.horizon if task.horizon > 0 else 0.0
    )
    return output


def _account_stretch(
    output: SwarmOutput,
    members: Dict[int, PeerState],
    w_from: int,
    w_to: int,
    windows_per_day: int,
    config: "SimulationConfig",
) -> float:
    """Account a run of identical windows, split at day boundaries.

    Returns the watch-seconds covered by the stretch.
    """
    member_list = list(members.values())
    allocation = match_window(
        member_list,
        allow_cross_isp=config.allow_cross_isp_matching,
        locality_aware=config.locality_aware_matching,
    )
    # Lingering seeds (demand 0) are not *viewers*: capacity counts
    # concurrent watchers only, as in the paper.
    viewers = sum(1 for m in member_list if m.demand > 0.0)
    watch_per_window = viewers * config.delta_tau

    watch_seconds = 0.0
    window = w_from
    while window < w_to:
        day = window // windows_per_day
        day_end = (day + 1) * windows_per_day
        chunk = min(w_to, day_end) - window
        _apply_allocation(
            output, allocation, member_list, chunk, day, watch_per_window * chunk
        )
        watch_seconds += watch_per_window * chunk
        window += chunk
    return watch_seconds


def _apply_allocation(
    output: SwarmOutput,
    allocation: WindowAllocation,
    member_list: List[PeerState],
    num_windows: int,
    day: int,
    watch_seconds: float,
) -> None:
    key = output.result.key
    isp = key.isp if key.isp is not None else "all"
    day_ledger = output.per_isp_day.get((isp, day))
    if day_ledger is None:
        day_ledger = output.per_isp_day[(isp, day)] = ByteLedger()
    day_ledger.watch_seconds += watch_seconds

    server = allocation.server_bits * num_windows
    demanded = allocation.demanded_bits * num_windows
    for ledger in (output.result.ledger, day_ledger):
        ledger.server_bits += server
        ledger.demanded_bits += demanded
        for layer, bits in allocation.peer_bits.items():
            ledger.peer_bits[layer] = ledger.peer_bits.get(layer, 0.0) + bits * num_windows

    per_user = output.per_user
    for member in member_list:
        traffic = per_user.get(member.user_id)
        if traffic is None:
            traffic = per_user[member.user_id] = UserTraffic()
        traffic.watched_bits += member.demand * num_windows
    for user_id, bits in allocation.uploaded_bits.items():
        traffic = per_user.get(user_id)
        if traffic is None:
            traffic = per_user[user_id] = UserTraffic()
        traffic.uploaded_bits += bits * num_windows


# ----------------------------------------------------------------------
# Shard execution and deterministic reduction
# ----------------------------------------------------------------------


def run_shard(
    tasks: Sequence[object], config: "SimulationConfig"
) -> List[SwarmOutput]:
    """Run a batch of swarm task refs in-process, preserving order.

    The unit of work a process backend ships to a worker: one pickle
    round-trip amortises over the whole shard.  Accepts resident
    :class:`SwarmTask` values or lazy refs (see :func:`resolve_task`);
    each task is materialized, swept and released before the next, so
    a worker holds at most one decoded task at a time.
    """
    return [run_swarm(resolve_task(task), config) for task in tasks]


def merge_outputs(
    outputs: Iterable[SwarmOutput],
    *,
    delta_tau: float,
    horizon: float,
    upload_ratio: float,
) -> SimulationResult:
    """Reduce swarm outputs (in the given order) into a final result.

    Every backend hands outputs back in canonical task order, so the
    fold performs the identical float-addition sequence no matter how
    (or where, or in what completion order) the swarms actually ran.
    The outputs themselves are never mutated or aliased: reducing the
    same outputs twice gives the same result.

    The fold itself lives in :class:`repro.sim.reduce.StreamingReducer`
    -- this is the batched entry point to the same reduction the
    streaming modes use, so the two paths cannot drift.
    """
    return reduce_outputs(
        outputs,
        delta_tau=delta_tau,
        horizon=horizon,
        upload_ratio=upload_ratio,
    )
