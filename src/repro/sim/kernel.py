"""Pure per-swarm simulation kernel: the unit of parallel work.

The engine's original sweep mutated three shared dicts (total ledger,
per-(ISP, day) ledgers, per-user traffic) while iterating swarms, which
made the run order load-bearing and the work impossible to distribute.
This module is the refactored core: a swarm is described by an immutable
:class:`SwarmTask`, simulated by the pure function :func:`run_swarm`,
and its *entire* effect on the world is returned as a self-contained
:class:`SwarmOutput` -- the swarm's ledger plus its own per-(ISP, day)
and per-user deltas.  Nothing is shared, nothing is mutated, and a task
round-trips through ``pickle`` unchanged, so the same kernel runs
unmodified under the serial, thread and process backends
(:mod:`repro.sim.backends`).

Determinism contract:

* :func:`build_tasks` orders swarms canonically (sorted swarm key) and
  sorts each swarm's sessions by ``(start, session_id)``, so the task
  list is a pure function of the session *multiset* -- independent of
  trace ordering, iterator chunking or backend.
* :func:`run_swarm` consumes only its task and the config; two calls
  with equal arguments produce bit-for-bit equal outputs in any process.
* :func:`merge_outputs` folds outputs in task order, so every backend
  reduces to the identical float-addition sequence: parallel runs are
  bit-for-bit equal to serial runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.accounting import ByteLedger
from repro.sim.matching import (
    PeerState,
    WindowAllocation,
    match_window,
    match_window_multi,
)
from repro.sim.policies import SwarmKey, SwarmPolicy
from repro.sim.profiling import PROFILE
from repro.sim.reduce import reduce_outputs
from repro.sim.results import SimulationResult, SwarmResult, UserTraffic
from repro.trace.events import SECONDS_PER_DAY, Session

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.sim.engine import SimulationConfig

__all__ = [
    "SwarmTask",
    "SwarmOutput",
    "MultiSwarmOutput",
    "build_tasks",
    "resolve_task",
    "run_swarm",
    "run_swarm_object",
    "run_swarm_multi",
    "run_ref",
    "run_ref_multi",
    "run_shard",
    "run_shard_multi",
    "sweep_memo",
    "merge_outputs",
]

#: Event kinds, in the order they apply within one window.
_REMOVE, _DEMOTE, _ADD = 0, 1, 2


@dataclass(frozen=True)
class SwarmTask:
    """One swarm's complete, immutable work description.

    Attributes:
        key: the swarm's identity under the scoping policy.
        sessions: the swarm's sessions, sorted by ``(start, session_id)``.
        horizon: trace horizon in seconds (for capacity/arrival rates).
    """

    key: SwarmKey
    sessions: Tuple[Session, ...]
    horizon: float

    @property
    def num_sessions(self) -> int:
        """Session count (shared shape with extent refs, for balancing)."""
        return len(self.sessions)

    def materialize(self) -> "SwarmTask":
        """A task *is* its own materialization (see :func:`resolve_task`)."""
        return self


def resolve_task(ref: object) -> SwarmTask:
    """Turn a task ref into a resident :class:`SwarmTask`.

    The worker-side half of the lazy task plan contract
    (:mod:`repro.sim.grouping`): a ref is either a ``SwarmTask``
    already (memory grouping -- sessions travelled with the ref) or an
    extent handle whose ``materialize()`` decodes the sessions from the
    shard file the worker opens itself (external grouping -- only
    ``(path, offset, length, key)`` ever crossed the process boundary).
    """
    if isinstance(ref, SwarmTask):
        return ref
    if PROFILE.enabled:
        t0 = perf_counter()
        task = ref.materialize()  # type: ignore[attr-defined]
        PROFILE.decode_seconds += perf_counter() - t0
        return task
    return ref.materialize()  # type: ignore[attr-defined]


@dataclass
class SwarmOutput:
    """Everything one swarm contributed to the run.

    Self-contained: holds the swarm's own per-(ISP, day) and per-user
    deltas instead of mutating shared accounting structures, so outputs
    can be produced on any worker and reduced in any process.

    Attributes:
        result: the swarm's ledger and measured dynamics.
        per_isp_day: this swarm's ledger deltas keyed by (ISP, day).
        per_user: this swarm's byte deltas keyed by user id.
    """

    result: SwarmResult
    per_isp_day: Dict[Tuple[str, int], ByteLedger] = field(default_factory=dict)
    per_user: Dict[int, UserTraffic] = field(default_factory=dict)


def build_tasks(
    sessions: Iterable[Session], horizon: float, policy: SwarmPolicy
) -> List[SwarmTask]:
    """Partition a session stream into canonically ordered swarm tasks.

    Consumes any iterable (a :class:`~repro.trace.events.Trace`, a list,
    or a lazy generator) exactly once; only the grouped sessions are
    retained, never an intermediate full-trace tuple.

    Raises:
        ValueError: if ``horizon <= 0`` or a session ends after it.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon!r}")
    groups: Dict[SwarmKey, List[Session]] = {}
    latest_end = 0.0
    for session in sessions:
        groups.setdefault(policy.key_for(session), []).append(session)
        if session.end > latest_end:
            latest_end = session.end
    if latest_end > horizon:
        raise ValueError(
            f"horizon {horizon} shorter than last session end {latest_end}"
        )
    tasks = []
    for key in sorted(groups, key=SwarmKey.sort_key):
        members = sorted(groups[key], key=lambda s: (s.start, s.session_id))
        tasks.append(SwarmTask(key=key, sessions=tuple(members), horizon=horizon))
    return tasks


# ----------------------------------------------------------------------
# The per-swarm sweep
# ----------------------------------------------------------------------

#: One window-grid event: ``(window, kind, sequence, session)``.  The
#: sequence number is the event's creation index, so plain tuple
#: comparison is a total order that never reaches the ``Session`` --
#: ``list.sort()`` runs without a key function and without ever
#: comparing (unorderable, and expensive to even try) session objects.
_Event = Tuple[int, int, int, Session]


def _build_events(
    sessions: Sequence[Session], config: "SimulationConfig"
) -> List[_Event]:
    """Add/demote/remove events on the window grid, in sweep order.

    Event kinds sort as remove (0) < demote (1) < add (2), so at a
    shared window a session ending exactly when another starts never
    overlaps it.  "Demote" turns a finished viewer into an upload-only
    lingering seed (the caching extension); with
    ``seed_linger_seconds == 0`` sessions go straight to removal,
    reproducing the paper.  The schedule depends only on the config's
    ``(delta_tau, seed_linger_seconds, participation)`` signature, which
    is what lets :func:`run_swarm_multi` share one schedule across a
    whole sweep.
    """
    dtau = config.delta_tau
    events: List[_Event] = []
    for session in sessions:
        w_start = int(session.start // dtau)
        w_end = max(w_start + 1, int(math.ceil(session.end / dtau)))
        events.append((w_start, _ADD, len(events), session))
        lingers = (
            config.seed_linger_seconds > 0.0
            and config.participates(session.user_id)
        )
        if lingers:
            w_linger = int(math.ceil((session.end + config.seed_linger_seconds) / dtau))
            if w_linger > w_end:
                events.append((w_end, _DEMOTE, len(events), session))
                events.append((w_linger, _REMOVE, len(events), session))
            else:
                events.append((w_end, _REMOVE, len(events), session))
        else:
            events.append((w_end, _REMOVE, len(events), session))
    # Ties on (window, kind) resolve by creation order -- exactly what
    # the historical stable key-sort produced.
    events.sort()
    return events


def run_swarm(task: SwarmTask, config: "SimulationConfig") -> SwarmOutput:
    """Simulate one swarm; pure, picklable, shared-nothing.

    The kernel dispatcher: ``config.kernel`` selects between the object
    sweep (:func:`run_swarm_object`, the semantics reference) and the
    columnar sweep (:mod:`repro.sim.kernel_columns`, packed columns
    with an optional compiled fast path).  ``"auto"`` -- the default --
    takes the columnar path, which is bit-for-bit identical by
    contract, so dispatch can never change results.  Random matching
    (``locality_aware_matching=False``) has no columnar form and always
    runs on the object kernel.
    """
    if config.kernel != "object" and config.locality_aware_matching:
        from repro.sim.kernel_columns import run_swarm_columnar

        return run_swarm_columnar(task, config)
    return run_swarm_object(task, config)


def run_swarm_object(task: SwarmTask, config: "SimulationConfig") -> SwarmOutput:
    """The object-sweep kernel: per-session python objects, no packing.

    Builds add/demote/remove events on the window grid, sweeps the
    stretches of constant membership, and accounts every byte into the
    output's own ledgers.  See the module docstring in
    :mod:`repro.sim.engine` for the windowing scheme.  This is the
    semantics reference the columnar kernel must reproduce bit-for-bit
    (the hypothesis law in ``tests/sim/test_kernel_columns.py`` pins
    the contract).
    """
    dtau = config.delta_tau
    windows_per_day = int(SECONDS_PER_DAY // dtau)
    sessions = task.sessions
    events = _build_events(sessions, config)

    output = SwarmOutput(
        result=SwarmResult(
            key=task.key,
            ledger=ByteLedger(sessions=len(sessions)),
            capacity=0.0,
            arrival_rate=len(sessions) / task.horizon if task.horizon > 0 else 0.0,
            mean_duration=(
                sum(s.duration for s in sessions) / len(sessions) if sessions else 0.0
            ),
        )
    )
    watch_seconds = 0.0

    members: Dict[int, PeerState] = {}
    previous_window = 0
    index = 0
    while index < len(events):
        window = events[index][0]
        if window > previous_window and members:
            watch_seconds += _account_stretch(
                output, members, previous_window, window, windows_per_day, config
            )
        previous_window = max(previous_window, window)
        # Apply every event at this window (removals first by sort).
        while index < len(events) and events[index][0] == window:
            _, kind, _, session = events[index]
            if kind == _REMOVE:
                members.pop(session.session_id, None)
            elif kind == _DEMOTE:
                viewer = members.get(session.session_id)
                if viewer is not None:
                    members[session.session_id] = PeerState(
                        member_id=viewer.member_id,
                        user_id=viewer.user_id,
                        demand=0.0,
                        supply=viewer.supply,
                        exchange=viewer.exchange,
                        pop=viewer.pop,
                        isp=viewer.isp,
                        attachment=viewer.attachment,
                    )
            else:
                supply_rate = (
                    config.upload_rate_for(session.bitrate)
                    if config.participates(session.user_id)
                    else 0.0
                )
                members[session.session_id] = PeerState(
                    member_id=session.session_id,
                    user_id=session.user_id,
                    demand=session.bitrate * dtau,
                    supply=supply_rate * dtau,
                    exchange=session.attachment.exchange,
                    pop=session.attachment.pop,
                    isp=session.isp,
                    attachment=session.attachment,
                )
            index += 1

    output.result.ledger.watch_seconds = watch_seconds
    output.result.capacity = (
        watch_seconds / task.horizon if task.horizon > 0 else 0.0
    )
    return output


def _account_stretch(
    output: SwarmOutput,
    members: Dict[int, PeerState],
    w_from: int,
    w_to: int,
    windows_per_day: int,
    config: "SimulationConfig",
) -> float:
    """Account a run of identical windows, split at day boundaries.

    Returns the watch-seconds covered by the stretch.
    """
    member_list = list(members.values())
    allocation = match_window(
        member_list,
        allow_cross_isp=config.allow_cross_isp_matching,
        locality_aware=config.locality_aware_matching,
    )
    # Lingering seeds (demand 0) are not *viewers*: capacity counts
    # concurrent watchers only, as in the paper.
    viewers = sum(1 for m in member_list if m.demand > 0.0)
    watch_per_window = viewers * config.delta_tau

    watch_seconds = 0.0
    window = w_from
    while window < w_to:
        day = window // windows_per_day
        day_end = (day + 1) * windows_per_day
        chunk = min(w_to, day_end) - window
        _apply_allocation(
            output, allocation, member_list, chunk, day, watch_per_window * chunk
        )
        watch_seconds += watch_per_window * chunk
        window += chunk
    return watch_seconds


def _apply_allocation(
    output: SwarmOutput,
    allocation: WindowAllocation,
    member_list: List[PeerState],
    num_windows: int,
    day: int,
    watch_seconds: float,
) -> None:
    key = output.result.key
    isp = key.isp if key.isp is not None else "all"
    day_ledger = output.per_isp_day.get((isp, day))
    if day_ledger is None:
        day_ledger = output.per_isp_day[(isp, day)] = ByteLedger()
    day_ledger.watch_seconds += watch_seconds

    server = allocation.server_bits * num_windows
    demanded = allocation.demanded_bits * num_windows
    for ledger in (output.result.ledger, day_ledger):
        ledger.server_bits += server
        ledger.demanded_bits += demanded
        for layer, bits in allocation.peer_bits.items():
            ledger.peer_bits[layer] = (
                ledger.peer_bits.get(layer, 0.0) + bits * num_windows
            )

    per_user = output.per_user
    for member in member_list:
        traffic = per_user.get(member.user_id)
        if traffic is None:
            traffic = per_user[member.user_id] = UserTraffic()
        traffic.watched_bits += member.demand * num_windows
    for user_id, bits in allocation.uploaded_bits.items():
        traffic = per_user.get(user_id)
        if traffic is None:
            traffic = per_user[user_id] = UserTraffic()
        traffic.uploaded_bits += bits * num_windows


# ----------------------------------------------------------------------
# The multi-config sweep kernel
# ----------------------------------------------------------------------


@dataclass
class MultiSwarmOutput:
    """One swarm's outputs for every config of a sweep, plus kernel stats.

    Produced by :func:`run_swarm_multi`.  ``outputs[k]`` is bit-for-bit
    the :class:`SwarmOutput` that ``run_swarm(task, configs[k])`` would
    have produced; the counters report how much work the sweep actually
    shared so callers can assert (and benchmarks can publish) the
    amortization instead of trusting it.

    Attributes:
        outputs: per-config swarm outputs, aligned with the sweep's
            config list.
        memo_hits: memo-eligible stretches answered from the allocation
            memo instead of re-solving ``match_window``.
        memo_misses: memo-eligible stretches that had to be solved.
        schedule_builds: distinct event schedules built -- one per
            distinct ``(delta_tau, seed_linger, participation)``
            signature among the configs.
    """

    outputs: List[SwarmOutput]
    memo_hits: int = 0
    memo_misses: int = 0
    schedule_builds: int = 0


class _AllocationMemo:
    """Per-swarm allocation memo with an adaptive off-switch.

    Replaying a memo entry is bitwise-exact, so enabling or disabling
    memoization can never change results -- only wall-clock.  Whether it
    *pays* depends on the trace: diurnal membership revisits make it
    profitable, heavy-churn swarms make signature construction pure
    overhead.  The memo therefore runs a probation window: after
    ``PROBATION`` attempted lookups, a hit rate below ``MIN_HIT_RATE``
    switches keying off for the rest of the swarm (entries are dropped
    to free memory).  Hit/miss counters only ever count *attempted*
    lookups, so reported hit rates stay honest.
    """

    __slots__ = ("entries", "hits", "misses", "enabled", "probation")

    #: Attempted lookups before the hit rate is judged (per-swarm memos).
    PROBATION = 64
    #: Probation for sweep-shared memos: cross-task hits only appear
    #: once the catalogue tail starts repeating membership patterns, so
    #: a shared memo must observe far more lookups before judging.
    SHARED_PROBATION = 4096
    #: Minimum hit rate that keeps the memo keying past probation.
    MIN_HIT_RATE = 0.05

    def __init__(self, probation: Optional[int] = None) -> None:
        self.entries: Dict[Tuple, Tuple] = {}
        self.hits = 0
        self.misses = 0
        self.enabled = True
        self.probation = self.PROBATION if probation is None else probation

    def reassess(self) -> None:
        """Disable keying when probation shows it cannot pay."""
        attempts = self.hits + self.misses
        if attempts >= self.probation and self.hits < attempts * self.MIN_HIT_RATE:
            self.enabled = False
            self.entries.clear()


def sweep_memo(probation: Optional[int] = None) -> "_AllocationMemo":
    """A sweep-scoped allocation memo, shared across a run's tasks.

    The canonical membership signature (user-rank relabelled, see
    :func:`_account_stretch_multi`) is already task-independent: ranks,
    demands, geometry and supplies carry no swarm identity, so an entry
    learned in one swarm replays exactly in any other whose stretch
    presents the same signature.  Sharing one memo across every task
    multiplies the repeat pool: on the catalogue workload the full
    attempted-lookup population hits ~6x more often shared than
    per-task (BENCH_sweep.json's ``memo`` section measures both).
    Absolute rates stay low -- single-member stretches take the
    closed-form fast path and never consult the memo, and multi-member
    membership signatures are diverse -- which is exactly why the
    adaptive off-switch stays: on traces where even the shared pool
    cannot pay, keying shuts off after ``probation`` attempts.  Callers
    pass the memo to :func:`run_swarm_multi`; sharing scope can never
    change results, only wall-clock and the hit-rate accounting.

    Args:
        probation: attempted lookups before the hit rate is judged
            (default ``SHARED_PROBATION``); benchmarks pass a huge
            value to measure the full population un-truncated.
    """
    if probation is None:
        probation = _AllocationMemo.SHARED_PROBATION
    return _AllocationMemo(probation=probation)


def _schedule_signature(config: "SimulationConfig") -> Tuple:
    """What the event schedule (and membership timeline) depends on.

    Two configs with equal signatures produce identical event lists for
    any session set: the window grid is set by ``delta_tau``, and the
    demote/remove split by ``seed_linger_seconds`` gated on
    participation.  With no lingering, participation never reaches the
    schedule (it only scales supplies), so it is normalized out and a
    whole upload-ratio x participation sweep shares one timeline.
    """
    return (
        config.delta_tau,
        config.seed_linger_seconds,
        config.participation_rate if config.seed_linger_seconds > 0.0 else None,
    )


def run_swarm_multi(
    task: SwarmTask,
    configs: Sequence["SimulationConfig"],
    memo: Optional[_AllocationMemo] = None,
) -> MultiSwarmOutput:
    """Simulate one swarm under every config, amortizing shared work.

    The sweep-side counterpart of :func:`run_swarm`: the task's sessions
    are decoded once by the caller, the event schedule is built once per
    distinct :func:`_schedule_signature`, and each signature group's
    membership timeline is swept once while producing per-config
    allocations.  Within a sweep, window allocations are memoized by a
    canonical membership signature (see :func:`_account_stretch_multi`);
    the signature is task-independent, so callers running many tasks
    pass a shared :func:`sweep_memo` and stretches that revisit an
    identical membership state -- diurnal traces and catalogue tails do
    so constantly -- skip ``match_window`` entirely.  Without a caller
    memo, a per-swarm one is used.

    Unless some config pins ``kernel="object"``, the sweep runs on the
    columnar kernel (one :class:`ColumnSchedule` per signature group,
    see :func:`repro.sim.kernel_columns.run_swarm_multi_columnar`):
    per-config columnar sweeps over a shared schedule beat the object
    multi-kernel's shared-timeline accumulators outright, and anything
    else would leave ``run_sweep`` slower than K independent ``auto``
    runs.  Pinning ``kernel="object"`` on every config keeps a sweep on
    this multi-kernel -- the semantics reference, and the only path the
    allocation memo (and its sweep stats) applies to.

    Every output is **bit-for-bit identical** to the corresponding
    independent ``run_swarm(task, config)`` call: the shared sweep
    replays the exact event order, member ordering and float-addition
    sequences of the single-config kernel, and the memo only answers
    when replaying is provably exact (unique user ids; values invariant
    under the user-rank relabelling the signature applies).  Reported
    memo counters are this call's deltas, so shared memos still yield
    per-task honest stats.
    """
    if not configs:
        return MultiSwarmOutput(outputs=[])
    if all(config.kernel != "object" for config in configs):
        from repro.sim.kernel_columns import run_swarm_multi_columnar

        return run_swarm_multi_columnar(task, configs)
    groups: Dict[Tuple, List[int]] = {}
    for position, config in enumerate(configs):
        groups.setdefault(_schedule_signature(config), []).append(position)
    outputs: List[Optional[SwarmOutput]] = [None] * len(configs)
    # The allocation memo is shared across signature groups: an
    # allocation is a pure function of (member states, matching flags),
    # and member states already encode delta_tau / participation via
    # their values.
    if memo is None:
        memo = _AllocationMemo()
    hits_before, misses_before = memo.hits, memo.misses
    for positions in groups.values():
        _sweep_signature_group(task, configs, positions, outputs, memo)
    return MultiSwarmOutput(
        outputs=outputs,  # type: ignore[arg-type] - every slot is filled
        memo_hits=memo.hits - hits_before,
        memo_misses=memo.misses - misses_before,
        schedule_builds=len(groups),
    )


class _SlotAccount:
    """One sweep config's supply-side accumulators within a group.

    The demand side of the accounting (demanded bits, watch-seconds,
    per-user watched bits, day watch/demand) is identical for every
    config sharing a schedule signature, so the group accumulates it
    once; only what depends on supply -- server bits, per-layer peer
    bits, per-user uploads -- is tracked per config, in exactly the
    same addition order the single-config kernel performs.
    """

    __slots__ = ("server_total", "peer_total", "day_server", "day_peer", "uploads")

    def __init__(self) -> None:
        self.server_total = 0.0
        self.peer_total: Dict[object, float] = {}
        self.day_server: Dict[int, float] = {}
        self.day_peer: Dict[int, Dict[object, float]] = {}
        self.uploads: Dict[int, float] = {}


def _sweep_signature_group(
    task: SwarmTask,
    configs: Sequence["SimulationConfig"],
    positions: List[int],
    outputs: List[Optional[SwarmOutput]],
    memo: _AllocationMemo,
) -> None:
    """Sweep one schedule-signature group's shared membership timeline.

    Maintains a single members dict whose values are ``(state,
    supplies)`` pairs: one shared :class:`~repro.sim.matching.PeerState`
    (the states differ only in supply, so ids, demand and geometry are
    stored once) plus the per-config supply tuple, both computed at the
    member's add event and never rebuilt.  Accounting is split:
    demand-side aggregates accumulate once for the whole group,
    supply-side aggregates accumulate per config (:class:`_SlotAccount`),
    and the per-config :class:`SwarmOutput` values are materialized at
    the end -- with float-addition sequences identical, field for field,
    to what K independent :func:`run_swarm` calls perform.
    """
    group_configs = [configs[k] for k in positions]
    lead = group_configs[0]
    dtau = lead.delta_tau
    windows_per_day = int(SECONDS_PER_DAY // dtau)
    sessions = task.sessions
    events = _build_events(sessions, lead)

    # Config slots (group-local indices) partitioned by matching flags:
    # each partition's memo misses are solved in one shared-structure
    # match_window_multi call per stretch.
    flag_groups: Dict[Tuple[bool, bool], List[int]] = {}
    for j, config in enumerate(group_configs):
        flag_groups.setdefault(
            (config.allow_cross_isp_matching, config.locality_aware_matching), []
        ).append(j)

    # Group-shared (demand-side) accounting state.
    shared_days: Dict[int, List[float]] = {}  # day -> [watch_seconds, demanded]
    watched: Dict[int, float] = {}  # user_id -> watched bits
    total_demanded = 0.0
    watch_seconds = 0.0
    slots = [_SlotAccount() for _ in positions]
    # Per-config supplies are a pure function of (bitrate, per-config
    # participation) -- and traces draw bitrates from a handful of
    # device classes -- so the K-wide supply tuple is computed once per
    # distinct (bitrate, participation pattern) instead of per session.
    # With every config at full participation (the common sweep) the
    # pattern collapses to a constant; otherwise each user's pattern is
    # resolved once through the configs' own deterministic hash.
    supply_cache: Dict[Tuple, Tuple[float, ...]] = {}
    all_participate = all(
        config.participation_rate >= 1.0 for config in group_configs
    )
    participation_cache: Dict[int, Tuple[bool, ...]] = {}

    members: Dict[int, Tuple[PeerState, Tuple[float, ...]]] = {}
    previous_window = 0
    index = 0
    num_events = len(events)
    while index < num_events:
        window = events[index][0]
        if window > previous_window and members:
            stretch_watch, total_demanded = _account_stretch_multi(
                slots,
                flag_groups,
                members,
                previous_window,
                window,
                windows_per_day,
                dtau,
                shared_days,
                watched,
                total_demanded,
                memo,
            )
            watch_seconds += stretch_watch
        previous_window = max(previous_window, window)
        while index < num_events and events[index][0] == window:
            _, kind, _, session = events[index]
            if kind == _REMOVE:
                members.pop(session.session_id, None)
            elif kind == _DEMOTE:
                entry = members.get(session.session_id)
                if entry is not None:
                    state, supplies = entry
                    members[session.session_id] = (
                        PeerState(
                            member_id=state.member_id,
                            user_id=state.user_id,
                            demand=0.0,
                            supply=state.supply,
                            exchange=state.exchange,
                            pop=state.pop,
                            isp=state.isp,
                            attachment=state.attachment,
                        ),
                        supplies,
                    )
            else:
                attachment = session.attachment
                bitrate = session.bitrate
                demand = bitrate * dtau
                if all_participate:
                    pattern: Optional[Tuple[bool, ...]] = None
                else:
                    user_id = session.user_id
                    pattern = participation_cache.get(user_id)
                    if pattern is None:
                        pattern = participation_cache[user_id] = tuple(
                            config.participates(user_id)
                            for config in group_configs
                        )
                supply_key = (bitrate, pattern)
                supplies = supply_cache.get(supply_key)
                if supplies is None:
                    if pattern is None:
                        supplies = tuple(
                            config.upload_rate_for(bitrate) * dtau
                            for config in group_configs
                        )
                    else:
                        supplies = tuple(
                            (config.upload_rate_for(bitrate) if participates else 0.0)
                            * dtau
                            for config, participates in zip(group_configs, pattern)
                        )
                    supply_cache[supply_key] = supplies
                members[session.session_id] = (
                    PeerState(
                        member_id=session.session_id,
                        user_id=session.user_id,
                        demand=demand,
                        supply=supplies[0],
                        exchange=attachment.exchange,
                        pop=attachment.pop,
                        isp=session.isp,
                        attachment=attachment,
                    ),
                    supplies,
                )
            index += 1

    # Materialize each config's output from the shared + per-slot state.
    arrival_rate = len(sessions) / task.horizon if task.horizon > 0 else 0.0
    mean_duration = (
        sum(s.duration for s in sessions) / len(sessions) if sessions else 0.0
    )
    capacity = watch_seconds / task.horizon if task.horizon > 0 else 0.0
    isp = task.key.isp if task.key.isp is not None else "all"
    for j, k in enumerate(positions):
        slot = slots[j]
        per_isp_day: Dict[Tuple[str, int], ByteLedger] = {}
        for day, (day_watch, day_demanded) in shared_days.items():
            day_peer = slot.day_peer.get(day)
            per_isp_day[(isp, day)] = ByteLedger(
                server_bits=slot.day_server.get(day, 0.0),
                peer_bits=day_peer if day_peer is not None else {},
                demanded_bits=day_demanded,
                watch_seconds=day_watch,
            )
        uploads = slot.uploads
        per_user = {
            user_id: UserTraffic(
                watched_bits=bits, uploaded_bits=uploads.get(user_id, 0.0)
            )
            for user_id, bits in watched.items()
        }
        outputs[k] = SwarmOutput(
            result=SwarmResult(
                key=task.key,
                ledger=ByteLedger(
                    server_bits=slot.server_total,
                    peer_bits=slot.peer_total,
                    demanded_bits=total_demanded,
                    watch_seconds=watch_seconds,
                    sessions=len(sessions),
                ),
                capacity=capacity,
                arrival_rate=arrival_rate,
                mean_duration=mean_duration,
            ),
            per_isp_day=per_isp_day,
            per_user=per_user,
        )


def _account_stretch_multi(
    slots: List[_SlotAccount],
    flag_groups: Dict[Tuple[bool, bool], List[int]],
    members: Dict[int, Tuple[PeerState, Tuple[float, ...]]],
    w_from: int,
    w_to: int,
    windows_per_day: int,
    dtau: float,
    shared_days: Dict[int, List[float]],
    watched: Dict[int, float],
    total_demanded: float,
    memo: _AllocationMemo,
) -> Tuple[float, float]:
    """Account one constant-membership stretch for every config at once.

    The demand side (total/day demanded bits, watch-seconds, per-user
    watched bits) accumulates once into the group-shared structures; the
    supply side replays per config from a per-config allocation *view*
    ``(server_bits, peer items, upload items)``, which comes from the
    canonical-signature memo when this membership state was seen before
    and otherwise from one shared-structure
    :func:`~repro.sim.matching.match_window_multi` call per flag group.
    ``total_demanded`` is the group's *running* demanded-bits total: it
    is advanced one chunk at a time (never via a per-stretch subtotal),
    replaying the flat addition sequence of the single-config ledger.
    Returns ``(watch_seconds, total_demanded)``.
    """
    if len(members) == 1:
        # The dominant stretch shape on catalogue-style traces: one
        # member, served entirely by the CDN under every config.  The
        # per-config delta is a single shared server/demand value, so
        # the whole stretch accounts in a handful of adds per slot --
        # value-for-value the additions the general path performs.
        state, _supplies = next(iter(members.values()))
        demand = state.demand
        watch_per_window = dtau if demand > 0.0 else 0.0
        user_id = state.user_id
        first_day = w_from // windows_per_day
        day_end = (first_day + 1) * windows_per_day
        watch_total = 0.0
        window = w_from
        day = first_day
        while window < w_to:
            num_windows = min(w_to, day_end) - window
            day_shared = shared_days.get(day)
            if day_shared is None:
                day_shared = shared_days[day] = [0.0, 0.0]
            watch_chunk = watch_per_window * num_windows
            server_chunk = demand * num_windows
            day_shared[0] += watch_chunk
            day_shared[1] += server_chunk
            watch_total += watch_chunk
            total_demanded += server_chunk
            watched[user_id] = watched.get(user_id, 0.0) + server_chunk
            for slot in slots:
                slot.server_total += server_chunk
                day_server = slot.day_server
                day_server[day] = day_server.get(day, 0.0) + server_chunk
            window += num_windows
            day += 1
            day_end += windows_per_day
        return watch_total, total_demanded

    bases = list(members.values())
    shared_members = [state for state, _supplies in bases]
    viewers = sum(1 for member in shared_members if member.demand > 0.0)
    watch_per_window = viewers * dtau
    # Bit-for-bit the window allocation's demand total: the same
    # generator-sum over the same demands in the same member order.
    demanded_per_window = sum(member.demand for member in shared_members)

    # Views: (server_bits, peer items, upload items) per group slot.
    # (Single-member stretches never reach here -- the fast path above
    # returned -- so every stretch below has at least two members.)
    views: Dict[int, Tuple[float, object, object]] = {}
    memoizable = False
    if memo.enabled:
        user_ids = [member.user_id for member in shared_members]
        distinct = sorted(set(user_ids))
        memoizable = len(distinct) == len(user_ids)
        if memoizable:
            rank_of = {uid: rank for rank, uid in enumerate(distinct)}
            shared_signature = tuple(
                (member.demand, member.exchange, member.pop, member.isp, rank)
                for member, rank in zip(
                    shared_members, (rank_of[u] for u in user_ids)
                )
            )
    for (allow_cross_isp, locality_aware), slot_ids in flag_groups.items():
        pending: List[Tuple[int, Optional[Tuple]]] = []
        if memoizable:
            entries = memo.entries
            for j in slot_ids:
                signature = (
                    allow_cross_isp,
                    locality_aware,
                    shared_signature,
                    tuple(supplies[j] for _state, supplies in bases),
                )
                entry = entries.get(signature)
                if entry is None:
                    pending.append((j, signature))
                else:
                    server_bits, peer_items, ranked_uploads = entry
                    views[j] = (
                        server_bits,
                        peer_items,
                        [(distinct[rank], bits) for rank, bits in ranked_uploads],
                    )
                    memo.hits += 1
        else:
            pending = [(j, None) for j in slot_ids]
        if pending:
            profiles = [
                [supplies[j] for _state, supplies in bases]
                for j, _signature in pending
            ]
            solved = match_window_multi(
                shared_members,
                profiles,
                allow_cross_isp=allow_cross_isp,
                locality_aware=locality_aware,
            )
            for (j, signature), allocation in zip(pending, solved):
                views[j] = (
                    allocation.server_bits,
                    tuple(allocation.peer_bits.items()),
                    tuple(allocation.uploaded_bits.items()),
                )
                if signature is not None:
                    # Uploads stored against user ranks: with unique
                    # user ids every float match_window computes is
                    # invariant under this order-preserving
                    # relabelling, so replays are exact.
                    memo.entries[signature] = (
                        allocation.server_bits,
                        tuple(allocation.peer_bits.items()),
                        tuple(
                            (rank_of[user_id], bits)
                            for user_id, bits in allocation.uploaded_bits.items()
                        ),
                    )
                    memo.misses += 1
    if memoizable:
        memo.reassess()

    # Day-boundary chunks, shared by every config in the group (almost
    # every stretch lies inside one day: take the single-chunk fast
    # path without building a list).
    first_day = w_from // windows_per_day
    day_end = (first_day + 1) * windows_per_day
    if w_to <= day_end:
        chunks: Sequence[Tuple[int, int]] = ((w_to - w_from, first_day),)
    else:
        chunk_list = [(day_end - w_from, first_day)]
        window = day_end
        while window < w_to:
            day = window // windows_per_day
            day_end = (day + 1) * windows_per_day
            chunk = min(w_to, day_end) - window
            chunk_list.append((chunk, day))
            window += chunk
        chunks = chunk_list

    # -- demand-side accounting, once for the whole group ---------------
    watch_total = 0.0
    for num_windows, day in chunks:
        day_shared = shared_days.get(day)
        if day_shared is None:
            day_shared = shared_days[day] = [0.0, 0.0]
        watch_chunk = watch_per_window * num_windows
        demanded_chunk = demanded_per_window * num_windows
        day_shared[0] += watch_chunk
        day_shared[1] += demanded_chunk
        watch_total += watch_chunk
        total_demanded += demanded_chunk
        for member in shared_members:
            user_id = member.user_id
            watched[user_id] = watched.get(user_id, 0.0) + member.demand * num_windows

    # -- supply-side accounting, per config -----------------------------
    for j, (server_bits, peer_items, upload_items) in views.items():
        slot = slots[j]
        day_server = slot.day_server
        for num_windows, day in chunks:
            server_chunk = server_bits * num_windows
            slot.server_total += server_chunk
            day_server[day] = day_server.get(day, 0.0) + server_chunk
            if peer_items:
                peer_total = slot.peer_total
                day_peer = slot.day_peer.get(day)
                if day_peer is None:
                    day_peer = slot.day_peer[day] = {}
                for layer, bits in peer_items:
                    peer_chunk = bits * num_windows
                    peer_total[layer] = peer_total.get(layer, 0.0) + peer_chunk
                    day_peer[layer] = day_peer.get(layer, 0.0) + peer_chunk
            if upload_items:
                uploads = slot.uploads
                for user_id, bits in upload_items:
                    uploads[user_id] = uploads.get(user_id, 0.0) + bits * num_windows

    return watch_total, total_demanded


# ----------------------------------------------------------------------
# Shard execution and deterministic reduction
# ----------------------------------------------------------------------


def _is_extent_ref(ref: object) -> bool:
    """Whether ``ref`` supports the zero-object extent protocol.

    Duck-typed (``read_raw``/``read_columns``, provided by
    :class:`repro.sim.grouping.ExtentTaskRef`) to keep this module free
    of a grouping import; a resident :class:`SwarmTask` never does.
    """
    return not isinstance(ref, SwarmTask) and hasattr(ref, "read_raw")


def run_ref(ref: object, config: "SimulationConfig") -> SwarmOutput:
    """Run one task ref, decoding straight to columns when possible.

    The ref-level dispatcher every backend funnels through: an extent
    ref bound for the columnar kernel takes the zero-object path
    (:func:`repro.sim.kernel_columns.run_ref_columnar` -- raw store
    bytes to packed columns, no ``Session`` objects); anything else --
    resident tasks, ``kernel="object"``, random matching -- materializes
    via :func:`resolve_task` and runs :func:`run_swarm` unchanged.
    Outputs are bit-for-bit identical either way (the extent columns
    decode to the exact field values the objects would carry).
    """
    if (
        config.kernel != "object"
        and config.locality_aware_matching
        and _is_extent_ref(ref)
    ):
        from repro.sim.kernel_columns import run_ref_columnar

        return run_ref_columnar(ref, config)
    return run_swarm(resolve_task(ref), config)


def run_ref_multi(
    ref: object,
    configs: Sequence["SimulationConfig"],
    memo: Optional[_AllocationMemo] = None,
) -> MultiSwarmOutput:
    """Multi-config :func:`run_ref`: zero-object when every config can.

    Mirrors :func:`run_swarm_multi`'s dispatch rule -- the columnar
    multi path requires no config to pin ``kernel="object"``; random-
    matching configs inside the columnar multi still materialize the
    task lazily for their object-kernel runs.
    """
    if (
        configs
        and all(config.kernel != "object" for config in configs)
        and _is_extent_ref(ref)
    ):
        from repro.sim.kernel_columns import run_ref_multi_columnar

        return run_ref_multi_columnar(ref, configs)
    return run_swarm_multi(resolve_task(ref), configs, memo)


def run_shard(
    tasks: Sequence[object], config: "SimulationConfig"
) -> List[SwarmOutput]:
    """Run a batch of swarm task refs in-process, preserving order.

    The unit of work a process backend ships to a worker: one pickle
    round-trip amortises over the whole shard.  Accepts resident
    :class:`SwarmTask` values or lazy refs; extent refs go through the
    zero-object columnar path (:func:`run_ref`), others are
    materialized, swept and released before the next, so a worker holds
    at most one decoded task at a time.
    """
    return [run_ref(task, config) for task in tasks]


def run_shard_multi(
    tasks: Sequence[object], configs: Sequence["SimulationConfig"]
) -> List[MultiSwarmOutput]:
    """Run a batch of swarm task refs under every sweep config.

    The multi-config counterpart of :func:`run_shard` -- and the whole
    point of the fan-out amortization: one pickle round-trip ships the
    task refs plus K config deltas, each task's sessions are decoded
    exactly once (to columns on the zero-object path), and
    :func:`run_ref_multi` shares the schedule across the configs.  The
    allocation memo is shared across the shard's tasks (see
    :func:`sweep_memo`); it only applies when a config pins the object
    multi-kernel.  Task order is preserved.
    """
    memo = sweep_memo()
    return [run_ref_multi(task, configs, memo) for task in tasks]


def merge_outputs(
    outputs: Iterable[SwarmOutput],
    *,
    delta_tau: float,
    horizon: float,
    upload_ratio: float,
) -> SimulationResult:
    """Reduce swarm outputs (in the given order) into a final result.

    Every backend hands outputs back in canonical task order, so the
    fold performs the identical float-addition sequence no matter how
    (or where, or in what completion order) the swarms actually ran.
    The outputs themselves are never mutated or aliased: reducing the
    same outputs twice gives the same result.

    The fold itself lives in :class:`repro.sim.reduce.StreamingReducer`
    -- this is the batched entry point to the same reduction the
    streaming modes use, so the two paths cannot drift.
    """
    return reduce_outputs(
        outputs,
        delta_tau=delta_tau,
        horizon=horizon,
        upload_ratio=upload_ratio,
    )
