"""Distributed worker entry point: ``python -m repro.sim.worker``.

A worker is a plain OS process that shares **storage only** with the
coordinator (:class:`repro.sim.backends.DistributedBackend`): point it
at a queue directory on any filesystem both sides can see and it will
claim work items, resolve their task refs locally
(:func:`~repro.sim.kernel.resolve_task` -- under external grouping the
worker opens the shard file itself and decodes only its own byte
extents), run the kernel, and publish result blocks the coordinator's
streaming reducer folds in completion order.

Launch workers anywhere shared storage reaches::

    PYTHONPATH=src python -m repro.sim.worker --queue-dir /shared/queue
    # ... on as many hosts as you like; add --idle-exit for batch jobs

The worker loop:

* scan the queue root for ``job-*`` directories without a ``DONE``
  marker, oldest job first;
* claim the lowest pending item (atomic rename -- see
  :mod:`repro.sim.queue`); a lease-renewal thread keeps the claim
  alive while the kernel runs, so generous coordinator lease timeouts
  never fire on healthy-but-slow workers;
* run :func:`~repro.sim.kernel.run_shard` (single config) or
  :func:`~repro.sim.kernel.run_shard_multi` (sweep) over the item's
  refs and ack the pickled outputs;
* a corrupt work item or job spec is moved to ``failed/`` / skipped
  with a logged error instead of crashing the worker;
* exit on a ``STOP`` file in the home queue root, after ``--max-tasks``
  items, after ``--idle-exit`` seconds without work, or when resident
  memory crosses ``--max-rss`` (the claim in hand is released back to
  ``pending/`` first -- graceful drain instead of OOM death).

Work stealing: pass ``--queue-dir`` more than once and the worker
serves every root, **home root first** -- it only steals from the
later roots when the home root has nothing claimable.  The STOP file
is honoured in the home root only, so draining one fleet never kills
its neighbours' borrowed capacity.

Exit status tells the supervisor *why* the worker left (so self-limits
are distinguishable from crashes): 0 clean (idle-exit or natural end),
32 ``--max-tasks`` reached, 33 ``--max-rss`` self-limit, 34 STOP file,
35 fatal error; 86 is an injected crash from the fault harness
(:mod:`repro.sim.faults`).

Crash safety: a worker may be SIGKILLed at any point.  An unacked
claim's lease expires and the coordinator requeues the item; an
already-written result is honoured even if the ack never happened.
"""

from __future__ import annotations

import argparse
import logging
import os
import socket
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.sim import faults
from repro.sim.kernel import run_shard, run_shard_multi
from repro.sim.queue import (
    JobSpec,
    QueueItemError,
    WorkClaim,
    WorkQueue,
    WorkItem,
    quarantine_abandoned,
)

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FATAL",
    "EXIT_MAX_TASKS",
    "EXIT_RSS_LIMIT",
    "EXIT_STOP_FILE",
    "WorkerExit",
    "current_rss_bytes",
    "default_worker_id",
    "main",
    "parse_size",
    "run_worker",
]

logger = logging.getLogger(__name__)

#: Queue-root file whose presence tells every worker to exit.
STOP_FILENAME = "STOP"

#: Exit statuses (distinct, so fleet supervisors can tell a worker's
#: deliberate self-limit from a crash).  86 (injected crash) lives in
#: :data:`repro.sim.faults.INJECTED_CRASH_EXIT_CODE`.
EXIT_CLEAN = 0
EXIT_MAX_TASKS = 32
EXIT_RSS_LIMIT = 33
EXIT_STOP_FILE = 34
EXIT_FATAL = 35

_EXIT_CODES = {
    "clean": EXIT_CLEAN,
    "max-tasks": EXIT_MAX_TASKS,
    "rss-limit": EXIT_RSS_LIMIT,
    "stop-file": EXIT_STOP_FILE,
    "fatal": EXIT_FATAL,
}


class WorkerExit(int):
    """:func:`run_worker`'s return value.

    Subclasses :class:`int` (the processed-item count, which existing
    callers compare directly) and carries *why* the worker stopped:
    ``reason`` is one of ``clean`` / ``max-tasks`` / ``rss-limit`` /
    ``stop-file`` / ``fatal``, and ``code`` is the matching process
    exit status the CLI returns.
    """

    reason: str

    def __new__(cls, processed: int, reason: str = "clean") -> "WorkerExit":
        if reason not in _EXIT_CODES:
            raise ValueError(f"unknown exit reason {reason!r}")
        value = super().__new__(cls, processed)
        value.reason = reason
        return value

    @property
    def code(self) -> int:
        return _EXIT_CODES[self.reason]


_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}


def parse_size(text: str) -> int:
    """``"800M"`` / ``"2G"`` / ``"1048576"`` -> bytes."""
    raw = str(text).strip().lower()
    if raw.endswith("b"):
        raw = raw[:-1]
    if raw and raw[-1] in _SIZE_SUFFIXES:
        return int(float(raw[:-1]) * _SIZE_SUFFIXES[raw[-1]])
    return int(raw)


def current_rss_bytes() -> Optional[int]:
    """This process's resident set size, or None if unmeasurable.

    Prefers ``/proc/self/status`` (current RSS); falls back to
    ``resource.getrusage`` (peak RSS -- conservative: a worker that
    *ever* crossed the limit drains, which is the safe direction).
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as stream:
            for line in stream:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except (ImportError, OSError, ValueError):
        return None


def default_worker_id() -> str:
    """host:pid -- unique enough across the shared-storage fleet."""
    return f"{socket.gethostname()}:{os.getpid()}"


class _LeaseRenewer:
    """Daemon thread renewing a claim's lease while the kernel runs."""

    def __init__(self, claim: WorkClaim, interval: float) -> None:
        self._claim = claim
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_LeaseRenewer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if not self._claim.renew():
                return  # requeued under us; nothing left to keep alive


def _execute(item: WorkItem, spec: JobSpec) -> object:
    """Run one work item's refs under the job spec's config(s)."""
    if spec.kind == "sweep":
        return run_shard_multi(item.refs, list(spec.configs or ()))
    return run_shard(item.refs, spec.config)


def _job_dirs(queue_root: Path) -> List[Path]:
    """Active job directories, oldest (lowest-sorting) first."""
    try:
        names = sorted(
            name for name in os.listdir(queue_root) if name.startswith("job-")
        )
    except OSError:
        return []
    return [queue_root / name for name in names]


def _queue_roots(queue_dir) -> List[Path]:
    if isinstance(queue_dir, (str, os.PathLike)):
        return [Path(queue_dir)]
    roots = [Path(entry) for entry in queue_dir]
    if not roots:
        raise ValueError("at least one queue root is required")
    return roots


def run_worker(
    queue_dir: Union[str, os.PathLike, Sequence[Union[str, os.PathLike]]],
    *,
    poll_interval: float = 0.1,
    lease_timeout: float = 30.0,
    max_tasks: Optional[int] = None,
    idle_exit: Optional[float] = None,
    worker_id: Optional[str] = None,
    job_ttl: Optional[float] = None,
    max_rss: Optional[int] = None,
) -> WorkerExit:
    """Serve queue directories until told (or timed out) to stop.

    Returns a :class:`WorkerExit`: the number of work items processed
    (it *is* that int) plus the exit reason/status.  Importable
    directly (tests drive it in-process) and the body of the module
    CLI.

    ``queue_dir`` may be a single root or a sequence of roots.  The
    first is the worker's *home*: scanned first every cycle (so home
    work always wins) and the only root whose STOP file stops this
    worker; the rest are steal targets served when home is idle.

    ``job_ttl`` (seconds, storage clock) enables orphan-job cleanup: a
    job whose coordinator published a spec but left no pending or
    claimed items for that long is quarantined
    (:func:`repro.sim.queue.quarantine_abandoned`) instead of leaking
    its directory forever.  ``None`` (the default) never quarantines.

    ``max_rss`` (bytes) is the self-limit: when resident memory
    crosses it the worker stops claiming, releases any claim it has
    not started, and exits with the ``rss-limit`` status -- a
    supervisor restarts it fresh instead of the kernel OOM-killing it
    mid-task.
    """
    roots = _queue_roots(queue_dir)
    home = roots[0]
    worker_id = worker_id or default_worker_id()
    specs: dict = {}  # job dir -> JobSpec (immutable once published)
    bad_jobs: set = set()  # job dirs with unreadable specs (logged once)
    processed = 0
    idle_since = time.monotonic()
    logger.info(
        "worker %s serving %s", worker_id, ", ".join(str(r) for r in roots)
    )
    while True:
        if (home / STOP_FILENAME).exists():
            logger.info("worker %s: STOP file present, exiting", worker_id)
            return WorkerExit(processed, "stop-file")
        if max_rss is not None:
            rss = current_rss_bytes()
            if rss is not None and rss > max_rss:
                logger.warning(
                    "worker %s: RSS %d over --max-rss %d, exiting",
                    worker_id, rss, max_rss,
                )
                return WorkerExit(processed, "rss-limit")
        claimed_something = False
        if job_ttl is not None:
            for root in roots:
                for name in quarantine_abandoned(root, job_ttl):
                    logger.info(
                        "worker %s quarantined orphan job %s", worker_id, name
                    )
        active_jobs: List[Path] = []
        for root in roots:
            active_jobs.extend(_job_dirs(root))
        # Retired jobs usually vanish (the coordinator deletes the
        # directory right after DONE), so prune by absence too -- a
        # long-lived worker must not accumulate one spec per job.
        active_set = set(active_jobs)
        for cached in [d for d in specs if d not in active_set]:
            specs.pop(cached, None)
        bad_jobs &= active_set
        for job_dir in active_jobs:
            queue = WorkQueue(job_dir, lease_timeout=lease_timeout, create=False)
            if queue.is_done:
                specs.pop(job_dir, None)
                continue
            if job_dir not in specs:
                try:
                    specs[job_dir] = queue.load_spec()
                except QueueItemError as error:
                    if job_dir not in bad_jobs:
                        logger.error("skipping job %s: %s", job_dir.name, error)
                        bad_jobs.add(job_dir)
                    continue
                bad_jobs.discard(job_dir)
            claim = queue.claim(worker_id)
            if claim is None:
                continue
            claimed_something = True
            if max_rss is not None:
                rss = current_rss_bytes()
                if rss is not None and rss > max_rss:
                    # Drain gracefully: hand the unstarted claim back so
                    # the fleet picks it up immediately, then exit.
                    queue.release(claim)
                    logger.warning(
                        "worker %s: RSS %d over --max-rss %d, released %s "
                        "and exiting", worker_id, rss, max_rss, claim.item_id,
                    )
                    return WorkerExit(processed, "rss-limit")
            faults.crash_point("worker.claimed")
            try:
                item = queue.load_item(claim)
            except QueueItemError as error:
                # Poisoned payload: park it in failed/ (terminal) so the
                # coordinator can surface the error; keep serving.
                attempts = queue.requeue_counts().get(claim.item_id, 0) + 1
                queue.discard(
                    claim,
                    str(error),
                    exception=error,
                    worker_id=worker_id,
                    attempts=attempts,
                )
                break
            logger.debug(
                "worker %s running %s (%d refs) from %s",
                worker_id, item.item_id, len(item.refs), job_dir.name,
            )
            # Pace renewals against the lease horizon the COORDINATOR
            # published with the job, not this worker's own flag -- the
            # coordinator's clock is the one that requeues stale claims.
            job_lease = getattr(specs[job_dir], "lease_timeout", lease_timeout)
            with _LeaseRenewer(claim, interval=job_lease / 3.0):
                result = _execute(item, specs[job_dir])
            try:
                queue.ack(claim, result)
            except OSError as error:
                # The job directory vanished mid-task: the coordinator
                # collected a duplicate's result and retired the job
                # (this worker was presumed dead).  The work is done
                # elsewhere; dropping our identical copy is safe.
                logger.warning(
                    "could not ack %s (job %s retired, %s); dropping "
                    "duplicate result", item.item_id, job_dir.name, error,
                )
            processed += 1
            faults.crash_point("worker.acked")
            if max_tasks is not None and processed >= max_tasks:
                logger.info(
                    "worker %s: reached --max-tasks %d", worker_id, max_tasks
                )
                return WorkerExit(processed, "max-tasks")
            break  # rescan from the oldest job so fold frontiers drain first
        if claimed_something:
            idle_since = time.monotonic()
            continue
        if idle_exit is not None and time.monotonic() - idle_since >= idle_exit:
            logger.info(
                "worker %s: idle for %.1fs, exiting", worker_id, idle_exit
            )
            return WorkerExit(processed, "clean")
        time.sleep(poll_interval)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.worker",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--queue-dir", action="append", required=True,
        help="queue root directory shared with the coordinator; repeat "
        "the flag to steal work from additional roots when the first "
        "(home) root is idle",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.1,
        help="seconds between queue scans when idle (default: 0.1)",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=30.0,
        help="fallback lease horizon for renewal pacing when a job "
        "does not publish the coordinator's own (default: 30)",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=None,
        help="exit after processing this many items (default: serve forever)",
    )
    parser.add_argument(
        "--idle-exit", type=float, default=None,
        help="exit after this many seconds without work (default: never)",
    )
    parser.add_argument(
        "--worker-id", default=None,
        help="stable worker identity for lease files (default: host:pid)",
    )
    parser.add_argument(
        "--job-ttl", type=float, default=None,
        help="quarantine jobs with no pending/claimed items and no "
        "activity for this many seconds -- orphans left by crashed "
        "coordinators (default: never)",
    )
    parser.add_argument(
        "--max-rss", default=None,
        help="self-limit resident memory (e.g. 800M, 2G): release any "
        "unstarted claim and exit with status 33 instead of dying to "
        "the OOM killer (default: unlimited)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log each processed item"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
    )
    # Chaos harnesses export a fault plan; production runs have none.
    faults.install_from_env()
    try:
        result = run_worker(
            args.queue_dir,
            poll_interval=args.poll_interval,
            lease_timeout=args.lease_timeout,
            max_tasks=args.max_tasks,
            idle_exit=args.idle_exit,
            worker_id=args.worker_id,
            job_ttl=args.job_ttl,
            max_rss=(
                parse_size(args.max_rss) if args.max_rss is not None else None
            ),
        )
    except Exception:
        logger.exception("worker died on an unhandled error")
        return EXIT_FATAL
    logger.info(
        "worker processed %d item(s), exiting: %s", int(result), result.reason
    )
    return result.code


if __name__ == "__main__":
    sys.exit(main())
