"""Always-on service mode: incremental results over an unbounded stream.

Everything else in the runtime is batch: consume a finite trace, return
one :class:`~repro.sim.results.SimulationResult`.  The paper's setting
-- carbon-aware delivery for a city of millions -- is a live feed, so
this module turns the same kernel/backend/reduction machinery into a
long-running coordinator:

* **Epochs.** The unbounded session stream is partitioned into bounded
  simulation epochs by *session start time* (``floor(start /
  epoch_seconds)``), under an :class:`~repro.sim.policies.EpochPolicy`
  that scopes swarm identity to the epoch.  Peer matching never crosses
  an epoch boundary -- that is the documented semantics of service
  mode, and what makes an epoch a self-contained simulation.
* **Closing.** An epoch closes when the stream's watermark (the latest
  session start seen) passes the epoch's horizon plus an allowed
  lateness -- for a live feed delivered in near real time this is
  exactly "when its wall-clock horizon expires".  The closed epoch runs
  through the configured grouping/backend/kernel, and its
  :class:`EpochResult` delta is pushed to every registered subscriber
  (callbacks, and a durable :class:`JsonlSink`).
* **Exactness.** :meth:`SwarmKey.sort_key` leads with the epoch, so the
  canonical task order of a *batch* run under the epoch-scoped config
  is epoch-major: the concatenation of the per-epoch canonical orders.
  The service keeps one long-lived cumulative
  :class:`~repro.sim.reduce.StreamingReducer` and folds every epoch's
  output blocks into it at their global task indices -- the exact same
  float-addition sequence the batch run performs.  The merge of all
  emitted epochs (:meth:`SimulationService.result`) is therefore
  **bit-for-bit equal** to ``Simulator.run`` over the same finite trace
  with :attr:`ServiceConfig.scoped_config` -- on every backend.  (This
  requires a fixed accounting ``horizon``; with the rolling per-epoch
  horizon of truly unbounded operation each delta is still exactly the
  batch result over its own epoch.)
* **Checkpointed resume.** After each epoch the service publishes a
  :class:`ServiceCheckpoint` -- cumulative reducer state, stream
  cursor, epoch watermark and the open-epoch buffers -- with the same
  atomic-rename discipline as the work queue.  A coordinator SIGKILLed
  at any instruction and restarted over the same state dir re-reads the
  stream from the checkpointed cursor and continues: every epoch is
  emitted exactly once to durable subscribers (the JSONL sink
  deduplicates the one at-most-one epoch that was emitted but not yet
  checkpointed), with no gaps, and the cumulative result is unchanged.
  Under the distributed backend, epoch jobs carry stable tokens
  (``job-svc-<id>-epoch-<n>``), so a restarted coordinator re-attaches
  to the killed epoch's queue directory and collects acked results
  instead of re-running them.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Callable,
    ClassVar,
    Dict,
    Iterable,
    List,
    Optional,
    Union,
)

from repro.sim import faults
from repro.sim.accounting import ByteLedger
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.policies import EpochPolicy, SwarmKey
from repro.sim.queue import atomic_write_bytes
from repro.sim.reduce import StreamingReducer
from repro.sim.results import SimulationResult, SwarmResult, UserTraffic
from repro.topology.layers import NetworkLayer
from repro.trace.events import Session
from repro.trace.loader import follow_jsonl

__all__ = [
    "EpochResult",
    "JsonlSink",
    "ServiceCheckpoint",
    "ServiceConfig",
    "SimulationService",
    "result_from_payload",
    "result_to_payload",
    "serve_jsonl",
]

logger = logging.getLogger(__name__)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceConfig:
    """How the always-on coordinator chops the stream into epochs.

    Attributes:
        simulation: the **base** simulation parameters.  Pass the plain
            (batch) swarm policy here; the service scopes it to epochs
            itself (see :attr:`scoped_config`).
        epoch_seconds: epoch length in simulated seconds (one bounded
            simulation per epoch).
        horizon: fixed accounting horizon stamped on every epoch run.
            Required for exact batch parity -- the kernel normalizes
            capacities and arrival rates by the task horizon, so all
            epochs must share the batch run's.  ``None`` switches to a
            rolling per-epoch horizon (truly unbounded operation):
            each delta is still exactly the batch result over its own
            epoch, but there is no finite batch run to compare the
            cumulative result against.
        allowed_lateness: how far (in simulated seconds) a session may
            arrive behind the watermark before its epoch has already
            closed.  An epoch closes only once the watermark passes
            ``epoch_end + allowed_lateness``.
        late_policy: what to do with a session whose epoch already
            closed: ``"drop"`` counts and skips it (the default --
            exactly-once emission beats completeness on a live feed),
            ``"error"`` raises.
    """

    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    epoch_seconds: float = 86_400.0
    horizon: Optional[float] = None
    allowed_lateness: float = 0.0
    late_policy: str = "drop"

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0:
            raise ValueError(
                f"epoch_seconds must be > 0, got {self.epoch_seconds!r}"
            )
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon!r}")
        if self.allowed_lateness < 0:
            raise ValueError(
                f"allowed_lateness must be >= 0, got {self.allowed_lateness!r}"
            )
        if self.late_policy not in ("drop", "error"):
            raise ValueError(
                f"late_policy must be 'drop' or 'error', got {self.late_policy!r}"
            )
        if isinstance(self.simulation.policy, EpochPolicy):
            raise ValueError(
                "pass the base swarm policy; the service scopes it to "
                "epochs itself (simulation.policy is already an EpochPolicy)"
            )

    @property
    def policy(self) -> EpochPolicy:
        """The epoch-scoped swarm policy every epoch runs under."""
        return EpochPolicy(
            base=self.simulation.policy, epoch_seconds=self.epoch_seconds
        )

    @property
    def scoped_config(self) -> SimulationConfig:
        """The batch-comparable config: ``simulation`` with the epoch
        policy swapped in.

        ``Simulator(config.scoped_config).run(trace)`` over a finite
        trace is the reference the service's cumulative result equals
        bit for bit (fixed ``horizon`` mode).
        """
        return replace(self.simulation, policy=self.policy)


# ----------------------------------------------------------------------
# Per-epoch emission
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EpochResult:
    """One closed epoch's delta, as delivered to subscribers.

    Attributes:
        epoch: the epoch index (``floor(start / epoch_seconds)``).
        epoch_start / epoch_end: the epoch's time interval (seconds).
        horizon: accounting horizon the epoch ran under.
        sessions: sessions simulated in this epoch.
        delta: the epoch's own :class:`SimulationResult` -- exactly the
            batch result over the epoch's sub-stream under the
            epoch-scoped policy.
    """

    epoch: int
    epoch_start: float
    epoch_end: float
    horizon: float
    sessions: int
    delta: SimulationResult


#: A subscriber receives every closed epoch, in epoch order.  Durable
#: subscribers must deduplicate by epoch index (see :class:`JsonlSink`):
#: after a crash between emission and checkpoint, the re-run epoch is
#: emitted again (deltas are deterministic, so the payload is
#: identical).
Subscriber = Callable[[EpochResult], None]


# ----------------------------------------------------------------------
# Result JSON codec (exact float round-trip via repr)
# ----------------------------------------------------------------------


def _ledger_to_payload(ledger: ByteLedger) -> Dict[str, object]:
    return {
        "server_bits": ledger.server_bits,
        "peer_bits": {
            str(layer.value): bits
            for layer, bits in sorted(ledger.peer_bits.items())
        },
        "demanded_bits": ledger.demanded_bits,
        "watch_seconds": ledger.watch_seconds,
        "sessions": ledger.sessions,
    }


def _ledger_from_payload(payload: Dict) -> ByteLedger:
    return ByteLedger(
        server_bits=float(payload["server_bits"]),
        peer_bits={
            NetworkLayer(int(layer)): float(bits)
            for layer, bits in payload["peer_bits"].items()
        },
        demanded_bits=float(payload["demanded_bits"]),
        watch_seconds=float(payload["watch_seconds"]),
        sessions=int(payload["sessions"]),
    )


def _key_to_payload(key: SwarmKey) -> Dict[str, object]:
    return {
        "content_id": key.content_id,
        "isp": key.isp,
        "bitrate_class": key.bitrate_class,
        "epoch": key.epoch,
    }


def _key_from_payload(payload: Dict) -> SwarmKey:
    return SwarmKey(
        content_id=payload["content_id"],
        isp=payload.get("isp"),
        bitrate_class=payload.get("bitrate_class"),
        epoch=payload.get("epoch"),
    )


def result_to_payload(result: SimulationResult) -> Dict[str, object]:
    """A :class:`SimulationResult` as deterministic JSON-able data.

    Collections are emitted in canonical sorted order and floats
    survive ``json`` round-trips bit for bit (shortest-round-trip
    ``repr``), so equal results always serialize to equal payloads --
    the property the kill/restart tests compare sink files by.
    """
    return {
        "delta_tau": result.delta_tau,
        "horizon": result.horizon,
        "upload_ratio": result.upload_ratio,
        "total": _ledger_to_payload(result.total),
        "per_swarm": [
            {
                "key": _key_to_payload(key),
                "ledger": _ledger_to_payload(swarm.ledger),
                "capacity": swarm.capacity,
                "arrival_rate": swarm.arrival_rate,
                "mean_duration": swarm.mean_duration,
            }
            for key, swarm in sorted(
                result.per_swarm.items(), key=lambda kv: kv[0].sort_key()
            )
        ],
        "per_isp_day": [
            [isp, day, _ledger_to_payload(ledger)]
            for (isp, day), ledger in sorted(result.per_isp_day.items())
        ],
        "per_user": [
            [uid, traffic.watched_bits, traffic.uploaded_bits]
            for uid, traffic in sorted(result.per_user.items())
        ],
    }


def result_from_payload(payload: Dict) -> SimulationResult:
    """Inverse of :func:`result_to_payload` (exact, bit for bit)."""
    per_swarm: Dict[SwarmKey, SwarmResult] = {}
    for entry in payload["per_swarm"]:
        key = _key_from_payload(entry["key"])
        per_swarm[key] = SwarmResult(
            key=key,
            ledger=_ledger_from_payload(entry["ledger"]),
            capacity=float(entry["capacity"]),
            arrival_rate=float(entry["arrival_rate"]),
            mean_duration=float(entry["mean_duration"]),
        )
    return SimulationResult(
        total=_ledger_from_payload(payload["total"]),
        per_swarm=per_swarm,
        per_isp_day={
            (isp, int(day)): _ledger_from_payload(ledger)
            for isp, day, ledger in payload["per_isp_day"]
        },
        per_user={
            int(uid): UserTraffic(
                watched_bits=float(watched), uploaded_bits=float(uploaded)
            )
            for uid, watched, uploaded in payload["per_user"]
        },
        delta_tau=float(payload["delta_tau"]),
        horizon=float(payload["horizon"]),
        upload_ratio=float(payload["upload_ratio"]),
    )


# ----------------------------------------------------------------------
# Durable subscriber
# ----------------------------------------------------------------------


class JsonlSink:
    """Append one JSON record per closed epoch to a results feed.

    The durable half of exactly-once emission: construction scans the
    existing file, truncates a torn trailing line (a coordinator killed
    mid-append), and remembers the highest epoch already present; a
    replayed emission -- the restarted coordinator re-running the one
    epoch that was emitted but not yet checkpointed -- is skipped
    instead of appended twice.  Appends are flushed and fsynced, so a
    record the checkpoint believes emitted is actually on disk.
    """

    #: Record discriminator of the per-epoch lines this sink writes.
    KIND = "epoch-result"

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.last_epoch = -1
        self._recover()

    def _recover(self) -> None:
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        if raw and not raw.endswith(b"\n"):
            # A torn tail can only be the last append (writes are
            # newline-terminated); truncating it keeps the feed parseable
            # by strict readers after the record is re-appended whole.
            cut = raw.rfind(b"\n") + 1
            raw = raw[:cut]
            self.path.write_bytes(raw)
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # defensive: never wedge recovery on one line
            if record.get("kind") == self.KIND:
                self.last_epoch = max(self.last_epoch, int(record["epoch"]))

    def __call__(self, event: EpochResult) -> None:
        if event.epoch <= self.last_epoch:
            logger.info(
                "sink %s: epoch %d already durable, skipping replay",
                self.path.name, event.epoch,
            )
            return
        record = {
            "kind": self.KIND,
            "epoch": event.epoch,
            "epoch_start": event.epoch_start,
            "epoch_end": event.epoch_end,
            "horizon": event.horizon,
            "sessions": event.sessions,
            "result": result_to_payload(event.delta),
        }
        payload = (json.dumps(record) + "\n").encode("utf-8")

        def append() -> None:
            """Append the record line through the fault-injectable facade."""
            with self.path.open("ab") as handle:
                faults.storage().write(handle, payload, site="sink.append")
                handle.flush()
                os.fsync(handle.fileno())

        # A torn append leaves a partial line at the tail; repairing
        # (truncating back to the last newline) before each retry keeps
        # the retried whole record from landing after a garbage prefix.
        faults.retrying("sink.append", append, on_retry=lambda _: self._recover())
        self.last_epoch = event.epoch

    @classmethod
    def read(cls, path: Union[str, Path]) -> List[Dict]:
        """All complete epoch records in a sink file, epoch order as
        written (tolerates a torn trailing line)."""
        path = Path(path)
        if not path.exists():
            return []
        records = []
        raw = path.read_bytes()
        if raw and not raw.endswith(b"\n"):
            raw = raw[: raw.rfind(b"\n") + 1]
        for line in raw.splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            if record.get("kind") == cls.KIND:
                records.append(record)
        return records


# ----------------------------------------------------------------------
# Checkpoint
# ----------------------------------------------------------------------


@dataclass
class ServiceCheckpoint:
    """Everything a restarted coordinator needs to resume mid-stream.

    Published atomically (temp file + rename, the queue's own
    :func:`~repro.sim.queue.atomic_write_bytes`) after every epoch
    close, when the cumulative reducer has no buffered blocks -- so the
    file on disk is always a *consistent* cut: reducer state, the
    stream cursor (session records consumed), the epoch watermark
    (``next_epoch`` / ``watermark``), and the open-epoch session
    buffers that had been read but not yet simulated.  A SIGKILL at any
    instruction leaves either the previous checkpoint or this one,
    never a torn mix.
    """

    FILENAME: ClassVar[str] = "checkpoint.pkl"

    config: ServiceConfig
    service_id: str
    next_epoch: Optional[int]
    watermark: Optional[float]
    cursor: int
    task_base: int
    emitted: int
    late_sessions: int
    reducer: StreamingReducer
    buffers: Dict[int, List[Session]]
    version: int = 1

    def save(self, state_dir: Union[str, Path]) -> Path:
        """Atomically publish this checkpoint to ``path`` (temp + rename)."""
        path = Path(state_dir) / self.FILENAME
        atomic_write_bytes(path, pickle.dumps(self), site="checkpoint.save")
        return path

    @classmethod
    def load(cls, state_dir: Union[str, Path]) -> Optional["ServiceCheckpoint"]:
        """The checkpoint under ``state_dir``, or None for a fresh start.

        Raises:
            RuntimeError: if the file exists but cannot be decoded --
                rename-published checkpoints are never torn, so a
                corrupt one means real damage the operator should see,
                not silently restart from scratch.
        """
        path = Path(state_dir) / cls.FILENAME
        if not path.exists():
            return None
        try:
            payload = pickle.loads(path.read_bytes())
        except Exception as error:
            raise RuntimeError(
                f"corrupt service checkpoint {path}: {error}"
            ) from error
        if not isinstance(payload, cls):
            raise RuntimeError(
                f"service checkpoint {path} holds {type(payload).__name__}"
            )
        return payload


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------


class SimulationService:
    """Long-running coordinator: stream in, per-epoch deltas out.

    Construct over a ``state_dir``; if a :class:`ServiceCheckpoint` is
    present the service resumes from it (``resumed`` is True and
    :attr:`cursor` tells the caller how many session records to skip
    when re-opening the stream -- :func:`follow_jsonl` takes it as
    ``start_record``).

    Args:
        config: the :class:`ServiceConfig`.
        state_dir: directory owning the checkpoint (created if absent).
        subscribers: initial subscriber callables (see
            :data:`Subscriber`); more via :meth:`add_subscriber`.
        simulator: injected :class:`Simulator` (tests/benchmarks); must
            be built over ``config.scoped_config``.  The service owns
            (and closes) one it builds itself.

    Raises:
        ValueError: when resuming with a config that differs from the
            checkpointed one (epoch geometry and policy define the
            fold; silently changing them would corrupt the cumulative
            result).
    """

    def __init__(
        self,
        config: ServiceConfig,
        state_dir: Union[str, Path],
        subscribers: Iterable[Subscriber] = (),
        simulator: Optional[Simulator] = None,
    ) -> None:
        self.config = config
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._subscribers: List[Subscriber] = list(subscribers)
        self._owns_sim = simulator is None
        self._sim = simulator or Simulator(config.scoped_config)
        self._policy = config.policy
        checkpoint = ServiceCheckpoint.load(self.state_dir)
        self.resumed = checkpoint is not None
        if checkpoint is not None:
            if checkpoint.config != config:
                raise ValueError(
                    f"state dir {self.state_dir} holds a checkpoint for a "
                    "different service config; clear the state dir or match "
                    "the config"
                )
            self.service_id = checkpoint.service_id
            self._next_epoch = checkpoint.next_epoch
            self._watermark = checkpoint.watermark
            self._cursor = checkpoint.cursor
            self._task_base = checkpoint.task_base
            self.emitted = checkpoint.emitted
            self.late_sessions = checkpoint.late_sessions
            self._reducer = checkpoint.reducer
            self._buffers = {
                epoch: list(sessions)
                for epoch, sessions in checkpoint.buffers.items()
            }
            logger.info(
                "service %s resumed at epoch %s (cursor=%d, emitted=%d)",
                self.service_id, self._next_epoch, self._cursor, self.emitted,
            )
        else:
            self.service_id = uuid.uuid4().hex[:8]
            self._next_epoch: Optional[int] = None
            self._watermark: Optional[float] = None
            self._cursor = 0
            self._task_base = 0
            self.emitted = 0
            self.late_sessions = 0
            self._reducer = StreamingReducer(
                delta_tau=config.simulation.delta_tau,
                horizon=config.horizon if config.horizon is not None else 0.0,
                upload_ratio=config.simulation.upload_ratio,
            )
            self._buffers: Dict[int, List[Session]] = {}

    # -- introspection --------------------------------------------------

    @property
    def cursor(self) -> int:
        """Session records consumed so far -- pass as ``start_record``
        when re-opening the stream after :attr:`resumed`."""
        return self._cursor

    @property
    def next_epoch(self) -> Optional[int]:
        """First epoch not yet emitted (None before the first session)."""
        return self._next_epoch

    @property
    def open_epochs(self) -> List[int]:
        """Epochs with buffered sessions awaiting their close."""
        return sorted(self._buffers)

    def add_subscriber(self, subscriber: Subscriber) -> None:
        """Register ``subscriber`` for every future :class:`EpochResult`."""
        self._subscribers.append(subscriber)

    def result(self) -> SimulationResult:
        """The merge of every epoch emitted so far.

        Maintained by folding each epoch's output blocks into one
        long-lived reducer at their global task indices -- the same
        canonical fold (same float-addition sequence) the batch run
        performs, which is why, under a fixed ``horizon``, this equals
        ``Simulator(config.scoped_config).run(trace)`` bit for bit
        once the stream is exhausted.
        """
        return self._reducer.snapshot_result()

    def close(self) -> None:
        """Release the owned simulator's backend resources."""
        if self._owns_sim:
            self._sim.close()

    # -- ingestion ------------------------------------------------------

    def ingest(self, session: Session) -> None:
        """Consume one session; closes (and emits) any epoch whose
        horizon the watermark has passed."""
        self._cursor += 1
        epoch = self._policy.epoch_of(session.start)
        if self._next_epoch is None:
            # Anchor the epoch sequence at the stream's first session
            # (minus the lateness slack), so feeds with wall-clock
            # timestamps don't open thousands of empty epochs at t=0.
            self._next_epoch = self._policy.epoch_of(
                max(0.0, session.start - self.config.allowed_lateness)
            )
        if epoch < self._next_epoch:
            self.late_sessions += 1
            if self.config.late_policy == "error":
                raise RuntimeError(
                    f"session {session.session_id} arrived for epoch {epoch} "
                    f"after it closed (next open epoch: {self._next_epoch})"
                )
            logger.warning(
                "dropping late session %d (epoch %d closed; %d late so far)",
                session.session_id, epoch, self.late_sessions,
            )
        else:
            self._buffers.setdefault(epoch, []).append(session)
        if self._watermark is None or session.start > self._watermark:
            self._watermark = session.start
        self._drain_ready()

    def run(self, sessions: Iterable[Session], *, flush: bool = True) -> None:
        """Ingest a stream until it ends; optionally flush open epochs.

        The stream may be unbounded (:func:`follow_jsonl`); this
        returns when it does.  ``flush`` closes every still-open epoch
        at end-of-stream -- terminal for those epochs, so only flush
        streams that are actually over.
        """
        for session in sessions:
            self.ingest(session)
        if flush:
            self.flush()

    def flush(self) -> None:
        """Close every epoch with buffered sessions (end-of-stream)."""
        while self._buffers:
            self._close_epoch(self._next_epoch)

    # -- epoch machinery ------------------------------------------------

    def _drain_ready(self) -> None:
        if self._next_epoch is None or self._watermark is None:
            return
        while (
            self._watermark
            >= self._policy.epoch_bounds(self._next_epoch)[1]
            + self.config.allowed_lateness
        ):
            self._close_epoch(self._next_epoch)

    def _epoch_horizon(self, epoch: int, sessions: List[Session]) -> float:
        if self.config.horizon is not None:
            return self.config.horizon
        _, end = self._policy.epoch_bounds(epoch)
        latest_end = max((s.end for s in sessions), default=end)
        return max(end, latest_end)

    def _close_epoch(self, epoch: int) -> None:
        """Simulate one epoch, emit its delta, advance the checkpoint."""
        sessions = self._buffers.pop(epoch, [])
        start, end = self._policy.epoch_bounds(epoch)
        horizon = self._epoch_horizon(epoch, sessions)
        config = self._sim.config
        delta_reducer = StreamingReducer(
            delta_tau=config.delta_tau,
            horizon=horizon,
            upload_ratio=config.upload_ratio,
        )
        backend = self._sim.backend
        # Stable per-epoch job naming: a coordinator killed mid-epoch
        # and restarted re-attaches to this job's acked on-disk state
        # instead of re-running finished work (distributed backend only).
        token_set = hasattr(backend, "job_token")
        if token_set:
            backend.job_token = f"svc-{self.service_id}-epoch-{epoch:08d}"
        try:
            plan = self._sim.grouping.plan(iter(sessions), horizon, config.policy)
            try:
                count = len(plan)
                for block_start, block in backend.iter_outputs(plan, config):
                    delta_reducer.add(block_start, block)
                    self._reducer.add(self._task_base + block_start, block)
            finally:
                plan.cleanup()
        finally:
            if token_set:
                backend.job_token = None
        if delta_reducer.outputs_folded != count:
            raise RuntimeError(
                f"epoch {epoch}: backend delivered "
                f"{delta_reducer.outputs_folded} outputs for {count} tasks"
            )
        self._task_base += count
        self._reducer.advance_horizon(horizon)
        delta = delta_reducer.result()
        event = EpochResult(
            epoch=epoch,
            epoch_start=start,
            epoch_end=end,
            horizon=horizon,
            sessions=len(sessions),
            delta=delta,
        )
        self._next_epoch = epoch + 1
        self.emitted += 1
        logger.info(
            "epoch %d closed: %d sessions, %d swarms, offload %.3f",
            epoch, len(sessions), len(delta.per_swarm), delta.offload_fraction(),
        )
        # Emission before checkpoint: a crash in between replays the
        # epoch on restart, and durable subscribers deduplicate by
        # epoch index (the replayed delta is deterministic, hence
        # identical).  Checkpoint-then-emit would instead *drop* the
        # epoch -- a gap, which nothing downstream could repair.
        for subscriber in self._subscribers:
            subscriber(event)
        faults.crash_point("service.emitted")
        self._write_checkpoint()
        faults.crash_point("service.checkpointed")

    def _write_checkpoint(self) -> None:
        ServiceCheckpoint(
            config=self.config,
            service_id=self.service_id,
            next_epoch=self._next_epoch,
            watermark=self._watermark,
            cursor=self._cursor,
            task_base=self._task_base,
            emitted=self.emitted,
            late_sessions=self.late_sessions,
            reducer=self._reducer,
            buffers={e: list(s) for e, s in self._buffers.items()},
        ).save(self.state_dir)


# ----------------------------------------------------------------------
# Convenience driver
# ----------------------------------------------------------------------


def serve_jsonl(
    feed_path: Union[str, Path],
    state_dir: Union[str, Path],
    config: ServiceConfig,
    *,
    sink_path: Optional[Union[str, Path]] = None,
    subscribers: Iterable[Subscriber] = (),
    poll_interval: float = 0.2,
    idle_timeout: Optional[float] = None,
    stop: Optional[Callable[[], bool]] = None,
    flush: bool = True,
) -> SimulationService:
    """Follow a live JSONL feed through a (possibly resumed) service.

    Builds a :class:`SimulationService` over ``state_dir`` (resuming
    from its checkpoint when one exists), attaches a durable
    :class:`JsonlSink` at ``sink_path`` (default:
    ``state_dir/results.jsonl``), and tails ``feed_path`` from the
    service's stream cursor.  Returns the service -- with its final
    cumulative :meth:`~SimulationService.result` available -- once the
    feed ends (``trace-end`` marker, ``stop()``, or ``idle_timeout``).
    """
    service = SimulationService(config, state_dir, subscribers=subscribers)
    sink = JsonlSink(
        sink_path if sink_path is not None else Path(state_dir) / "results.jsonl"
    )
    service.add_subscriber(sink)
    try:
        service.run(
            follow_jsonl(
                feed_path,
                poll_interval=poll_interval,
                idle_timeout=idle_timeout,
                stop=stop,
                start_record=service.cursor,
            ),
            flush=flush,
        )
    finally:
        service.close()
    return service
