"""Incremental streaming reduction of swarm-shard outputs.

The batched runtime materializes every :class:`~repro.sim.kernel.\
SwarmOutput` in the coordinator before folding them
(:func:`~repro.sim.kernel.merge_outputs`), which caps trace size well
below the paper's month-of-London scale: 23.5M sessions across 3.3M
users means millions of resident per-user and per-(ISP, day) dict
entries *per buffered shard*.  This module is the bounded-memory
alternative:

* :class:`StreamingReducer` folds shard outputs into a running
  :class:`~repro.sim.results.SimulationResult` **as they complete**.
  Outputs may arrive in any completion order; the reducer re-orders
  them back into canonical task order (the order
  :func:`~repro.sim.kernel.build_tasks` produced -- the same canonical
  order that underpins ``SimulationResult.from_partials``'s
  fingerprint sort) and folds the identical float-addition sequence
  the batched path performs, so streaming results are bit-for-bit
  equal to batched ones.  Its reorder buffer is the *only* place
  un-folded shards live, and with the backends' bounded in-flight
  submission window it never holds more than ``workers + 1`` blocks.
* :class:`FootprintAccumulator` keeps per-user traffic out of the
  dict-of-dataclasses representation while shards fold: packed
  ``array('d')`` columns (two floats per user) in memory, or -- with a
  ``spill_path`` -- an append-only delta log on disk so the
  coordinator holds only fixed-size running statistics until the final
  result is materialized.
* :class:`ReductionStats` reports what a run actually did (mode,
  blocks folded, peak resident partials, spill location) so benchmarks
  and tests can assert the memory bound instead of trusting it.

:func:`repro.sim.kernel.merge_outputs` is a thin wrapper over
:class:`StreamingReducer`, so the batched and streaming reductions
share one fold implementation and cannot drift.
"""

from __future__ import annotations

import pickle
from array import array
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.sim.accounting import ByteLedger
from repro.sim.policies import SwarmKey
from repro.sim.results import (
    SimulationResult,
    SwarmResult,
    UserTraffic,
    merge_ledger_map,
    merge_traffic_map,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kernel imports us)
    from repro.sim.kernel import SwarmOutput

__all__ = [
    "REDUCTION_MODES",
    "FootprintStats",
    "FootprintAccumulator",
    "StreamingReducer",
    "SweepReducer",
    "ReductionStats",
    "iter_user_deltas",
    "load_user_deltas",
    "reduce_outputs",
]

#: Selectable reduction modes, the single source of truth consumed by
#: ``SimulationConfig`` validation and the CLI's ``--reduction`` choices.
#:
#: * ``"batched"``  -- materialize every shard output, then fold (the
#:   historical behaviour; fastest for small traces, O(shards) memory).
#: * ``"streaming"`` -- fold shard outputs as they complete; at most
#:   ``workers + 1`` shard outputs resident, per-user traffic packed
#:   into float columns until the final result is built.
#: * ``"spill"``     -- streaming, plus per-user deltas appended to a
#:   disk log instead of held in memory; the log is re-aggregated only
#:   when the final result is materialized (and is left behind for
#:   out-of-core consumers when ``spill_dir`` is set explicitly).
REDUCTION_MODES: Tuple[str, ...] = ("batched", "streaming", "spill")


# ----------------------------------------------------------------------
# Per-user footprint accumulation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FootprintStats:
    """Fixed-size summary of the per-user traffic folded so far.

    Attributes:
        users: distinct users seen (``None`` in spill mode, where the
            accumulator deliberately keeps no per-user index).
        records: per-(shard, user) delta records folded.
        watched_bits: total bits streamed across all users.
        uploaded_bits: total bits uploaded across all users.
    """

    users: Optional[int]
    records: int
    watched_bits: float
    uploaded_bits: float


class FootprintAccumulator:
    """Collapses per-user traffic deltas into compact running state.

    In-memory mode packs each user's (watched, uploaded) totals into two
    ``array('d')`` columns plus an id->slot index -- O(users) floats
    instead of O(users) :class:`~repro.sim.results.UserTraffic`
    dataclass instances.  With ``spill_path`` set, deltas are instead
    appended to a text log (one ``"uid watched uploaded"`` line per
    user per shard, floats serialized with ``repr`` so they round-trip
    exactly) and only fixed-size running totals stay resident.

    Either way, :meth:`materialize` rebuilds the exact per-user dict the
    batched reduction would have produced: additions happen in the same
    (fold) order, so the result is bit-for-bit identical.
    """

    def __init__(self, spill_path: Optional[Union[str, Path]] = None) -> None:
        self.spill_path: Optional[Path] = (
            Path(spill_path) if spill_path is not None else None
        )
        self._spill_file = None
        self._spill_closed = False
        self._slots: Dict[int, int] = {}
        self._watched = array("d")
        self._uploaded = array("d")
        self._records = 0
        self._watched_total = 0.0
        self._uploaded_total = 0.0

    # -- folding -------------------------------------------------------

    def add(self, per_user: Mapping[int, UserTraffic]) -> None:
        """Fold one shard's per-user deltas (in their iteration order)."""
        if self.spill_path is not None:
            spill = self._spill()
            for user_id, traffic in per_user.items():
                spill.write(
                    f"{user_id} {traffic.watched_bits!r} {traffic.uploaded_bits!r}\n"
                )
                self._records += 1
                self._watched_total += traffic.watched_bits
                self._uploaded_total += traffic.uploaded_bits
            return
        slots = self._slots
        watched = self._watched
        uploaded = self._uploaded
        for user_id, traffic in per_user.items():
            slot = slots.get(user_id)
            if slot is None:
                slot = slots[user_id] = len(watched)
                watched.append(0.0)
                uploaded.append(0.0)
            watched[slot] += traffic.watched_bits
            uploaded[slot] += traffic.uploaded_bits
            self._records += 1
            self._watched_total += traffic.watched_bits
            self._uploaded_total += traffic.uploaded_bits

    def _spill(self):
        if self._spill_closed:
            # Reopening with "w" would truncate the folded records --
            # refuse instead of silently losing data.
            raise RuntimeError(
                f"spill log {self.spill_path} was already closed; "
                "cannot fold further deltas"
            )
        if self._spill_file is None:
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            self._spill_file = open(self.spill_path, "w", encoding="ascii")
        return self._spill_file

    # -- reading back ----------------------------------------------------

    @property
    def num_users(self) -> Optional[int]:
        """Distinct users folded so far (``None`` in spill mode)."""
        if self.spill_path is not None:
            return None
        return len(self._slots)

    def stats(self) -> FootprintStats:
        """The fixed-size running summary."""
        return FootprintStats(
            users=self.num_users,
            records=self._records,
            watched_bits=self._watched_total,
            uploaded_bits=self._uploaded_total,
        )

    def materialize(self) -> Dict[int, UserTraffic]:
        """The exact per-user traffic map, as the batched fold builds it.

        In-memory mode unpacks the float columns; spill mode closes and
        re-reads the delta log, aggregating records in file (= fold)
        order.  Both reproduce the batched dict bit for bit.
        """
        if self.spill_path is not None:
            self.close()
            if not self.spill_path.exists():
                return {}
            return load_user_deltas(self.spill_path)
        return {
            user_id: UserTraffic(
                watched_bits=self._watched[slot], uploaded_bits=self._uploaded[slot]
            )
            for user_id, slot in self._slots.items()
        }

    def close(self) -> None:
        """Flush and close the spill log (no-op in memory mode).

        Once a written log is closed, further :meth:`add` calls raise
        rather than truncate it.
        """
        if self._spill_file is not None:
            self._spill_file.close()
            self._spill_file = None
            self._spill_closed = True


def iter_user_deltas(path: Union[str, Path]) -> Iterator[Tuple[int, float, float]]:
    """Stream ``(user_id, watched_bits, uploaded_bits)`` delta records.

    The raw spill-log reader for out-of-core consumers that want to
    process per-user deltas without ever building the full map.
    """
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            if not line.strip():
                continue
            user_field, watched_field, uploaded_field = line.split()
            yield int(user_field), float(watched_field), float(uploaded_field)


def load_user_deltas(path: Union[str, Path]) -> Dict[int, UserTraffic]:
    """Aggregate a spill log back into the exact per-user traffic map.

    Records are folded in file order -- the order shards folded in --
    so the map is bit-for-bit the one the in-memory reduction builds.
    """
    per_user: Dict[int, UserTraffic] = {}
    for user_id, watched_bits, uploaded_bits in iter_user_deltas(path):
        delta = UserTraffic(watched_bits=watched_bits, uploaded_bits=uploaded_bits)
        existing = per_user.get(user_id)
        if existing is None:
            per_user[user_id] = delta
        else:  # the shared merge path, so spill replay cannot drift
            existing.merge(delta)
    return per_user


# ----------------------------------------------------------------------
# The incremental reducer
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReductionStats:
    """What one reduction actually did, for benchmarks and assertions.

    Attributes:
        mode: one of :data:`REDUCTION_MODES`.
        outputs: swarm outputs folded.
        blocks: contiguous shard blocks the backend delivered.
        peak_resident: most blocks ever resident (buffered awaiting
            their turn in the fold, including the one being added).
            Batched reduction reports the full block count here -- by
            construction everything is resident at once.
        peak_resident_outputs: most swarm *outputs* ever resident
            across those blocks -- the honest memory unit when blocks
            hold more than one output each (the process backend's
            shards).  Batched reduction reports the full output count.
        spill_path: where per-user deltas were spilled, if anywhere.
    """

    mode: str
    outputs: int
    blocks: int
    peak_resident: int
    peak_resident_outputs: int = 0
    spill_path: Optional[str] = None


class StreamingReducer:
    """Folds swarm outputs into a running result, in canonical order.

    Blocks of outputs are keyed by the task index of their first output
    (tasks as ordered by :func:`~repro.sim.kernel.build_tasks`).  A
    block arriving out of order is buffered; as soon as the next-in-line
    block is present the fold advances through every contiguous buffered
    block.  The fold itself is *the* reduction --
    :func:`~repro.sim.kernel.merge_outputs` wraps this class -- so any
    completion order produces the batched result bit for bit.

    Args:
        delta_tau / horizon / upload_ratio: run parameters stamped on
            the final :class:`~repro.sim.results.SimulationResult`.
        users: optional :class:`FootprintAccumulator` receiving per-user
            deltas; ``None`` keeps the plain dict fold (batched mode).
    """

    def __init__(
        self,
        *,
        delta_tau: float,
        horizon: float,
        upload_ratio: float,
        users: Optional[FootprintAccumulator] = None,
    ) -> None:
        self._delta_tau = delta_tau
        self._horizon = horizon
        self._upload_ratio = upload_ratio
        self._users = users
        self._total = ByteLedger()
        self._per_swarm: Dict[SwarmKey, SwarmResult] = {}
        self._per_isp_day: Dict[Tuple[str, int], ByteLedger] = {}
        self._per_user: Dict[int, UserTraffic] = {}
        self._pending: Dict[int, List["SwarmOutput"]] = {}
        self._next_index = 0
        self._finalized = False
        self._resident_outputs = 0
        self.outputs_folded = 0
        self.blocks_folded = 0
        self.peak_resident = 0
        self.peak_resident_outputs = 0

    def add(self, index: int, outputs: Sequence["SwarmOutput"]) -> None:
        """Accept the block whose first output is task ``index``.

        Blocks may arrive in any order; each is buffered until every
        earlier task has been folded, then folded in task order.

        Raises:
            ValueError: on an empty block, a block already folded, or a
                duplicate index.
            RuntimeError: after :meth:`result` has been called.
        """
        if self._finalized:
            raise RuntimeError("cannot add blocks after result() was taken")
        block = list(outputs)
        if not block:
            raise ValueError("blocks must contain at least one output")
        if index < self._next_index or index in self._pending:
            raise ValueError(f"block at task index {index} was already delivered")
        self._pending[index] = block
        self._resident_outputs += len(block)
        if len(self._pending) > self.peak_resident:
            self.peak_resident = len(self._pending)
        if self._resident_outputs > self.peak_resident_outputs:
            self.peak_resident_outputs = self._resident_outputs
        while self._next_index in self._pending:
            ready = self._pending.pop(self._next_index)
            for output in ready:
                self._fold(output)
            self._next_index += len(ready)
            self._resident_outputs -= len(ready)
            self.blocks_folded += 1

    def _fold(self, output: "SwarmOutput") -> None:
        """One output's worth of the canonical reduction.

        Mirrors (is) the batched fold: never mutates or aliases the
        output, so re-reducing the same outputs stays idempotent.
        """
        result = output.result
        existing = self._per_swarm.get(result.key)
        if existing is None:
            self._per_swarm[result.key] = SwarmResult(
                key=result.key,
                ledger=result.ledger.copy(),
                capacity=result.capacity,
                arrival_rate=result.arrival_rate,
                mean_duration=result.mean_duration,
            )
        else:  # duplicate key (never from build_tasks, but stay correct)
            self._per_swarm[result.key] = SwarmResult.combine(
                result.key, [existing, result]
            )
        self._total.merge(result.ledger)
        merge_ledger_map(self._per_isp_day, output.per_isp_day)
        if self._users is not None:
            self._users.add(output.per_user)
        else:
            merge_traffic_map(self._per_user, output.per_user)
        self.outputs_folded += 1

    def advance_horizon(self, horizon: float) -> None:
        """Extend the horizon stamped on the final result (never shrink).

        The always-on service folds epoch after epoch into one
        long-lived reducer; under a rolling per-epoch horizon the
        reducer's stamp must track the furthest epoch folded so far.

        Raises:
            RuntimeError: after :meth:`result` has been called.
        """
        if self._finalized:
            raise RuntimeError("cannot advance horizon after result() was taken")
        self._horizon = max(self._horizon, horizon)

    def snapshot_result(self) -> SimulationResult:
        """The result so far, without finalizing this reducer.

        Built from a pickled deep copy, so the returned result shares
        no state with the live fold and more blocks can keep arriving.
        This is how the service reads its cumulative result between
        epochs -- and why the reducer itself is picklable enough to
        live inside a :class:`~repro.sim.service.ServiceCheckpoint`.

        Raises:
            ValueError: if out-of-order blocks are still buffered.
            RuntimeError: with a :class:`FootprintAccumulator` attached
                (its spill handle cannot be copied; snapshotting is a
                plain-dict-fold feature).
        """
        if self._users is not None:
            raise RuntimeError(
                "snapshot_result() requires the plain dict fold (users=None)"
            )
        return pickle.loads(pickle.dumps(self)).result()

    def result(self) -> SimulationResult:
        """Finish the reduction and build the final result.

        Raises:
            ValueError: if out-of-order blocks are still buffered (the
                block at the fold frontier never arrived).
        """
        if self._pending:
            raise ValueError(
                f"block at task index {self._next_index} never arrived; "
                f"{len(self._pending)} later blocks still buffered"
            )
        self._finalized = True
        if self._users is not None:
            per_user = self._users.materialize()
        else:
            per_user = self._per_user
        return SimulationResult(
            total=self._total,
            per_swarm=self._per_swarm,
            per_isp_day=self._per_isp_day,
            per_user=per_user,
            delta_tau=self._delta_tau,
            horizon=self._horizon,
            upload_ratio=self._upload_ratio,
        )

    def stats(self, mode: str) -> ReductionStats:
        """This reduction's :class:`ReductionStats` under ``mode``."""
        spill = self._users.spill_path if self._users is not None else None
        return ReductionStats(
            mode=mode,
            outputs=self.outputs_folded,
            blocks=self.blocks_folded,
            peak_resident=self.peak_resident,
            peak_resident_outputs=self.peak_resident_outputs,
            spill_path=str(spill) if spill is not None else None,
        )


class SweepReducer:
    """Folds a sweep's shard blocks into K results in one pass.

    The reduction half of ``Simulator.run_sweep``: backends deliver
    ``(start_index, [MultiSwarmOutput, ...])`` blocks (each carrying one
    output per sweep config for each task in the block), and this class
    demultiplexes every block into K :class:`StreamingReducer` instances
    -- one per config -- as it arrives.  Each per-config reducer sees
    exactly the ``(index, outputs)`` sequence a single-config run would
    have produced, so every result of :meth:`results` is bit-for-bit the
    result of the corresponding independent run, under any backend,
    completion order or reduction mode.
    """

    def __init__(self, reducers: Sequence[StreamingReducer]) -> None:
        if not reducers:
            raise ValueError("SweepReducer needs at least one per-config reducer")
        self.reducers = list(reducers)

    def add(self, index: int, multi_block: Sequence) -> None:
        """Demultiplex one sweep block into every per-config reducer.

        ``multi_block`` holds one :class:`~repro.sim.kernel.\
MultiSwarmOutput` per task, each with ``outputs`` aligned with the
        sweep's config list.
        """
        for position, reducer in enumerate(self.reducers):
            reducer.add(index, [multi.outputs[position] for multi in multi_block])

    @property
    def outputs_folded(self) -> int:
        """Per-config outputs folded so far (identical across configs)."""
        return self.reducers[0].outputs_folded

    def results(self) -> List[SimulationResult]:
        """Finish every per-config reduction, in config order."""
        return [reducer.result() for reducer in self.reducers]

    def config_stats(self, mode: str) -> List[ReductionStats]:
        """Per-config :class:`ReductionStats`, in config order."""
        return [reducer.stats(mode) for reducer in self.reducers]

    def stats(self, mode: str) -> ReductionStats:
        """Sweep-aggregate stats.

        ``outputs`` and ``blocks`` count fold operations across all
        per-config reducers; ``peak_resident`` is the worst single
        reducer's reorder buffer (the number the ``workers + 1`` bound
        applies to -- every reducer sees the same block sequence, so
        peaks coincide); ``peak_resident_outputs`` sums the per-reducer
        peaks, the honest total of simultaneously buffered outputs.
        ``spill_path`` is the single log when one config spilled, or the
        logs' common directory when several did (the engine creates all
        per-config logs in one spill root), so every persistent log is
        discoverable from the stats.
        """
        per_config = self.config_stats(mode)
        spill_paths = [
            stats.spill_path for stats in per_config if stats.spill_path is not None
        ]
        if not spill_paths:
            spill_path = None
        elif len(spill_paths) == 1:
            spill_path = spill_paths[0]
        else:
            spill_path = str(Path(spill_paths[0]).parent)
        return ReductionStats(
            mode=mode,
            outputs=sum(stats.outputs for stats in per_config),
            blocks=sum(stats.blocks for stats in per_config),
            peak_resident=max(stats.peak_resident for stats in per_config),
            peak_resident_outputs=sum(
                stats.peak_resident_outputs for stats in per_config
            ),
            spill_path=spill_path,
        )


def reduce_outputs(
    outputs: Iterable["SwarmOutput"],
    *,
    delta_tau: float,
    horizon: float,
    upload_ratio: float,
    users: Optional[FootprintAccumulator] = None,
) -> SimulationResult:
    """Fold already-ordered outputs through a :class:`StreamingReducer`.

    The implementation behind :func:`repro.sim.kernel.merge_outputs`:
    one output per block, delivered in order, so the reducer never
    buffers.
    """
    from repro.sim.profiling import PROFILE

    profile = PROFILE.enabled
    if profile:
        t0 = perf_counter()
    reducer = StreamingReducer(
        delta_tau=delta_tau,
        horizon=horizon,
        upload_ratio=upload_ratio,
        users=users,
    )
    index = 0
    for output in outputs:
        reducer.add(index, (output,))
        index += 1
    result = reducer.result()
    if profile:
        PROFILE.reduce_seconds += perf_counter() - t0
    return result
