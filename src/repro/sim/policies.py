"""Swarm scoping policies: who is allowed to share with whom.

The paper restricts swarms three ways (Section IV.B.1):

* per **content item** -- only viewers of the same programme share;
* per **bitrate class** -- "the swarm ... is further split based on
  average bitrates" (a 72-inch TV cannot stream from a phone's rendition);
* per **ISP** -- "we consider ISP-friendly P2P swarming and always match
  users with other peers within the same ISP", a deliberate lower bound
  on savings.

:class:`SwarmPolicy` turns those switches into a hashable swarm key per
session.  The ablation benchmarks flip the switches to quantify what each
restriction costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.trace.events import Session

__all__ = ["SwarmKey", "SwarmPolicy", "PAPER_POLICY"]


@dataclass(frozen=True)
class SwarmKey:
    """Identity of one swarm under a scoping policy.

    Attributes:
        content_id: the programme being shared (always scoped).
        isp: ISP name, or None when cross-ISP sharing is allowed.
        bitrate_class: bitrate label, or None when bitrates mix freely.
    """

    content_id: str
    isp: Optional[str] = None
    bitrate_class: Optional[str] = None

    def sort_key(self) -> Tuple[str, str, str]:
        """A total order over swarm keys (``None`` scope fields first).

        The parallel runtime shards and reduces swarms in this canonical
        order, which is what makes results independent of trace
        ordering, backend and completion order.
        """
        return (self.content_id, self.isp or "", self.bitrate_class or "")


@dataclass(frozen=True)
class SwarmPolicy:
    """Switches controlling swarm membership.

    Attributes:
        split_by_isp: keep swarms ISP-friendly (paper default True).
        split_by_bitrate: split swarms by bitrate class (paper default
            True).
    """

    split_by_isp: bool = True
    split_by_bitrate: bool = True

    def bitrate_class(self, bitrate: float) -> str:
        """Coarse label for a bitrate (exact Mbps value).

        Sessions share a swarm only when their labels match; with the
        synthetic device mix there are four classes (0.8/1.5/3.0/5.0
        Mbps), mirroring the paper's per-bitrate split.
        """
        if bitrate <= 0:
            raise ValueError(f"bitrate must be > 0, got {bitrate!r}")
        return f"{bitrate / 1e6:.2f}Mbps"

    def key_for(self, session: Session) -> SwarmKey:
        """The swarm a session belongs to under this policy."""
        return SwarmKey(
            content_id=session.content_id,
            isp=session.isp if self.split_by_isp else None,
            bitrate_class=(
                self.bitrate_class(session.bitrate) if self.split_by_bitrate else None
            ),
        )


#: The paper's configuration: ISP-friendly, bitrate-split swarms.
PAPER_POLICY = SwarmPolicy()
