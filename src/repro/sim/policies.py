"""Swarm scoping policies: who is allowed to share with whom.

The paper restricts swarms three ways (Section IV.B.1):

* per **content item** -- only viewers of the same programme share;
* per **bitrate class** -- "the swarm ... is further split based on
  average bitrates" (a 72-inch TV cannot stream from a phone's rendition);
* per **ISP** -- "we consider ISP-friendly P2P swarming and always match
  users with other peers within the same ISP", a deliberate lower bound
  on savings.

:class:`SwarmPolicy` turns those switches into a hashable swarm key per
session.  The ablation benchmarks flip the switches to quantify what each
restriction costs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.trace.events import Session

__all__ = ["SwarmKey", "SwarmPolicy", "EpochPolicy", "PAPER_POLICY"]


@dataclass(frozen=True)
class SwarmKey:
    """Identity of one swarm under a scoping policy.

    Attributes:
        content_id: the programme being shared (always scoped).
        isp: ISP name, or None when cross-ISP sharing is allowed.
        bitrate_class: bitrate label, or None when bitrates mix freely.
        epoch: simulation epoch index under a time-scoped policy
            (:class:`EpochPolicy`), or None for the batch policies.
    """

    content_id: str
    isp: Optional[str] = None
    bitrate_class: Optional[str] = None
    epoch: Optional[int] = None

    def sort_key(self) -> Tuple[int, str, str, str]:
        """A total order over swarm keys (``None`` scope fields first).

        The parallel runtime shards and reduces swarms in this canonical
        order, which is what makes results independent of trace
        ordering, backend and completion order.  The epoch leads the
        order, so under a time-scoped policy the canonical task order
        over a whole trace is the concatenation of the per-epoch
        canonical orders -- the invariant the always-on service's
        incremental fold relies on (see :mod:`repro.sim.service`).
        """
        return (
            self.epoch if self.epoch is not None else -1,
            self.content_id,
            self.isp or "",
            self.bitrate_class or "",
        )


@dataclass(frozen=True)
class SwarmPolicy:
    """Switches controlling swarm membership.

    Attributes:
        split_by_isp: keep swarms ISP-friendly (paper default True).
        split_by_bitrate: split swarms by bitrate class (paper default
            True).
    """

    split_by_isp: bool = True
    split_by_bitrate: bool = True

    def bitrate_class(self, bitrate: float) -> str:
        """Coarse label for a bitrate (exact Mbps value).

        Sessions share a swarm only when their labels match; with the
        synthetic device mix there are four classes (0.8/1.5/3.0/5.0
        Mbps), mirroring the paper's per-bitrate split.
        """
        if bitrate <= 0:
            raise ValueError(f"bitrate must be > 0, got {bitrate!r}")
        return f"{bitrate / 1e6:.2f}Mbps"

    def key_for(self, session: Session) -> SwarmKey:
        """The swarm a session belongs to under this policy."""
        return SwarmKey(
            content_id=session.content_id,
            isp=session.isp if self.split_by_isp else None,
            bitrate_class=(
                self.bitrate_class(session.bitrate) if self.split_by_bitrate else None
            ),
        )


@dataclass(frozen=True)
class EpochPolicy:
    """A base policy additionally scoped to fixed-length time epochs.

    Sessions only share a swarm when they belong to the same epoch --
    the bounded simulation windows the always-on service closes one by
    one (:mod:`repro.sim.service`).  A session's epoch is determined by
    its **start** time (``floor(start / epoch_seconds)``); a session
    that runs past its epoch boundary stays in the swarm it joined, so
    epoch membership is a pure function of the session and never
    depends on how the stream was chunked.

    Because :meth:`SwarmKey.sort_key` leads with the epoch, the
    canonical task order of a batch run under this policy is
    epoch-major: exactly the order in which the service folds epochs as
    it closes them, which is what makes the service's cumulative result
    bit-for-bit equal to the batch run over the same trace.

    Attributes:
        base: the underlying scoping policy (content/ISP/bitrate).
        epoch_seconds: epoch length in simulated seconds.
    """

    base: SwarmPolicy
    epoch_seconds: float

    #: Marks keys as time-dependent: grouping strategies must recompute
    #: the key per session instead of only when the raw content/ISP/
    #: bitrate fields change (see ``ExternalGrouping.plan``).
    time_scoped = True

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0:
            raise ValueError(
                f"epoch_seconds must be > 0, got {self.epoch_seconds!r}"
            )

    def epoch_of(self, start: float) -> int:
        """The epoch index owning a session that starts at ``start``."""
        return int(start // self.epoch_seconds)

    def epoch_bounds(self, epoch: int) -> Tuple[float, float]:
        """The ``[start, end)`` time interval of one epoch."""
        return (epoch * self.epoch_seconds, (epoch + 1) * self.epoch_seconds)

    def key_for(self, session: Session) -> SwarmKey:
        """The base policy's key, stamped with the session's epoch."""
        return replace(
            self.base.key_for(session), epoch=self.epoch_of(session.start)
        )


#: The paper's configuration: ISP-friendly, bitrate-split swarms.
PAPER_POLICY = SwarmPolicy()
