"""Seeded, deterministic fault injection for the distributed stack.

The distributed backend (:mod:`repro.sim.queue` / :mod:`repro.sim.worker`
/ :mod:`repro.sim.backends`), the always-on service
(:mod:`repro.sim.service`) and the binary session store
(:mod:`repro.trace.store`) all claim crash-safety on shared storage.
This module is how those claims are *tested systematically* instead of
by hand-placed SIGKILLs: every filesystem and clock primitive the stack
touches goes through a swappable :class:`Storage` facade, and a
:class:`FaultPlan` -- a seeded schedule of named **fault sites** firing
the failures a real shared-filesystem fleet sees -- can be installed to
make any of those primitives misbehave deterministically.

Fault kinds (:data:`FAULT_KINDS`):

* ``eio`` -- the primitive raises ``OSError(EIO)`` before doing anything.
* ``enospc`` -- likewise with ``ENOSPC`` (disk full).
* ``torn`` -- a write persists only a prefix of its payload, then raises
  (a torn write); a read returns a short buffer.
* ``hide`` -- an *observation* (``exists`` / ``listdir``) reports the
  previous state: the file is there, the observer does not see it yet.
  This is the NFS-ish "rename done but not yet visible to the other
  host" case.
* ``skew`` -- a clock read (storage-probe mtime) is offset by
  ``FaultRule.skew`` seconds.
* ``crash`` -- the process dies at a labeled point
  (:func:`crash_point`): ``os._exit`` for subprocess workers
  (indistinguishable from SIGKILL), or an :class:`InjectedCrash` raise
  for in-process harnesses.

Determinism: each ``(rule, site)`` pair owns an independent decision
stream seeded from ``(plan.seed, rule index, site)``, consumed once per
invocation of the site.  The *n*-th invocation of a site therefore
always gets the same decision for a given seed -- in any process, on
any host -- so an exact failure history is replayable from its seed
alone.  Plans serialize to JSON and cross process boundaries through
the :data:`PLAN_ENV_VAR` environment variable (spawned workers install
the plan at startup; ``REPRO_FAULT_SALT`` perturbs the seed per worker
so a fleet does not fail in lockstep).

The facade is a single module-global (:func:`storage`); with no plan
installed it is a plain passthrough to ``os`` -- one attribute lookup
and one call of overhead, nothing else.

Retry policy: :func:`retrying` is the bounded-exponential-backoff
primitive the queue and service use around *transient* storage errors
(:data:`TRANSIENT_ERRNOS`: EIO, ENOSPC, EAGAIN, EBUSY, EINTR,
ETIMEDOUT, ESTALE, EDQUOT -- never ENOENT, which is how rename races
lose, and losing a race is protocol, not failure).  Backoff jitter is
*deterministic* (hashed from the site name and attempt number), so a
retried failure history replays exactly like the original.
"""

from __future__ import annotations

import errno
import fnmatch
import hashlib
import json
import logging
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

__all__ = [
    "FAULT_KINDS",
    "PLAN_ENV_VAR",
    "SALT_ENV_VAR",
    "INJECTED_CRASH_EXIT_CODE",
    "TRANSIENT_ERRNOS",
    "FaultRule",
    "FaultPlan",
    "InjectedCrash",
    "RetryPolicy",
    "Storage",
    "FaultyStorage",
    "active_plan",
    "chaos_plan",
    "crash_point",
    "injected",
    "install",
    "install_from_env",
    "is_transient",
    "retrying",
    "storage",
    "uninstall",
]

logger = logging.getLogger(__name__)

#: Every fault kind a :class:`FaultRule` may carry.
FAULT_KINDS = ("eio", "enospc", "torn", "hide", "skew", "crash")

#: Environment variable carrying a JSON fault plan into worker
#: subprocesses (either the JSON itself, or ``@/path/to/plan.json``).
PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: Optional companion variable: a per-process salt mixed into the plan
#: seed, so every worker of a fleet sees a *different* (but still
#: deterministic) decision stream instead of failing in lockstep.
SALT_ENV_VAR = "REPRO_FAULT_SALT"

#: Exit status of a process killed by an injected ``crash`` fault in
#: ``exit`` mode -- distinct from every deliberate worker exit code.
INJECTED_CRASH_EXIT_CODE = 86

#: OS errors worth retrying: the storage hiccups a shared-filesystem
#: fleet sees and survives.  ENOENT is deliberately absent -- a missing
#: source is how atomic-rename races *lose*, and losing is protocol.
TRANSIENT_ERRNOS = frozenset(
    code
    for code in (
        errno.EIO,
        errno.ENOSPC,
        errno.EAGAIN,
        errno.EBUSY,
        errno.EINTR,
        errno.ETIMEDOUT,
        getattr(errno, "ESTALE", None),
        getattr(errno, "EDQUOT", None),
    )
    if code is not None
)


class InjectedCrash(BaseException):
    """An injected crash in ``raise`` mode.

    Subclasses :class:`BaseException` so no ``except Exception`` path in
    the stack under test can accidentally swallow the "process death" --
    in-process chaos harnesses catch it where a supervisor would respawn
    the worker.
    """


def is_transient(error: BaseException) -> bool:
    """Whether an ``OSError`` is worth retrying (see the retry policy)."""
    return (
        isinstance(error, OSError) and error.errno in TRANSIENT_ERRNOS
    )


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault plan: *where*, *what*, and *when*.

    Attributes:
        site: fault-site pattern, matched against site names with
            :func:`fnmatch.fnmatchcase` (so ``"queue.*"`` covers every
            queue primitive).
        kind: one of :data:`FAULT_KINDS`.
        prob: per-invocation firing probability, drawn from the rule's
            deterministic per-site stream.  Ignored when ``at`` is set.
        at: explicit 0-based invocation indices that fire (exact
            scheduling for regression tests).
        limit: maximum total fires for this rule (None: unbounded).
            Transient-error rules should stay below the retry budget so
            injected hiccups are survivable by construction.
        skew: clock offset in seconds (``kind="skew"``).
        keep_fraction: prefix fraction a torn write persists / a torn
            read returns (``kind="torn"``).
        crash_mode: ``"exit"`` (``os._exit``, subprocess workers) or
            ``"raise"`` (:class:`InjectedCrash`, in-process harnesses).
    """

    site: str
    kind: str
    prob: float = 1.0
    at: Tuple[int, ...] = ()
    limit: Optional[int] = None
    skew: float = 0.0
    keep_fraction: float = 0.5
    crash_mode: str = "exit"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob!r}")
        if not 0.0 <= self.keep_fraction <= 1.0:
            raise ValueError(
                f"keep_fraction must be in [0, 1], got {self.keep_fraction!r}"
            )
        if self.crash_mode not in ("exit", "raise"):
            raise ValueError(
                f"crash_mode must be 'exit' or 'raise', got {self.crash_mode!r}"
            )
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit!r}")

    def to_payload(self) -> Dict[str, object]:
        """This rule as a JSON-able dict (see :meth:`from_payload`)."""
        return {
            "site": self.site,
            "kind": self.kind,
            "prob": self.prob,
            "at": list(self.at),
            "limit": self.limit,
            "skew": self.skew,
            "keep_fraction": self.keep_fraction,
            "crash_mode": self.crash_mode,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FaultRule":
        """Rebuild a rule from :meth:`to_payload` output."""
        return cls(
            site=str(payload["site"]),
            kind=str(payload["kind"]),
            prob=float(payload.get("prob", 1.0)),
            at=tuple(int(i) for i in payload.get("at", ())),
            limit=(
                None
                if payload.get("limit") is None
                else int(payload["limit"])  # type: ignore[arg-type]
            ),
            skew=float(payload.get("skew", 0.0)),
            keep_fraction=float(payload.get("keep_fraction", 0.5)),
            crash_mode=str(payload.get("crash_mode", "exit")),
        )


class FaultPlan:
    """A seeded, replayable schedule of fault-site decisions.

    Thread-safe: worker threads, lease renewers and the coordinator may
    all consult the plan concurrently; each ``(rule, site)`` pair's
    decision stream is still consumed in a single deterministic order
    per site.
    """

    def __init__(self, seed: int, rules: Tuple[FaultRule, ...] = ()) -> None:
        self.seed = int(seed)
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        #: Every fault actually fired: ``(site, kind, invocation)``
        #: triples in firing order -- the replayable failure history.
        self.fired: List[Tuple[str, str, int]] = []
        self._lock = threading.Lock()
        self._streams: Dict[Tuple[int, str], random.Random] = {}
        self._counts: Dict[Tuple[int, str], int] = {}
        self._rule_fires: Dict[int, int] = {}

    def _stream(self, rule_index: int, site: str) -> random.Random:
        key = (rule_index, site)
        stream = self._streams.get(key)
        if stream is None:
            digest = hashlib.blake2b(
                f"{self.seed}:{rule_index}:{site}".encode("utf-8"),
                digest_size=8,
            ).digest()
            stream = self._streams[key] = random.Random(
                int.from_bytes(digest, "little")
            )
        return stream

    def decide(self, site: str) -> Optional[FaultRule]:
        """The rule firing at this invocation of ``site``, if any.

        Every matching rule's stream and invocation counter advance on
        every call (fire or not), so decisions depend only on the
        site's own invocation count -- never on what other sites did.
        """
        hit: Optional[FaultRule] = None
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not fnmatch.fnmatchcase(site, rule.site):
                    continue
                key = (index, site)
                count = self._counts.get(key, 0)
                self._counts[key] = count + 1
                draw = self._stream(index, site).random()
                if (
                    rule.limit is not None
                    and self._rule_fires.get(index, 0) >= rule.limit
                ):
                    continue
                fires = count in rule.at if rule.at else draw < rule.prob
                if fires and hit is None:
                    self._rule_fires[index] = (
                        self._rule_fires.get(index, 0) + 1
                    )
                    self.fired.append((site, rule.kind, count))
                    hit = rule
        return hit

    # -- serialization (environment handoff to worker subprocesses) ----

    def to_json(self) -> str:
        """Serialize the plan (rules + seed) for env-var shipping."""
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [rule.to_payload() for rule in self.rules],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output; decision streams start fresh.
        """
        data = json.loads(payload)
        return cls(
            seed=int(data["seed"]),
            rules=tuple(
                FaultRule.from_payload(entry) for entry in data["rules"]
            ),
        )

    def with_salt(self, salt: str) -> "FaultPlan":
        """The same rules under a seed perturbed by ``salt``.

        Gives each worker of a fleet its own (deterministic) decision
        streams, so injected faults land scattered across the fleet
        instead of striking every process at the same instruction.
        """
        digest = hashlib.blake2b(
            f"{self.seed}:{salt}".encode("utf-8"), digest_size=8
        ).digest()
        return FaultPlan(
            seed=int.from_bytes(digest, "little"), rules=self.rules
        )


#: The menu :func:`chaos_plan` draws from: (site, kind, overrides).
#: Transient-error rules are capped below the retry budget, crash and
#: visibility rules are bounded, so every generated plan is survivable
#: by construction -- the soak asserts the stack actually survives it.
_CHAOS_MENU: Tuple[Tuple[str, str, Dict[str, object]], ...] = (
    ("queue.put", "enospc", {"prob": 0.1, "limit": 3}),
    ("queue.put", "eio", {"prob": 0.1, "limit": 3}),
    ("queue.spec", "eio", {"at": (0,), "limit": 1}),
    ("queue.result", "torn", {"prob": 0.15, "limit": 3}),
    ("queue.result", "enospc", {"prob": 0.15, "limit": 3}),
    ("queue.claim_rename", "eio", {"prob": 0.1, "limit": 4}),
    ("queue.ack_rename", "eio", {"prob": 0.15, "limit": 4}),
    ("queue.requeue_rename", "eio", {"prob": 0.2, "limit": 3}),
    ("queue.scan_pending", "hide", {"prob": 0.1, "limit": 5}),
    ("queue.result_visible", "hide", {"prob": 0.3, "limit": 4}),
    ("queue.fs_now", "skew", {"at": (1, 3), "limit": 2, "skew": 45.0}),
    ("queue.fs_now", "skew", {"at": (2,), "limit": 1, "skew": -45.0}),
    ("queue.fs_now", "eio", {"prob": 0.2, "limit": 3}),
    ("queue.compact", "torn", {"at": (0,), "limit": 1}),
    ("store.pread", "eio", {"prob": 0.05, "limit": 4}),
    ("store.pread", "torn", {"prob": 0.05, "limit": 4}),
    ("lease.renew", "eio", {"prob": 0.2, "limit": 4}),
    ("sink.append", "torn", {"at": (0,), "limit": 1}),
    ("sink.append", "enospc", {"prob": 0.2, "limit": 3}),
    ("checkpoint.save", "enospc", {"prob": 0.2, "limit": 3}),
    ("worker.claimed", "crash", {"at": (1,), "limit": 1}),
    ("queue.ack.crash", "crash", {"at": (1,), "limit": 1}),
    ("service.emitted", "crash", {"at": (1,), "limit": 1}),
)


def chaos_plan(seed: int, *, crash_mode: str = "raise") -> FaultPlan:
    """A deterministic mixed fault plan derived entirely from ``seed``.

    Picks 3-6 distinct-site rules from the chaos menu (at most one rule
    per site, so no site can out-fire the retry budget), stamping crash
    rules with ``crash_mode``.  Same seed, same plan, same failure
    history -- the chaos soak's unit of replay.
    """
    picker = random.Random(seed)
    chosen: Dict[str, FaultRule] = {}
    menu = list(_CHAOS_MENU)
    picker.shuffle(menu)
    target = picker.randint(3, 6)
    for site, kind, overrides in menu:
        if len(chosen) >= target:
            break
        if site in chosen:
            continue
        extra = dict(overrides)
        if kind == "crash":
            extra["crash_mode"] = crash_mode
        chosen[site] = FaultRule(site=site, kind=kind, **extra)  # type: ignore[arg-type]
    return FaultPlan(seed=seed, rules=tuple(chosen.values()))


# ----------------------------------------------------------------------
# Retry with deterministic jitter
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient storage errors.

    ``attempts`` counts total tries (so ``attempts - 1`` retries);
    delays grow ``base_delay * factor**n`` capped at ``max_delay``,
    scaled by a deterministic jitter in [0.5, 1.5) hashed from the
    fault-site name and attempt number -- replays back off exactly like
    the original run.
    """

    attempts: int = 6
    base_delay: float = 0.02
    max_delay: float = 2.0
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor!r}")


#: The default policy every retried primitive uses (tests may swap it).
RETRY_POLICY = RetryPolicy()


def _jitter(site: str, attempt: int) -> float:
    digest = hashlib.blake2b(
        f"{site}:{attempt}".encode("utf-8"), digest_size=4
    ).digest()
    return 0.5 + int.from_bytes(digest, "little") / 0xFFFFFFFF


def retrying(
    site: str,
    operation: Callable[[], object],
    *,
    policy: Optional[RetryPolicy] = None,
    classify: Callable[[BaseException], bool] = is_transient,
    on_retry: Optional[Callable[[BaseException], None]] = None,
):
    """Run ``operation``, retrying transient ``OSError`` failures.

    Non-transient errors (and transient ones past the attempt budget)
    propagate unchanged.  ``on_retry`` runs before each retry -- the
    hook callers use to repair partial state a torn write left behind.
    Every retry is logged at debug level with the fault-site name, so
    injected (and real) storage hiccups are attributable.
    """
    policy = policy if policy is not None else RETRY_POLICY
    attempt = 0
    while True:
        try:
            return operation()
        except OSError as error:
            attempt += 1
            if attempt >= policy.attempts or not classify(error):
                raise
            delay = min(
                policy.max_delay,
                policy.base_delay * policy.factor ** (attempt - 1),
            ) * _jitter(site, attempt)
            logger.debug(
                "fault site %s: transient error (%s); retry %d/%d in %.3fs",
                site,
                error,
                attempt,
                policy.attempts - 1,
                delay,
            )
            if on_retry is not None:
                on_retry(error)
            if delay > 0:
                time.sleep(delay)


# ----------------------------------------------------------------------
# The storage facade
# ----------------------------------------------------------------------


class Storage:
    """Passthrough facade over the fs/clock primitives the stack uses.

    Every method takes a ``site`` keyword naming the fault site (see the
    README's fault-model table); the base class ignores it entirely, so
    with no plan installed the facade costs one call of indirection.
    """

    def rename(self, source, target, *, site: str = "fs.rename") -> None:
        """``os.rename`` -- atomic within one filesystem."""
        os.rename(source, target)

    def replace(self, source, target, *, site: str = "fs.replace") -> None:
        """``os.replace`` -- atomic, overwriting rename."""
        os.replace(source, target)

    def utime(self, path, *, site: str = "fs.utime") -> None:
        """Touch ``path``'s mtime to now (the lease-renewal primitive)."""
        os.utime(path)

    def touch(self, path, *, site: str = "fs.touch") -> None:
        """Create ``path`` (or update its mtime) like ``Path.touch``."""
        Path(path).touch()

    def unlink(
        self, path, *, missing_ok: bool = False, site: str = "fs.unlink"
    ) -> None:
        """Delete ``path``; ``missing_ok`` mirrors ``Path.unlink``."""
        Path(path).unlink(missing_ok=missing_ok)

    def exists(self, path, *, site: str = "fs.exists") -> bool:
        """``os.path.exists`` -- an *observation*, maskable by ``hide`` faults.
        """
        return os.path.exists(path)

    def listdir(self, path, *, site: str = "fs.listdir") -> List[str]:
        """``os.listdir`` -- an *observation*, maskable by ``hide`` faults."""
        return os.listdir(path)

    def mtime(self, path, *, site: str = "fs.mtime") -> float:
        """Read ``path``'s mtime (the lease clock; skewable under faults)."""
        return os.stat(path).st_mtime

    def pread(
        self, fd: int, length: int, offset: int, *, site: str = "fs.pread"
    ) -> bytes:
        """``os.pread`` -- positional read, tearable under faults."""
        return os.pread(fd, length, offset)

    def write(self, handle, data: bytes, *, site: str = "fs.write") -> None:
        """``handle.write(data)`` -- tearable under faults."""
        handle.write(data)

    def crash_point(self, label: str) -> None:
        """A labeled point a ``crash`` fault may kill the process at."""


class FaultyStorage(Storage):
    """The facade with a :class:`FaultPlan` deciding every call."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    # -- fault dispatch -------------------------------------------------

    def _crash(self, rule: FaultRule, site: str) -> None:
        logger.warning("injected crash at %s (%s)", site, rule.crash_mode)
        if rule.crash_mode == "raise":
            raise InjectedCrash(site)
        os._exit(INJECTED_CRASH_EXIT_CODE)

    def _raise(self, rule: FaultRule, site: str) -> None:
        """Raise the rule's error (kinds a primitive can't express map
        to EIO, so a mis-targeted rule still injects *something*)."""
        if rule.kind == "crash":
            self._crash(rule, site)
        if rule.kind == "enospc":
            raise OSError(
                errno.ENOSPC, f"injected ENOSPC at fault site {site}"
            )
        raise OSError(errno.EIO, f"injected EIO at fault site {site}")

    def _error_fault(self, site: str) -> None:
        """For primitives where only error/crash kinds make sense."""
        rule = self.plan.decide(site)
        if rule is not None and rule.kind not in ("hide", "skew"):
            self._raise(rule, site)

    # -- primitives -----------------------------------------------------

    def rename(self, source, target, *, site: str = "fs.rename") -> None:
        """Rename, after consulting the plan for error faults."""
        self._error_fault(site)
        os.rename(source, target)

    def replace(self, source, target, *, site: str = "fs.replace") -> None:
        """Replace, after consulting the plan for error faults."""
        self._error_fault(site)
        os.replace(source, target)

    def utime(self, path, *, site: str = "fs.utime") -> None:
        """Lease-renewal touch, after consulting the plan for error faults."""
        self._error_fault(site)
        os.utime(path)

    def touch(self, path, *, site: str = "fs.touch") -> None:
        """Touch, after consulting the plan for error faults."""
        self._error_fault(site)
        Path(path).touch()

    def unlink(
        self, path, *, missing_ok: bool = False, site: str = "fs.unlink"
    ) -> None:
        """Unlink, after consulting the plan for error faults."""
        self._error_fault(site)
        Path(path).unlink(missing_ok=missing_ok)

    def exists(self, path, *, site: str = "fs.exists") -> bool:
        """Existence probe; a ``hide`` rule answers False without looking."""
        rule = self.plan.decide(site)
        if rule is not None:
            if rule.kind == "hide":
                logger.debug("fault site %s: hiding %s", site, path)
                return False
            if rule.kind != "skew":
                self._raise(rule, site)
        return os.path.exists(path)

    def listdir(self, path, *, site: str = "fs.listdir") -> List[str]:
        """Directory listing; a ``hide`` rule answers [] without looking."""
        rule = self.plan.decide(site)
        if rule is not None:
            if rule.kind == "hide":
                logger.debug("fault site %s: hiding listing of %s", site, path)
                return []
            if rule.kind != "skew":
                self._raise(rule, site)
        return os.listdir(path)

    def mtime(self, path, *, site: str = "fs.mtime") -> float:
        """Mtime read; a ``skew`` rule offsets the storage clock."""
        rule = self.plan.decide(site)
        if rule is not None:
            if rule.kind == "skew":
                logger.debug(
                    "fault site %s: skewing clock by %+.1fs", site, rule.skew
                )
                return os.stat(path).st_mtime + rule.skew
            self._raise(rule, site)
        return os.stat(path).st_mtime

    def pread(
        self, fd: int, length: int, offset: int, *, site: str = "fs.pread"
    ) -> bytes:
        """Positional read; a ``torn`` rule returns a short prefix."""
        rule = self.plan.decide(site)
        if rule is not None:
            if rule.kind == "torn":
                keep = int(length * rule.keep_fraction)
                logger.debug(
                    "fault site %s: torn read (%d of %d bytes)",
                    site, keep, length,
                )
                return os.pread(fd, keep, offset)
            if rule.kind not in ("hide", "skew"):
                self._raise(rule, site)
        return os.pread(fd, length, offset)

    def write(self, handle, data: bytes, *, site: str = "fs.write") -> None:
        """Write; a ``torn`` rule writes a prefix then raises EIO."""
        rule = self.plan.decide(site)
        if rule is not None:
            if rule.kind == "torn":
                keep = int(len(data) * rule.keep_fraction)
                logger.debug(
                    "fault site %s: torn write (%d of %d bytes)",
                    site, keep, len(data),
                )
                handle.write(data[:keep])
                raise OSError(
                    errno.EIO, f"injected torn write at fault site {site}"
                )
            if rule.kind not in ("hide", "skew"):
                self._raise(rule, site)
        handle.write(data)

    def crash_point(self, label: str) -> None:
        """Die here (``os._exit`` or raise) when a ``crash`` rule fires."""
        rule = self.plan.decide(label)
        if rule is not None and rule.kind == "crash":
            self._crash(rule, label)


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------

_DEFAULT_STORAGE = Storage()
_STORAGE: Storage = _DEFAULT_STORAGE


def storage() -> Storage:
    """The active storage facade (passthrough unless a plan is live)."""
    return _STORAGE


def active_plan() -> Optional[FaultPlan]:
    """The installed fault plan, or None."""
    return _STORAGE.plan if isinstance(_STORAGE, FaultyStorage) else None


def install(plan: FaultPlan) -> FaultPlan:
    """Install a plan process-wide; returns it for chaining."""
    global _STORAGE
    _STORAGE = FaultyStorage(plan)
    logger.info(
        "fault plan installed: seed=%d, %d rule(s)", plan.seed, len(plan.rules)
    )
    return plan


def uninstall() -> None:
    """Restore the passthrough facade."""
    global _STORAGE
    _STORAGE = _DEFAULT_STORAGE


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with injected(plan):`` -- install for a scope, always restore."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def install_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[FaultPlan]:
    """Install the plan :data:`PLAN_ENV_VAR` carries, if any.

    Worker subprocesses call this at startup, so a coordinator (or a
    chaos benchmark) injects faults into an entire fleet by exporting
    one variable.  A value starting with ``@`` names a JSON file; the
    optional :data:`SALT_ENV_VAR` perturbs the seed per process.
    """
    environ = environ if environ is not None else os.environ
    raw = environ.get(PLAN_ENV_VAR)
    if not raw:
        return None
    if raw.startswith("@"):
        raw = Path(raw[1:]).read_text(encoding="utf-8")
    plan = FaultPlan.from_json(raw)
    salt = environ.get(SALT_ENV_VAR)
    if salt:
        plan = plan.with_salt(salt)
    return install(plan)


def crash_point(label: str) -> None:
    """Mark a labeled point an installed plan may crash the process at."""
    _STORAGE.crash_point(label)
