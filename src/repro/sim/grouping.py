"""Grouping strategies: how a session stream becomes swarm tasks.

``run_stream``'s "never materialize the trace" promise used to end at
the grouping step: :func:`~repro.sim.kernel.build_tasks` held every
per-swarm session list in the coordinator while partitioning the
stream, so coordinator memory stayed O(sessions) no matter how bounded
the reduction was.  This module makes grouping pluggable:

* :class:`MemoryGrouping` (``grouping="memory"``, the default) -- the
  historical dict-of-lists grouping, unchanged results, O(sessions)
  coordinator memory.  Right for laptop-scale traces.
* :class:`ExternalGrouping` (``grouping="external"``) -- out-of-core
  grouping by external merge-sort (:mod:`repro.trace.store`):
  sessions spill to sorted runs of at most ``run_sessions`` each, the
  runs k-way merge into one globally sorted shard file keyed by
  ``(SwarmKey.sort_key, start, session_id)``, and a
  :class:`~repro.trace.store.ShardManifest` maps each swarm to its
  ``(file, offset, length)`` extent.  Coordinator grouping memory is
  O(``run_sessions``), independent of trace size.

Both strategies produce a :class:`TaskPlan` -- the lazy interface
backends consume instead of a materialized task list.  A plan knows its
task count and per-task session counts (for shard balancing), can
iterate :class:`~repro.sim.kernel.SwarmTask` values lazily, and
exposes picklable *task refs* for shipping to worker processes:

* a memory plan's refs are the tasks themselves (sessions and all);
* an external plan's refs are :class:`ExtentTaskRef` values -- just
  ``(path, index, count, key, horizon)`` -- and the worker opens the
  shard file and decodes its own sessions
  (:func:`repro.trace.store.shared_reader`), eliminating the
  coordinator -> worker session-pickling hot path.

Determinism: the external sort key extends the canonical task order
(sorted swarm key, then ``(start, session_id)`` within a swarm) to a
total order over sessions, and the sort/merge is deterministic, so both
strategies yield *identical* task sequences -- every backend x
reduction mode is bit-for-bit equal under either grouping.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.sim.kernel import SwarmTask, build_tasks
from repro.sim.policies import SwarmKey, SwarmPolicy
from repro.trace.events import Session
from repro.trace.store import (
    STORE_VERSION,
    Extent,
    ExternalSessionSorter,
    SessionColumns,
    ShardManifest,
    StoreWriter,
    evict_reader,
    load_manifest,
    save_manifest,
    shared_reader,
)

__all__ = [
    "GROUPING_MODES",
    "GroupingStats",
    "TaskPlan",
    "MemoryTaskPlan",
    "ExternalTaskPlan",
    "ExtentTaskRef",
    "GroupingStrategy",
    "MemoryGrouping",
    "ExternalGrouping",
    "plan_handoff",
    "resolve_grouping",
    "as_task_plan",
]

#: Selectable grouping modes -- the single source of truth consumed by
#: ``SimulationConfig`` validation and the CLI's ``--grouping`` choices.
GROUPING_MODES = ("memory", "external")


@dataclass(frozen=True)
class GroupingStats:
    """What one grouping pass actually did, for benchmarks and tests.

    Attributes:
        mode: one of :data:`GROUPING_MODES`.
        tasks: swarm tasks produced.
        sessions: sessions grouped.
        peak_buffered_sessions: most sessions ever resident in the
            coordinator during grouping.  Memory grouping reports the
            full session count (everything is resident by
            construction); external grouping is bounded by its
            ``run_sessions`` buffer no matter the trace size -- the
            number benchmarks assert flatness of.
        runs_spilled: sorted runs written to disk (external only).
        shard_path: the sorted shard file (external only; ``None``
            after a temporary shard directory is cleaned up).
        cache_hit: whether this plan came from the content-addressed
            shard cache (``True``: the manifest was reused and the
            session stream was **never consumed** -- no re-sort, no
            re-write; ``False``: the cache was consulted and populated;
            ``None``: caching was not in play -- no cache token, or no
            persistent ``shard_dir``).
    """

    mode: str
    tasks: int
    sessions: int
    peak_buffered_sessions: int
    runs_spilled: int = 0
    shard_path: Optional[str] = None
    cache_hit: Optional[bool] = None


@dataclass(frozen=True)
class ExtentTaskRef:
    """A picklable handle to one swarm task stored in a shard file.

    The unit of zero-copy handoff: five scalar-ish fields instead of a
    pickled tuple of thousands of sessions.  Workers resolve the ref by
    opening the (immutable) shard file through the per-process reader
    cache and decoding only their own byte extent.
    """

    path: str
    index: int
    count: int
    key: "SwarmKey"
    horizon: float

    @property
    def num_sessions(self) -> int:
        """Session count (for shard balancing without decoding)."""
        return self.count

    def materialize(self) -> SwarmTask:
        """Decode the task's sessions from the shard file."""
        sessions = shared_reader(self.path).read_range(self.index, self.count)
        return SwarmTask(
            key=self.key, sessions=tuple(sessions), horizon=self.horizon
        )

    def read_raw(self) -> bytes:
        """The extent's raw 56 B records, validated, straight off disk.

        The zero-object handoff: the compiled fused decoder
        (``_ckernel.decode_build``) parses these bytes directly into
        packed schedule columns -- no ``Session`` objects anywhere.
        """
        return shared_reader(self.path).read_raw_range(self.index, self.count)

    def read_columns(self) -> "SessionColumns":
        """The extent decoded into typed columns (pure-python path)."""
        return shared_reader(self.path).read_columns(self.index, self.count)


class TaskPlan(ABC):
    """A lazily consumable, canonically ordered set of swarm tasks.

    The contract between grouping strategies and execution backends:
    the plan knows how many tasks exist and how many sessions each
    carries (so backends can balance shards without decoding anything),
    yields tasks lazily in canonical order, and hands out cheap
    picklable refs for cross-process shipping.
    """

    @abstractmethod
    def __len__(self) -> int:
        """Number of swarm tasks."""

    @property
    @abstractmethod
    def session_counts(self) -> Sequence[int]:
        """Per-task session counts, aligned with task order."""

    @abstractmethod
    def iter_tasks(self) -> Iterator[SwarmTask]:
        """Yield every task in canonical order, decoding lazily."""

    @abstractmethod
    def refs(self) -> Sequence[object]:
        """Picklable per-task refs (tasks themselves, or extent refs)."""

    @abstractmethod
    def stats(self) -> GroupingStats:
        """How this plan was built (see :class:`GroupingStats`)."""

    def cleanup(self) -> None:
        """Release any resources the plan owns (temp shards, readers)."""


class MemoryTaskPlan(TaskPlan):
    """The materialized plan: a list of fully resident tasks."""

    def __init__(
        self, tasks: Sequence[SwarmTask], peak_buffered: Optional[int] = None
    ) -> None:
        self._tasks = list(tasks)
        self._counts = [len(task.sessions) for task in self._tasks]
        self._peak = (
            peak_buffered if peak_buffered is not None else sum(self._counts)
        )

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def session_counts(self) -> Sequence[int]:
        return self._counts

    def iter_tasks(self) -> Iterator[SwarmTask]:
        return iter(self._tasks)

    def refs(self) -> Sequence[SwarmTask]:
        return self._tasks

    def stats(self) -> GroupingStats:
        return GroupingStats(
            mode="memory",
            tasks=len(self._tasks),
            sessions=sum(self._counts),
            peak_buffered_sessions=self._peak,
        )


class ExternalTaskPlan(TaskPlan):
    """A plan backed by a sorted shard file and its manifest.

    Holds only the manifest (one small :class:`~repro.trace.store.\
    Extent` per swarm); sessions are decoded on demand --
    :meth:`iter_tasks` one extent at a time in the coordinator, or
    worker-side via the :class:`ExtentTaskRef` values :meth:`refs`
    exposes.  When the plan owns its shard directory (the engine's
    run-scoped temporary default), :meth:`cleanup` deletes it.
    """

    def __init__(
        self,
        manifest: ShardManifest,
        *,
        runs_spilled: int = 0,
        peak_buffered: int = 0,
        owned_dir: Optional[Path] = None,
        cache_hit: Optional[bool] = None,
    ) -> None:
        self.manifest = manifest
        self._counts = [extent.count for extent in manifest.extents]
        self._runs_spilled = runs_spilled
        self._peak = peak_buffered
        self._owned_dir = owned_dir
        self._cache_hit = cache_hit
        self._removed = False

    def __len__(self) -> int:
        return len(self.manifest.extents)

    @property
    def session_counts(self) -> Sequence[int]:
        return self._counts

    def iter_tasks(self) -> Iterator[SwarmTask]:
        for ref in self.refs():
            yield ref.materialize()

    def refs(self) -> List[ExtentTaskRef]:
        manifest = self.manifest
        return [
            ExtentTaskRef(
                path=manifest.path,
                index=extent.index,
                count=extent.count,
                key=extent.key,  # type: ignore[arg-type] - grouping stores SwarmKeys
                horizon=manifest.horizon,
            )
            for extent in manifest.extents
        ]

    def stats(self) -> GroupingStats:
        return GroupingStats(
            mode="external",
            tasks=len(self),
            sessions=sum(self._counts),
            peak_buffered_sessions=self._peak,
            runs_spilled=self._runs_spilled,
            # A removed temporary shard must not be advertised; an
            # explicit shard_dir's shard survives cleanup and is.
            shard_path=None if self._removed else self.manifest.path,
            cache_hit=self._cache_hit,
        )

    def cleanup(self) -> None:
        """Evict the cached reader; delete the shard dir if owned."""
        evict_reader(self.manifest.path)
        if self._owned_dir is not None and not self._removed:
            shutil.rmtree(self._owned_dir, ignore_errors=True)
            self._removed = True


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


class GroupingStrategy(ABC):
    """How a session stream is partitioned into a :class:`TaskPlan`."""

    #: Stable identifier, usable as ``SimulationConfig(grouping=...)``.
    name: str = "abstract"

    #: Whether :meth:`plan` can reuse content-addressed cache entries
    #: (checked by the engine before paying for a trace fingerprint).
    supports_cache: bool = False

    @abstractmethod
    def plan(
        self,
        sessions: Iterable[Session],
        horizon: float,
        policy: SwarmPolicy,
        cache_token: Optional[str] = None,
    ) -> TaskPlan:
        """Consume the stream once; return the canonical task plan.

        Args:
            sessions: the session stream (any order).
            horizon: trace length in seconds.
            policy: the swarm scoping policy.
            cache_token: optional content fingerprint of the stream
                (e.g. :func:`repro.trace.store.trace_fingerprint`).
                Strategies with a persistent shard store may use it to
                return a cached plan **without consuming the stream**;
                strategies without a cache ignore it.

        Raises:
            ValueError: if ``horizon <= 0`` or a session ends after it
                (the same contract as
                :func:`~repro.sim.kernel.build_tasks`).
        """


class MemoryGrouping(GroupingStrategy):
    """Group in coordinator memory (the historical ``build_tasks``)."""

    name = "memory"

    def plan(
        self,
        sessions: Iterable[Session],
        horizon: float,
        policy: SwarmPolicy,
        cache_token: Optional[str] = None,
    ) -> TaskPlan:
        return MemoryTaskPlan(build_tasks(sessions, horizon, policy))


class ExternalGrouping(GroupingStrategy):
    """Group out-of-core via external merge-sort, with a shard cache.

    Args:
        shard_dir: where run files, the sorted shard and its manifest
            live.  ``None`` (the default) uses a run-scoped temporary
            directory that the plan deletes on cleanup; an explicit
            directory keeps ``shard.store`` for out-of-core consumers
            **and enables the content-addressed cache**.
        run_sessions: sort-buffer size -- the coordinator's peak
            resident session count during grouping.  Smaller bounds
            memory tighter at the cost of more spilled runs.

    The cache: with a persistent ``shard_dir`` and a caller-supplied
    ``cache_token`` (a :func:`repro.trace.store.trace_fingerprint` of
    the stream), each distinct (trace fingerprint, policy, store
    version, horizon) gets its own ``cache-<digest>/`` directory
    holding the sorted shard and a JSON manifest.  A later plan call
    with the same key -- in this process or any other -- loads the
    manifest and returns **without consuming the session stream**: no
    re-sort, no re-write, just one footer read to validate the shard.
    Entries are published atomically (build in a temp dir, rename), so
    concurrent builders race benignly: one wins, the other uses the
    winner's entry.
    """

    name = "external"

    #: Name of the sorted shard file inside the shard directory.
    SHARD_FILENAME = "shard.store"

    #: Name of the persisted manifest inside a cache entry.
    MANIFEST_FILENAME = "manifest.json"

    def __init__(
        self,
        shard_dir: Optional[Union[str, Path]] = None,
        run_sessions: int = 100_000,
    ) -> None:
        if run_sessions < 1:
            raise ValueError(f"run_sessions must be >= 1, got {run_sessions!r}")
        self.shard_dir = Path(shard_dir) if shard_dir is not None else None
        self.run_sessions = run_sessions

    @property
    def supports_cache(self) -> bool:
        """True when a persistent ``shard_dir`` makes caching possible."""
        return self.shard_dir is not None

    def _cache_digest(
        self, cache_token: str, policy: SwarmPolicy, horizon: float
    ) -> str:
        """The content address of one (trace, policy, format) triple."""
        policy_fingerprint = (
            f"{type(policy).__module__}.{type(policy).__qualname__}:{policy!r}"
        )
        blob = json.dumps(
            {
                "trace": cache_token,
                "policy": policy_fingerprint,
                "store_version": STORE_VERSION,
                "horizon": horizon,
            },
            sort_keys=True,
        )
        return hashlib.blake2b(blob.encode("utf-8"), digest_size=12).hexdigest()

    def _load_cached(self, cache_dir: Path) -> Optional[ExternalTaskPlan]:
        """A plan from a published cache entry, or None if absent/corrupt."""
        manifest_path = cache_dir / self.MANIFEST_FILENAME
        if not manifest_path.exists():
            return None
        try:
            manifest, _meta = load_manifest(
                manifest_path, key_decoder=_decode_swarm_key
            )
        except (OSError, ValueError, KeyError, TypeError):
            # A torn or stale entry is treated as a miss; the rebuild
            # republishes it.
            return None
        return ExternalTaskPlan(manifest, owned_dir=None, cache_hit=True)

    def plan(
        self,
        sessions: Iterable[Session],
        horizon: float,
        policy: SwarmPolicy,
        cache_token: Optional[str] = None,
    ) -> TaskPlan:
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon!r}")
        cache_dir: Optional[Path] = None
        if cache_token is not None and self.shard_dir is not None:
            digest = self._cache_digest(cache_token, policy, horizon)
            cache_dir = self.shard_dir / f"cache-{digest}"
            cached = self._load_cached(cache_dir)
            if cached is not None:
                return cached
        if self.shard_dir is not None:
            self.shard_dir.mkdir(parents=True, exist_ok=True)
            work_dir = Path(tempfile.mkdtemp(prefix="group-", dir=self.shard_dir))
            owned_dir = None
        else:
            work_dir = Path(tempfile.mkdtemp(prefix="repro-shards-"))
            owned_dir = work_dir

        def sort_key(session: Session):
            return (
                policy.key_for(session).sort_key(),
                session.start,
                session.session_id,
            )

        try:
            sorter = ExternalSessionSorter(
                sort_key, directory=work_dir, run_sessions=self.run_sessions
            )
            latest_end = 0.0
            for session in sessions:
                sorter.add(session)
                if session.end > latest_end:
                    latest_end = session.end
            if latest_end > horizon:
                raise ValueError(
                    f"horizon {horizon} shorter than last session end {latest_end}"
                )

            shard_path = work_dir / self.SHARD_FILENAME
            extents: List[Extent] = []
            current_key = None
            current_start = 0
            previous: Optional[Session] = None
            # A batch swarm key is a pure function of (content_id, isp,
            # bitrate); recomputing it per session would triple the
            # key-construction cost of the sort, so only a change in
            # those raw fields starts a new extent.  A time-scoped
            # policy (EpochPolicy) breaks that assumption -- the key
            # also depends on the session's start time -- so it opts
            # out of the shortcut and the key is rebuilt per session.
            time_scoped = bool(getattr(policy, "time_scoped", False))
            with StoreWriter(shard_path, horizon=horizon) as writer:
                for session in sorter.finish():
                    if previous is None or time_scoped or (
                        session.content_id != previous.content_id
                        or session.bitrate != previous.bitrate
                        or session.isp != previous.isp
                    ):
                        key = policy.key_for(session)
                        if key != current_key:
                            if current_key is not None:
                                extents.append(
                                    Extent(
                                        key=current_key,
                                        index=current_start,
                                        count=writer.records_written - current_start,
                                    )
                                )
                            current_key = key
                            current_start = writer.records_written
                    previous = session
                    writer.append(session)
                if current_key is not None:
                    extents.append(
                        Extent(
                            key=current_key,
                            index=current_start,
                            count=writer.records_written - current_start,
                        )
                    )
            manifest = ShardManifest(
                path=str(shard_path), horizon=horizon, extents=tuple(extents)
            )
            stats = sorter.stats
            if cache_dir is not None:
                manifest = self._publish(manifest, work_dir, cache_dir, cache_token)
            return ExternalTaskPlan(
                manifest,
                runs_spilled=stats.runs_spilled,
                peak_buffered=stats.peak_buffered,
                owned_dir=owned_dir,
                cache_hit=False if cache_dir is not None else None,
            )
        except BaseException:
            # Never leak a half-built shard directory on failure.
            shutil.rmtree(work_dir, ignore_errors=True)
            raise

    def _publish(
        self,
        manifest: ShardManifest,
        work_dir: Path,
        cache_dir: Path,
        cache_token: str,
    ) -> ShardManifest:
        """Atomically promote a freshly built shard into the cache.

        Writes the manifest beside the shard (shard referenced
        relatively, so the entry is relocatable), then renames the
        build directory to its content address.  If another process
        published first, the rename fails and *their* entry wins -- we
        discard our build and return their manifest, keeping exactly
        one shard per content address on disk.  Returns the manifest
        pointing at wherever the shard finally lives.
        """
        try:
            save_manifest(
                manifest,
                work_dir / self.MANIFEST_FILENAME,
                key_encoder=_encode_swarm_key,
                meta={"trace_fingerprint": cache_token},
            )
        except TypeError:
            # A custom policy with non-SwarmKey keys: usable shard, not
            # cacheable -- leave it in the work dir, skip publication.
            return manifest
        try:
            work_dir.rename(cache_dir)
        except OSError:
            published = self._load_cached(cache_dir)
            if published is not None:
                evict_reader(manifest.path)
                shutil.rmtree(work_dir, ignore_errors=True)
                return published.manifest
            return manifest  # rename failed, no usable winner: keep ours
        return ShardManifest(
            path=str(cache_dir / self.SHARD_FILENAME),
            horizon=manifest.horizon,
            extents=manifest.extents,
        )


def _encode_swarm_key(key: object) -> Dict:
    """JSON codec (encode half) for manifest extent keys."""
    if not isinstance(key, SwarmKey):
        raise TypeError(f"cannot persist non-SwarmKey extent key: {key!r}")
    payload = {
        "content_id": key.content_id,
        "isp": key.isp,
        "bitrate_class": key.bitrate_class,
    }
    # Written only for time-scoped keys, so manifests from batch
    # policies keep their historical shape (and digest inputs).
    if key.epoch is not None:
        payload["epoch"] = key.epoch
    return payload


def _decode_swarm_key(payload: Dict) -> SwarmKey:
    """JSON codec (decode half) for manifest extent keys."""
    return SwarmKey(
        content_id=payload["content_id"],
        isp=payload.get("isp"),
        bitrate_class=payload.get("bitrate_class"),
        epoch=payload.get("epoch"),
    )


def plan_handoff(plan: TaskPlan) -> Dict[str, object]:
    """A JSON-able description of where a plan's task data lives.

    The grouping half of the distributed handoff: the coordinator
    writes this next to each distributed job's work items
    (``plan.json``) so operators -- and workers on other hosts -- can
    see what storage the task refs point into.  Memory plans carry
    their sessions inside the refs ("shard": None); external plans
    reference the sorted shard file, which must be reachable at the
    same path on every worker host (shared storage), exactly like the
    :class:`ExtentTaskRef` values workers resolve.
    """
    stats = plan.stats()
    payload: Dict[str, object] = {
        "mode": stats.mode,
        "tasks": stats.tasks,
        "sessions": stats.sessions,
        "shard": None,
    }
    manifest = getattr(plan, "manifest", None)
    if manifest is not None:
        payload["shard"] = {
            "path": manifest.path,
            "horizon": manifest.horizon,
            "extents": len(manifest.extents),
        }
    return payload


def resolve_grouping(
    grouping: Optional[str] = None, shard_dir: Optional[str] = None
) -> GroupingStrategy:
    """Pick a strategy from ``SimulationConfig(grouping=..., shard_dir=...)``.

    ``None`` and ``"memory"`` select the in-memory grouping;
    ``"external"`` the out-of-core merge-sort (spilling under
    ``shard_dir``, or a run-scoped temporary directory when unset).
    """
    if grouping is None or grouping == MemoryGrouping.name:
        return MemoryGrouping()
    if grouping == ExternalGrouping.name:
        return ExternalGrouping(shard_dir=shard_dir)
    raise ValueError(
        f"unknown grouping {grouping!r}; choose from {', '.join(GROUPING_MODES)}"
    )


def as_task_plan(tasks: Union[TaskPlan, Sequence[SwarmTask]]) -> TaskPlan:
    """Normalize a backend argument into a :class:`TaskPlan`.

    Backends accept either a plan (the engine's path) or a plain task
    sequence (the historical API, kept for tests and direct callers).
    """
    if isinstance(tasks, TaskPlan):
        return tasks
    return MemoryTaskPlan(tasks)
