"""Discrete time-step hybrid-CDN simulator (paper Section IV.A).

Windows of ``delta_tau`` seconds (paper: 10 s), swarms scoped per
content item x bitrate class x ISP, closest-first peer matching over the
metro tree, byte ledgers at system / swarm / (ISP, day) / user level.
"""

from repro.sim.accounting import (
    ByteLedger,
    baseline_energy_nj,
    hybrid_energy_nj,
    savings,
)
from repro.sim.backends import (
    DistributedBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.sim.engine import SimulationConfig, Simulator, SweepStats, simulate
from repro.sim.federate import (
    FederationLedger,
    FederationResult,
    RegionJob,
    declared_home_rule,
    default_home_rule,
    run_federation,
)
from repro.sim.grouping import (
    GROUPING_MODES,
    ExternalGrouping,
    GroupingStats,
    GroupingStrategy,
    MemoryGrouping,
    TaskPlan,
    resolve_grouping,
)
from repro.sim.kernel import (
    SwarmOutput,
    SwarmTask,
    build_tasks,
    merge_outputs,
    resolve_task,
    run_swarm,
)
from repro.sim.matching import PeerState, WindowAllocation, match_window
from repro.sim.policies import PAPER_POLICY, EpochPolicy, SwarmKey, SwarmPolicy
from repro.sim.queue import JobSpec, WorkItem, WorkQueue
from repro.sim.service import (
    EpochResult,
    JsonlSink,
    ServiceCheckpoint,
    ServiceConfig,
    SimulationService,
    serve_jsonl,
)
from repro.sim.reduce import (
    REDUCTION_MODES,
    FootprintAccumulator,
    FootprintStats,
    ReductionStats,
    StreamingReducer,
    iter_user_deltas,
    load_user_deltas,
)
from repro.sim.results import SimulationResult, SwarmResult, UserTraffic
from repro.sim.validation import (
    ValidationPoint,
    ValidationReport,
    validate_against_theory,
)

__all__ = [
    "ByteLedger",
    "DistributedBackend",
    "EpochPolicy",
    "EpochResult",
    "FederationLedger",
    "FederationResult",
    "JobSpec",
    "JsonlSink",
    "ExecutionBackend",
    "ExternalGrouping",
    "FootprintAccumulator",
    "FootprintStats",
    "GROUPING_MODES",
    "GroupingStats",
    "GroupingStrategy",
    "MemoryGrouping",
    "PAPER_POLICY",
    "PeerState",
    "ProcessPoolBackend",
    "REDUCTION_MODES",
    "ReductionStats",
    "RegionJob",
    "SerialBackend",
    "ServiceCheckpoint",
    "ServiceConfig",
    "SimulationConfig",
    "SimulationResult",
    "SimulationService",
    "Simulator",
    "SweepStats",
    "StreamingReducer",
    "SwarmKey",
    "SwarmOutput",
    "SwarmPolicy",
    "SwarmResult",
    "SwarmTask",
    "TaskPlan",
    "ThreadBackend",
    "UserTraffic",
    "WorkItem",
    "WorkQueue",
    "ValidationPoint",
    "ValidationReport",
    "WindowAllocation",
    "build_tasks",
    "declared_home_rule",
    "default_home_rule",
    "iter_user_deltas",
    "load_user_deltas",
    "merge_outputs",
    "resolve_backend",
    "resolve_grouping",
    "resolve_task",
    "run_federation",
    "run_swarm",
    "serve_jsonl",
    "validate_against_theory",
    "baseline_energy_nj",
    "hybrid_energy_nj",
    "match_window",
    "savings",
    "simulate",
]
