"""Multi-city federated simulation with reducer-level reconciliation.

One simulation run models one city.  This module runs N cities/regions
as **separate jobs** -- each with its own session store, its own
grouping pass, any execution backend (including ``distributed`` over
per-region queue dirs) -- and reconciles them into one global result
*at the reducer*, not by merging finished results.

Why reducer-level: ``SimulationResult.merge`` adds already-folded
totals, so ``merge(region_A, region_B)`` performs the float additions
in a different association than a single run over the union trace would
-- close, but not bit-for-bit (the same reason the always-on service
folds epochs through one long-lived reducer).  ``run_federation``
instead replays every region's :class:`~repro.sim.kernel.SwarmOutput`
blocks into one global :class:`~repro.sim.reduce.StreamingReducer` at
the task indices the swarms would occupy in the union run's canonical
order.  Identical outputs folded in the identical sequence means: **for
disjoint topologies (region-prefixed content ids, e.g. anything
**:mod:`repro.trace.synth` writes), the federated result is bit-for-bit
equal to a single run over the concatenated trace.**

Cross-region swarms: when regions share a catalogue (and the policy
does not split them apart), the *same* swarm key can surface in several
regions.  Those swarms genuinely simulate as separate per-region peer
pools -- federation cannot match peers across jobs -- so the global
fold combines their results per key and the :class:`FederationLedger`
reports the split: each cross-region swarm is assigned a home region by
a declared :data:`home rule <default_home_rule>`, and every non-home
region's traffic for that swarm is accounted as a directed
``source -> home`` inter-region byte flow.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.sim.accounting import ByteLedger
from repro.sim.backends import resolve_backend
from repro.sim.engine import SimulationConfig
from repro.sim.grouping import resolve_grouping
from repro.sim.policies import SwarmKey
from repro.sim.reduce import StreamingReducer
from repro.sim.results import SimulationResult, SwarmResult
from repro.trace.store import StoreReader

__all__ = [
    "RegionJob",
    "FederationLedger",
    "FederationResult",
    "HomeRule",
    "default_home_rule",
    "declared_home_rule",
    "run_federation",
]

#: A home-region rule: given a cross-region swarm key and the per-region
#: results that contributed to it, name the region the swarm belongs to.
HomeRule = Callable[[SwarmKey, Mapping[str, SwarmResult]], str]

_REGION_PATTERN = re.compile(r"^[A-Za-z0-9_]+$")


@dataclass(frozen=True)
class RegionJob:
    """One region's job description.

    Attributes:
        name: region name, ``[A-Za-z0-9_]+`` (must match the prefix
            convention of :mod:`repro.trace.synth` for union parity:
            region-name order and content-id order must agree).
        store: the region's binary session store
            (:class:`~repro.trace.store.StoreReader`-readable).
        queue_dir: per-region work-queue directory; only valid when the
            federation config uses ``backend="distributed"``, where it
            gives each city its own queue (and worker fleet).
        cache_token: optional shard-cache token for the region's trace
            (e.g. ``SynthConfig.cache_token``); with a cache-capable
            grouping the region's sort is skipped on a cache hit.
    """

    name: str
    store: Union[str, Path]
    queue_dir: Optional[str] = None
    cache_token: Optional[str] = None

    def __post_init__(self) -> None:
        if not _REGION_PATTERN.match(self.name):
            raise ValueError(
                f"region name must match [A-Za-z0-9_]+, got {self.name!r}"
            )


@dataclass
class FederationLedger:
    """Inter-region offload accounting for cross-region swarms.

    Attributes:
        cross_region_swarms: swarm keys that surfaced in more than one
            region (0 for disjoint topologies).
        flows: directed byte flows ``(source_region, home_region) ->``
            :class:`~repro.sim.accounting.ByteLedger` -- the traffic a
            non-home region carried for swarms homed elsewhere.
        home_swarms: cross-region swarm count by assigned home region.
    """

    cross_region_swarms: int = 0
    flows: Dict[Tuple[str, str], ByteLedger] = field(default_factory=dict)
    home_swarms: Dict[str, int] = field(default_factory=dict)

    @property
    def inter_region_bits(self) -> float:
        """Total demanded bits served outside their swarm's home region."""
        return sum(ledger.demanded_bits for ledger in self.flows.values())

    def summary(self) -> Dict:
        """A JSON-able view (for benchmarks and the CLI)."""
        return {
            "cross_region_swarms": self.cross_region_swarms,
            "inter_region_bits": self.inter_region_bits,
            "home_swarms": dict(sorted(self.home_swarms.items())),
            "flows": [
                {
                    "source": source,
                    "home": home,
                    "demanded_bits": ledger.demanded_bits,
                    "peer_bits": ledger.total_peer_bits,
                    "server_bits": ledger.server_bits,
                    "sessions": ledger.sessions,
                }
                for (source, home), ledger in sorted(self.flows.items())
            ],
        }


@dataclass(frozen=True)
class FederationResult:
    """Everything a federated run produced.

    Attributes:
        merged: the reducer-reconciled global result.  For disjoint
            topologies it is bit-for-bit equal to a single run over the
            union trace (see the module docstring); with cross-region
            swarms, per-key contributions are combined.
        per_region: each region's own :class:`~repro.sim.results.\
            SimulationResult`, exactly what a standalone run of that
            region's store (under the shared horizon) produces.
        ledger: the inter-region offload accounting.
        horizon: the shared horizon every job ran under (the maximum of
            the region store horizons unless overridden).
        region_tasks: swarm-task count per region.
    """

    merged: SimulationResult
    per_region: Dict[str, SimulationResult]
    ledger: FederationLedger
    horizon: float
    region_tasks: Dict[str, int]


def default_home_rule(key: SwarmKey, contributions: Mapping[str, SwarmResult]) -> str:
    """Home a cross-region swarm by content prefix, else by demand.

    If the swarm's content id carries a ``"<region>/"`` prefix naming a
    contributing region, that region is home (content origin wins).
    Otherwise the region that demanded the most bits is home, ties
    broken by region name -- deterministic under any arrival order.
    """
    prefix, _, _ = key.content_id.partition("/")
    if prefix in contributions:
        return prefix
    return max(
        contributions,
        key=lambda region: (contributions[region].ledger.demanded_bits, region),
    )


def declared_home_rule(homes: Mapping[str, str]) -> HomeRule:
    """A :data:`HomeRule` from an explicit ``content prefix -> region`` map.

    Swarms whose content prefix is not declared fall back to
    :func:`default_home_rule`.
    """

    def rule(key: SwarmKey, contributions: Mapping[str, SwarmResult]) -> str:
        prefix, _, _ = key.content_id.partition("/")
        home = homes.get(prefix)
        if home is not None:
            return home
        return default_home_rule(key, contributions)

    return rule


def _region_config(config: SimulationConfig, job: RegionJob) -> SimulationConfig:
    """The per-region config: the shared one, plus the job's queue dir."""
    if job.queue_dir is None:
        return config
    if config.backend != "distributed":
        raise ValueError(
            f"region {job.name!r} declares a queue_dir but the federation "
            f"config uses backend={config.backend!r} (need 'distributed')"
        )
    return replace(config, queue_dir=str(job.queue_dir))


def run_federation(
    jobs: Sequence[RegionJob],
    config: Optional[SimulationConfig] = None,
    *,
    horizon: Optional[float] = None,
    home_rule: Optional[HomeRule] = None,
) -> FederationResult:
    """Run every region as its own job and reconcile at the reducer.

    Regions execute sequentially in name order (each job may itself be
    parallel or distributed); every region's swarm outputs feed both a
    per-region reducer and the global reducer at the swarm's task index
    in the union run's canonical order.  The fold is always streaming
    (``config.reduction`` / ``spill_dir`` describe single-run memory
    trades and are not consulted here); results are bit-for-bit
    identical to any reduction mode regardless.

    Args:
        jobs: one :class:`RegionJob` per region; names must be unique.
        config: the shared :class:`~repro.sim.engine.SimulationConfig`
            (physics + backend/grouping/kernel knobs).
        horizon: explicit shared horizon in seconds; default is the
            maximum of the region stores' recorded horizons.  Every
            region runs under the shared horizon so per-region results
            merge and compare cleanly.
        home_rule: how cross-region swarms are assigned a home region
            for the :class:`FederationLedger`
            (default :func:`default_home_rule`).
    """
    jobs = sorted(jobs, key=lambda job: job.name)
    if not jobs:
        raise ValueError("run_federation needs at least one region job")
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ValueError(f"region names must be unique, got {names}")
    config = config or SimulationConfig()
    rule = home_rule or default_home_rule

    readers = [StoreReader(job.store) for job in jobs]
    try:
        shared_horizon = horizon
        if shared_horizon is None:
            shared_horizon = max(reader.horizon for reader in readers)
        if shared_horizon <= 0:
            raise ValueError(
                f"shared horizon must be > 0, got {shared_horizon!r} "
                "(stores written without a horizon need an explicit one)"
            )

        # Phase 1: group every region (cache-aware), collect task keys.
        plans = []
        try:
            for job, reader in zip(jobs, readers):
                grouping = resolve_grouping(config.grouping, config.shard_dir)
                plans.append(
                    grouping.plan(
                        reader.iter_sessions(),
                        shared_horizon,
                        config.policy,
                        cache_token=job.cache_token,
                    )
                )

            # Phase 2: the union run's canonical task order.  Sorting
            # every (key, region, local index) triple by the canonical
            # swarm-key order -- region position breaking exact-key ties
            # -- reproduces exactly the task sequence build_tasks would
            # emit for the concatenated trace when keys are disjoint.
            entries: List[Tuple[tuple, int, int]] = []
            for position, plan in enumerate(plans):
                for local_index, ref in enumerate(plan.refs()):
                    entries.append((ref.key.sort_key(), position, local_index))
            entries.sort()
            global_index: Dict[Tuple[int, int], int] = {
                (position, local_index): rank
                for rank, (_, position, local_index) in enumerate(entries)
            }

            # Phase 3: run each job, feeding both reducers.
            merged_reducer = StreamingReducer(
                delta_tau=config.delta_tau,
                horizon=shared_horizon,
                upload_ratio=config.upload_ratio,
            )
            per_region: Dict[str, SimulationResult] = {}
            region_tasks: Dict[str, int] = {}
            for position, (job, plan) in enumerate(zip(jobs, plans)):
                region_config = _region_config(config, job)
                backend = resolve_backend(
                    region_config.backend,
                    region_config.workers,
                    region_config.queue_dir,
                )
                region_reducer = StreamingReducer(
                    delta_tau=config.delta_tau,
                    horizon=shared_horizon,
                    upload_ratio=config.upload_ratio,
                )
                try:
                    for start_index, block in backend.iter_outputs(
                        plan, region_config
                    ):
                        region_reducer.add(start_index, block)
                        for offset, output in enumerate(block):
                            merged_reducer.add(
                                global_index[(position, start_index + offset)],
                                (output,),
                            )
                finally:
                    if hasattr(backend, "close"):
                        backend.close()
                if region_reducer.outputs_folded != len(plan):
                    raise RuntimeError(
                        f"region {job.name!r} delivered "
                        f"{region_reducer.outputs_folded} outputs for "
                        f"{len(plan)} tasks"
                    )
                per_region[job.name] = region_reducer.result()
                region_tasks[job.name] = len(plan)
        finally:
            for plan in plans:
                plan.cleanup()
        merged = merged_reducer.result()
    finally:
        for reader in readers:
            reader.close()

    return FederationResult(
        merged=merged,
        per_region=per_region,
        ledger=_reconcile(per_region, rule),
        horizon=shared_horizon,
        region_tasks=region_tasks,
    )


def _reconcile(
    per_region: Mapping[str, SimulationResult], rule: HomeRule
) -> FederationLedger:
    """Account cross-region swarms into the federation ledger."""
    contributions: Dict[SwarmKey, Dict[str, SwarmResult]] = {}
    for region in sorted(per_region):
        for key, swarm in per_region[region].per_swarm.items():
            contributions.setdefault(key, {})[region] = swarm
    ledger = FederationLedger()
    for key in sorted(contributions, key=SwarmKey.sort_key):
        regions = contributions[key]
        if len(regions) < 2:
            continue
        home = rule(key, regions)
        if home not in regions:
            raise ValueError(
                f"home rule returned {home!r} for swarm {key!r}, which is "
                f"not among its contributing regions {sorted(regions)}"
            )
        ledger.cross_region_swarms += 1
        ledger.home_swarms[home] = ledger.home_swarms.get(home, 0) + 1
        for region, swarm in sorted(regions.items()):
            if region == home:
                continue
            flow = ledger.flows.setdefault((region, home), ByteLedger())
            flow.merge(swarm.ledger)
    return ledger
