"""Per-phase kernel timing counters (the ``--profile-kernel`` hook).

The columnar kernel (:mod:`repro.sim.kernel_columns`) and the reducer
(:func:`repro.sim.reduce.reduce_outputs`) accumulate wall-clock into the
module-level :data:`PROFILE` singleton whenever it is enabled, split by
phase: decode (store extent bytes -> columns, or the fused decode+build
pass), schedule build, sweep (membership timeline), matching (seed/fresh
selection + phase drains), drain/accounting (ledger and per-user
arithmetic), and reduce (the output fold).  ``consume-local simulate
--profile-kernel`` and ``bench_kernel --profile`` enable it around a run
and print the breakdown, so perf work measures instead of guessing.

On the zero-object ingest path the compiled ``decode_build`` fuses
decoding and schedule construction into a single pass over the raw
extent buffer; that whole pass is charged to ``decode_seconds`` and the
task is counted in ``fused_tasks`` (its ``schedule_seconds`` share is
zero by construction -- there is no separate build step to time).

Profiling is strictly observational: enabling it never changes results,
only adds ``perf_counter`` calls around phases.  The compiled sweep
times its matching/accounting split internally (it receives a profile
flag) so the breakdown stays meaningful on the fast path; the object
kernel does not report here (it predates the counters -- profile runs
force the columnar kernel).
"""

from __future__ import annotations

__all__ = ["KernelProfile", "PROFILE"]


class KernelProfile:
    """Accumulated per-phase seconds for one profiled run."""

    __slots__ = (
        "enabled",
        "decode_seconds",
        "schedule_seconds",
        "sweep_seconds",
        "match_seconds",
        "account_seconds",
        "reduce_seconds",
        "tasks",
        "compiled_tasks",
        "fused_tasks",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.reset()

    def reset(self) -> None:
        """Zero every counter (``enabled`` is left as-is)."""
        self.decode_seconds = 0.0
        self.schedule_seconds = 0.0
        self.sweep_seconds = 0.0
        self.match_seconds = 0.0
        self.account_seconds = 0.0
        self.reduce_seconds = 0.0
        self.tasks = 0
        self.compiled_tasks = 0
        self.fused_tasks = 0

    def report(self) -> str:
        """A human-readable per-phase breakdown."""
        rows = [
            ("decode", self.decode_seconds),
            ("schedule build", self.schedule_seconds),
            ("sweep", self.sweep_seconds),
            ("  matching", self.match_seconds),
            ("  drain/accounting", self.account_seconds),
            ("reduce", self.reduce_seconds),
        ]
        lines = [
            "kernel profile "
            f"({self.tasks} swarms, {self.compiled_tasks} on the compiled path, "
            f"{self.fused_tasks} fused-decoded):"
        ]
        for label, seconds in rows:
            lines.append(f"  {label:<20} {seconds * 1e3:10.2f} ms")
        return "\n".join(lines)


#: The process-wide profile sink.  Off by default; the CLI / benchmarks
#: enable it around a run and read the totals back.
PROFILE = KernelProfile()
