"""Execution backends: where and how swarm kernels actually run.

The simulation is embarrassingly parallel across swarms -- the paper's
simulator sweeps each swarm independently (Section IV.A) -- so the
engine delegates the *placement* of per-swarm work to a pluggable
backend while keeping the physics in :mod:`repro.sim.kernel` and the
reduction in :func:`repro.sim.kernel.merge_outputs`.

Sharding / merge architecture::

    sessions ──build_tasks──▶ [SwarmTask...]     (canonical order)
                                   │
                         backend.map_swarms      (any placement,
                                   │              any completion order)
                                   ▼
                            [SwarmOutput...]     (task order restored)
                                   │
                            merge_outputs        (deterministic fold)
                                   ▼
                           SimulationResult

Because tasks are immutable, kernels are pure, and every backend
restores task order before the fold, all three backends are bit-for-bit
equivalent; the only degrees of freedom are wall-clock time and memory
residency.

Backends consume a **task plan** (:mod:`repro.sim.grouping`), not a
materialized task list: a plan knows its task count and per-task
session counts (enough to balance shards) and yields tasks or cheap
picklable *refs* lazily.  Under ``grouping="memory"`` a ref is the
:class:`~repro.sim.kernel.SwarmTask` itself; under
``grouping="external"`` it is an extent handle ``(path, offset,
length, key)`` into the sorted shard file, and the worker decodes its
own sessions (:func:`~repro.sim.kernel.resolve_task`) -- the
coordinator never pickles session tuples to workers.  Plain task
sequences are still accepted everywhere (normalized via
:func:`~repro.sim.grouping.as_task_plan`).

Every backend also exposes a **streaming** submission path
(:meth:`ExecutionBackend.iter_outputs`) feeding the incremental
reducer (:mod:`repro.sim.reduce`)::

    sessions ──build_tasks──▶ [SwarmTask...]      (canonical order)
                                   │
                        backend.iter_outputs      (bounded in-flight
                                   │               window, completion
                                   ▼               order)
                     (start_index, [SwarmOutput...]) blocks
                                   │
                          StreamingReducer        (re-orders to task
                                   │               order, folds as
                                   ▼               blocks complete)
                           SimulationResult

The streaming fold is the same reduction ``merge_outputs`` performs, so
both paths are bit-for-bit identical; the difference is residency: the
batched path holds every output until the fold, the streaming path at
most ``workers + 1`` blocks (see ``SimulationConfig(reduction=...)``).

Backends:

* :class:`SerialBackend` -- in-process loop; zero overhead, the
  baseline every other backend must reproduce exactly.
* :class:`ThreadBackend` -- a thread pool.  The kernel is pure Python
  and GIL-bound, so this mainly exercises the shared-nothing contract
  (and becomes useful under free-threaded builds); it needs no
  pickling.
* :class:`ProcessPoolBackend` -- a :class:`concurrent.futures.\
ProcessPoolExecutor` over interleaved shards of tasks.  Tasks are
  round-robin-assigned to ``4 x workers`` shards so the heavy head of
  the Zipf catalogue (tasks arrive sorted by content id, with wildly
  uneven session counts) spreads across workers; each shard costs one
  pickle round-trip.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.sim.grouping import TaskPlan, as_task_plan
from repro.sim.kernel import (
    MultiSwarmOutput,
    SwarmOutput,
    SwarmTask,
    resolve_task,
    run_shard,
    run_shard_multi,
    run_swarm,
    run_swarm_multi,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.sim.engine import SimulationConfig

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    "contiguous_blocks",
]

#: What backends accept: a lazy task plan, or (the historical API) a
#: plain sequence of resident tasks.
TaskSource = Union[TaskPlan, Sequence[SwarmTask]]

#: A contiguous run of tasks, tagged with the task index of its first
#: member -- the unit the streaming submission path ships and the
#: :class:`~repro.sim.reduce.StreamingReducer` re-orders by.
OutputBlock = Tuple[int, List[SwarmOutput]]

#: The sweep counterpart: per-task :class:`~repro.sim.kernel.\
#: MultiSwarmOutput` values (one output per sweep config inside each).
MultiOutputBlock = Tuple[int, List[MultiSwarmOutput]]


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def contiguous_blocks(
    tasks: Sequence, num_blocks: int
) -> List[Tuple[int, List]]:
    """Split task refs into at most ``num_blocks`` contiguous, session-balanced runs.

    Accepts resident :class:`~repro.sim.kernel.SwarmTask` values or
    extent refs -- anything with a ``num_sessions`` attribute -- so
    balancing never forces a decode.

    Unlike the batched path's round-robin interleave (which optimizes
    pure load balance), streaming shards must be *contiguous* in task
    order: the reducer folds strictly in task order, so a shard's
    outputs become foldable the moment every earlier shard has folded
    -- interleaved shards would all have to finish before the first
    fold.  Balance is recovered by weighting the cut points with
    session counts; each block's target is re-paced from the weight
    *remaining* when it opens, so one overweight Zipf-head task absorbs
    only its own block instead of starving every later cut.

    Returns ``(start_index, tasks)`` pairs covering every task exactly
    once, in task order; every block is non-empty.
    """
    total_tasks = len(tasks)
    if total_tasks == 0:
        return []
    num_blocks = max(1, min(num_blocks, total_tasks))
    weights = [float(task.num_sessions) for task in tasks]
    if sum(weights) <= 0.0:  # degenerate all-empty tasks: split evenly
        weights = [1.0] * total_tasks
    blocks: List[Tuple[int, List[SwarmTask]]] = []
    start = 0
    block_weight = 0.0
    weight_left = sum(weights)  # not yet assigned to a closed block
    for index in range(total_tasks):
        block_weight += weights[index]
        open_and_unfilled = num_blocks - len(blocks)  # including the open block
        if open_and_unfilled <= 1:
            continue  # the last block swallows the remaining tasks
        tasks_left = total_tasks - (index + 1)
        target_reached = block_weight * open_and_unfilled >= weight_left
        must_close = tasks_left < open_and_unfilled
        if target_reached or must_close:
            blocks.append((start, list(tasks[start : index + 1])))
            start = index + 1
            weight_left -= block_weight
            block_weight = 0.0
    if start < total_tasks:
        blocks.append((start, list(tasks[start:])))
    return blocks


def _iter_single_tasks(
    tasks: Iterable[SwarmTask], config: "SimulationConfig"
) -> Iterator[OutputBlock]:
    """One task at a time, lazily: exactly one output ever resident.

    The shared inline streaming path -- the serial backend's whole
    strategy, and the parallel backends' small-workload fallback.
    Consumes any task iterable (in particular a lazy plan's
    ``iter_tasks()``, which decodes one extent at a time), so at most
    one decoded task is resident alongside its output.
    """
    for index, task in enumerate(tasks):
        yield index, [run_swarm(task, config)]


def _iter_single_tasks_multi(
    tasks: Iterable[SwarmTask], configs: Sequence["SimulationConfig"]
) -> Iterator[MultiOutputBlock]:
    """The sweep counterpart of :func:`_iter_single_tasks`."""
    for index, task in enumerate(tasks):
        yield index, [run_swarm_multi(task, configs)]


def _stream_blocks(
    executor: Executor,
    blocks: Sequence[Tuple[int, List]],
    window: int,
    shard_fn,
    *shard_args,
) -> Iterator[Tuple[int, List]]:
    """Submit task blocks with a bounded lookahead; yield in completion order.

    ``shard_fn(chunk, *shard_args)`` is the picklable unit of work --
    :func:`~repro.sim.kernel.run_shard` with a config for single runs,
    :func:`~repro.sim.kernel.run_shard_multi` with a config list for
    sweeps.

    ``imap``-style backpressure: at most ``window`` blocks may be past
    the *yield frontier* (the earliest block not yet yielded) at any
    time -- submitted, running, or completed-and-yielded out of order.
    Since the reducer's fold frontier trails the yield frontier by at
    most the blocks we yielded out of order, its reorder buffer can
    never hold more than ``window`` blocks, no matter how long a slow
    early shard straggles.
    """
    total = len(blocks)
    pending: dict = {}  # future -> position in ``blocks``
    yielded = [False] * total
    frontier = 0  # first position not yet yielded
    next_submit = 0
    while next_submit < total or pending:
        # Every pending future sits in [frontier, next_submit), so this
        # single guard also caps len(pending) below ``window``.
        while next_submit < total and next_submit < frontier + window:
            start, chunk = blocks[next_submit]
            pending[executor.submit(shard_fn, chunk, *shard_args)] = next_submit
            next_submit += 1
        done, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            position = pending.pop(future)
            yielded[position] = True
            yield blocks[position][0], future.result()
        while frontier < total and yielded[frontier]:
            frontier += 1


class ExecutionBackend(ABC):
    """Strategy for executing swarm kernels over a task list."""

    #: Stable identifier, usable as ``SimulationConfig(backend=...)``.
    name: str = "abstract"

    @abstractmethod
    def map_swarms(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        """Run every task, returning outputs **in task order**.

        Accepts a lazy :class:`~repro.sim.grouping.TaskPlan` or a plain
        task sequence.  Implementations may execute in any placement
        and completion order, but must restore task order so the
        caller's reduction is deterministic.
        """

    def iter_outputs(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> Iterator[OutputBlock]:
        """Yield ``(start_index, outputs)`` blocks as they complete.

        The streaming counterpart of :meth:`map_swarms`: blocks may be
        yielded in any completion order, but together they must cover
        the task list exactly once in contiguous runs, tagged with the
        task index of each run's first output so the
        :class:`~repro.sim.reduce.StreamingReducer` can restore the
        canonical fold order.  Implementations bound how many blocks
        are in flight past the earliest unyielded block, which is what
        keeps the reducer's reorder buffer (and hence coordinator
        memory) bounded.

        This base implementation delegates to :meth:`map_swarms` as one
        degenerate block, so third-party backends keep working before
        they grow a real streaming path.
        """
        plan = as_task_plan(tasks)
        if len(plan) == 0:
            return
        yield 0, self.map_swarms(plan, config)

    def map_swarms_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> List[MultiSwarmOutput]:
        """Run every task under every sweep config, **in task order**.

        The fan-out half of the sweep amortization
        (:func:`~repro.sim.kernel.run_swarm_multi`): each task's
        sessions are resolved once and swept for all K configs, so the
        per-task cost -- pickling, shard decode, event-schedule build,
        membership timeline -- is paid once instead of K times.  The
        base implementation runs inline; parallel backends override it
        to ship one task ref + K config deltas per worker round-trip.
        """
        plan = as_task_plan(tasks)
        return [run_swarm_multi(task, configs) for task in plan.iter_tasks()]

    def iter_outputs_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> Iterator[MultiOutputBlock]:
        """Yield ``(start_index, multi outputs)`` blocks as they complete.

        The streaming counterpart of :meth:`map_swarms_multi`, with the
        same block contract as :meth:`iter_outputs` (contiguous runs
        covering the task list exactly once, bounded in-flight window).
        The base implementation streams inline one task at a time, so
        at most one task's K outputs are resident beyond the reducer.
        """
        return _iter_single_tasks_multi(as_task_plan(tasks).iter_tasks(), configs)


class SerialBackend(ExecutionBackend):
    """Run every swarm in the calling thread, in task order."""

    name = "serial"

    def map_swarms(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        plan = as_task_plan(tasks)
        return [run_swarm(task, config) for task in plan.iter_tasks()]

    def iter_outputs(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> Iterator[OutputBlock]:
        """One task at a time, lazily: exactly one output ever resident."""
        return _iter_single_tasks(as_task_plan(tasks).iter_tasks(), config)


class ThreadBackend(ExecutionBackend):
    """Run swarms on a thread pool (shared-nothing, no pickling).

    Task refs resolve inside the pool threads; with external grouping
    the threads decode their extents through one shared store reader
    (positional reads, no shared seek state), so decoding parallelises
    along with the sweep.
    """

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers or _default_workers()

    def map_swarms(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        refs = as_task_plan(tasks).refs()
        if not refs:
            return []
        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            return list(
                executor.map(
                    lambda ref: run_swarm(resolve_task(ref), config), refs
                )
            )

    def iter_outputs(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> Iterator[OutputBlock]:
        """Single-task blocks over the pool, ``workers + 1`` in flight."""
        refs = as_task_plan(tasks).refs()
        if not refs:
            return
        blocks = [(index, [ref]) for index, ref in enumerate(refs)]
        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            yield from _stream_blocks(
                executor, blocks, self.workers + 1, run_shard, config
            )

    def map_swarms_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> List[MultiSwarmOutput]:
        refs = as_task_plan(tasks).refs()
        if not refs:
            return []
        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            return list(
                executor.map(
                    lambda ref: run_swarm_multi(resolve_task(ref), configs), refs
                )
            )

    def iter_outputs_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> Iterator[MultiOutputBlock]:
        """Single-task sweep blocks over the pool, ``workers + 1`` in flight."""
        refs = as_task_plan(tasks).refs()
        if not refs:
            return
        blocks = [(index, [ref]) for index, ref in enumerate(refs)]
        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            yield from _stream_blocks(
                executor, blocks, self.workers + 1, run_shard_multi, configs
            )


class ProcessPoolBackend(ExecutionBackend):
    """Run swarm shards on worker processes.

    Tasks are interleaved round-robin into ``shards_per_worker x
    workers`` shards (task ``i`` goes to shard ``i mod n``), submitted
    concurrently, and reassembled into task order before returning.

    What crosses the process boundary is the plan's *refs*: resident
    tasks under memory grouping, but under external grouping just
    ``(path, offset, length, key)`` extent handles -- each worker opens
    the shard file itself and decodes only its own byte ranges
    (:func:`~repro.sim.kernel.resolve_task`), so the coordinator's
    session-pickling hot path disappears entirely.

    Workloads below ``min_sessions`` run inline instead: spawning a
    pool and pickling tasks costs more than sweeping a small trace
    (e.g. the per-ISP exemplar subtraces of Fig. 2), and results are
    bit-for-bit identical either way.

    The worker pool is created lazily on first parallel use and then
    **kept alive across** ``map_swarms`` **calls**, so drivers that run
    many simulations through one backend (or one Simulator) pay pool
    startup once.  Call :meth:`close` (or rely on garbage collection /
    interpreter exit) to release the workers.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        shards_per_worker: int = 4,
        min_sessions: int = 5_000,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if shards_per_worker < 1:
            raise ValueError(
                f"shards_per_worker must be >= 1, got {shards_per_worker!r}"
            )
        if min_sessions < 0:
            raise ValueError(f"min_sessions must be >= 0, got {min_sessions!r}")
        self.workers = workers or _default_workers()
        self.shards_per_worker = shards_per_worker
        self.min_sessions = min_sessions
        self._executor: Optional[ProcessPoolExecutor] = None

    def close(self) -> None:
        """Shut down the worker pool (recreated lazily if used again)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def map_swarms(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        plan = as_task_plan(tasks)
        num_tasks = len(plan)
        if num_tasks == 0:
            return []
        num_shards = min(num_tasks, self.workers * self.shards_per_worker)
        total_sessions = sum(plan.session_counts)
        if num_shards <= 1 or self.workers <= 1 or total_sessions < self.min_sessions:
            return [run_swarm(task, config) for task in plan.iter_tasks()]
        refs = plan.refs()
        shard_indices = [range(offset, num_tasks, num_shards) for offset in range(num_shards)]
        outputs: List[Optional[SwarmOutput]] = [None] * num_tasks
        try:
            executor = self._pool()
            futures = [
                executor.submit(run_shard, [refs[i] for i in indices], config)
                for indices in shard_indices
            ]
            for indices, future in zip(shard_indices, futures):
                for i, output in zip(indices, future.result()):
                    outputs[i] = output
        except BrokenProcessPool:
            self.close()  # next call starts a fresh pool
            raise
        return outputs  # type: ignore[return-value] - every slot is filled

    def iter_outputs(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> Iterator[OutputBlock]:
        """Contiguous session-balanced shards, ``workers + 1`` in flight.

        Small workloads (below ``min_sessions``) stream inline one task
        at a time instead, exactly like :class:`SerialBackend` -- same
        results, no pool spawn, and still O(1) resident outputs.

        Unlike the batched path's fixed shard count, the streaming
        shard count *grows* with the trace so that each shard carries
        at most ~``min_sessions`` sessions: a resident shard's output
        size is then bounded by a constant, and with the ``workers +
        1`` in-flight window the coordinator's resident memory stays
        O(workers), not O(trace).
        """
        plan = as_task_plan(tasks)
        if len(plan) == 0:
            return
        total_sessions = sum(plan.session_counts)
        per_shard_quantum = max(1, self.min_sessions)
        num_shards = min(
            len(plan),
            max(
                self.workers * self.shards_per_worker,
                -(-total_sessions // per_shard_quantum),  # ceil division
            ),
        )
        if (
            self.workers <= 1
            or total_sessions < self.min_sessions
            or num_shards <= 1
        ):
            yield from _iter_single_tasks(plan.iter_tasks(), config)
            return
        blocks = contiguous_blocks(plan.refs(), num_shards)
        try:
            yield from _stream_blocks(
                self._pool(), blocks, self.workers + 1, run_shard, config
            )
        except BrokenProcessPool:
            self.close()  # next call starts a fresh pool
            raise

    def map_swarms_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> List[MultiSwarmOutput]:
        """Sweep-shard the task list over the pool, one ref set + K configs.

        Mirrors :meth:`map_swarms`, but each shard round-trip carries the
        config *list* once and returns K outputs per task -- pickling and
        (under external grouping) shard decode amortize K-fold.  The
        inline fallback weighs the workload as ``sessions x configs``,
        since that is the actual sweep cost a pool spawn competes with.
        """
        plan = as_task_plan(tasks)
        num_tasks = len(plan)
        if num_tasks == 0:
            return []
        num_shards = min(num_tasks, self.workers * self.shards_per_worker)
        total_sessions = sum(plan.session_counts)
        if (
            num_shards <= 1
            or self.workers <= 1
            or total_sessions * max(1, len(configs)) < self.min_sessions
        ):
            return [run_swarm_multi(task, configs) for task in plan.iter_tasks()]
        refs = plan.refs()
        shard_indices = [range(offset, num_tasks, num_shards) for offset in range(num_shards)]
        outputs: List[Optional[MultiSwarmOutput]] = [None] * num_tasks
        try:
            executor = self._pool()
            futures = [
                executor.submit(run_shard_multi, [refs[i] for i in indices], configs)
                for indices in shard_indices
            ]
            for indices, future in zip(shard_indices, futures):
                for i, output in zip(indices, future.result()):
                    outputs[i] = output
        except BrokenProcessPool:
            self.close()  # next call starts a fresh pool
            raise
        return outputs  # type: ignore[return-value] - every slot is filled

    def iter_outputs_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> Iterator[MultiOutputBlock]:
        """Contiguous sweep shards, ``workers + 1`` in flight.

        The shard quantum shrinks with the config count: a resident
        sweep block holds K outputs per task, so bounding the per-shard
        session count at ``min_sessions / K`` keeps the coordinator's
        resident-output footprint at the single-run level.
        """
        plan = as_task_plan(tasks)
        if len(plan) == 0:
            return
        num_configs = max(1, len(configs))
        total_sessions = sum(plan.session_counts)
        per_shard_quantum = max(1, self.min_sessions // num_configs)
        num_shards = min(
            len(plan),
            max(
                self.workers * self.shards_per_worker,
                -(-total_sessions // per_shard_quantum),  # ceil division
            ),
        )
        if (
            self.workers <= 1
            or total_sessions * num_configs < self.min_sessions
            or num_shards <= 1
        ):
            yield from _iter_single_tasks_multi(plan.iter_tasks(), configs)
            return
        blocks = contiguous_blocks(plan.refs(), num_shards)
        try:
            yield from _stream_blocks(
                self._pool(), blocks, self.workers + 1, run_shard_multi, configs
            )
        except BrokenProcessPool:
            self.close()  # next call starts a fresh pool
            raise


#: The registry of selectable backend names -- the single source of
#: truth consumed by ``SimulationConfig`` validation and the CLI's
#: ``--backend`` choices.
BACKEND_NAMES: tuple = (
    SerialBackend.name,
    ThreadBackend.name,
    ProcessPoolBackend.name,
)


def resolve_backend(
    backend: Optional[str] = None, workers: Optional[int] = None
) -> ExecutionBackend:
    """Pick a backend from ``SimulationConfig(backend=..., workers=...)``.

    * an explicit name (one of :data:`BACKEND_NAMES`) wins;
    * otherwise ``workers`` > 1 selects the process pool;
    * otherwise the serial baseline.
    """
    if backend is None:
        if workers is not None and workers > 1:
            return ProcessPoolBackend(workers)
        return SerialBackend()
    if backend == SerialBackend.name:
        return SerialBackend()
    if backend == ThreadBackend.name:
        return ThreadBackend(workers)
    if backend == ProcessPoolBackend.name:
        return ProcessPoolBackend(workers)
    raise ValueError(
        f"unknown backend {backend!r}; choose from {', '.join(BACKEND_NAMES)}"
    )
