"""Execution backends: where and how swarm kernels actually run.

The simulation is embarrassingly parallel across swarms -- the paper's
simulator sweeps each swarm independently (Section IV.A) -- so the
engine delegates the *placement* of per-swarm work to a pluggable
backend while keeping the physics in :mod:`repro.sim.kernel` and the
reduction in :func:`repro.sim.kernel.merge_outputs`.

Sharding / merge architecture::

    sessions ──build_tasks──▶ [SwarmTask...]     (canonical order)
                                   │
                         backend.map_swarms      (any placement,
                                   │              any completion order)
                                   ▼
                            [SwarmOutput...]     (task order restored)
                                   │
                            merge_outputs        (deterministic fold)
                                   ▼
                           SimulationResult

Because tasks are immutable, kernels are pure, and every backend
restores task order before the fold, all three backends are bit-for-bit
equivalent; the only degrees of freedom are wall-clock time and memory
residency.

Backends:

* :class:`SerialBackend` -- in-process loop; zero overhead, the
  baseline every other backend must reproduce exactly.
* :class:`ThreadBackend` -- a thread pool.  The kernel is pure Python
  and GIL-bound, so this mainly exercises the shared-nothing contract
  (and becomes useful under free-threaded builds); it needs no
  pickling.
* :class:`ProcessPoolBackend` -- a :class:`concurrent.futures.\
ProcessPoolExecutor` over interleaved shards of tasks.  Tasks are
  round-robin-assigned to ``4 x workers`` shards so the heavy head of
  the Zipf catalogue (tasks arrive sorted by content id, with wildly
  uneven session counts) spreads across workers; each shard costs one
  pickle round-trip.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.sim.kernel import SwarmOutput, SwarmTask, run_shard, run_swarm

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.sim.engine import SimulationConfig

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "resolve_backend",
]


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


class ExecutionBackend(ABC):
    """Strategy for executing swarm kernels over a task list."""

    #: Stable identifier, usable as ``SimulationConfig(backend=...)``.
    name: str = "abstract"

    @abstractmethod
    def map_swarms(
        self, tasks: Sequence[SwarmTask], config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        """Run every task, returning outputs **in task order**.

        Implementations may execute in any placement and completion
        order, but must restore task order so the caller's reduction is
        deterministic.
        """


class SerialBackend(ExecutionBackend):
    """Run every swarm in the calling thread, in task order."""

    name = "serial"

    def map_swarms(
        self, tasks: Sequence[SwarmTask], config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        return run_shard(tasks, config)


class ThreadBackend(ExecutionBackend):
    """Run swarms on a thread pool (shared-nothing, no pickling)."""

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers or _default_workers()

    def map_swarms(
        self, tasks: Sequence[SwarmTask], config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        if not tasks:
            return []
        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            return list(executor.map(lambda task: run_swarm(task, config), tasks))


class ProcessPoolBackend(ExecutionBackend):
    """Run swarm shards on worker processes.

    Tasks are interleaved round-robin into ``shards_per_worker x
    workers`` shards (task ``i`` goes to shard ``i mod n``), submitted
    concurrently, and reassembled into task order before returning.

    Workloads below ``min_sessions`` run inline instead: spawning a
    pool and pickling tasks costs more than sweeping a small trace
    (e.g. the per-ISP exemplar subtraces of Fig. 2), and results are
    bit-for-bit identical either way.

    The worker pool is created lazily on first parallel use and then
    **kept alive across** ``map_swarms`` **calls**, so drivers that run
    many simulations through one backend (or one Simulator) pay pool
    startup once.  Call :meth:`close` (or rely on garbage collection /
    interpreter exit) to release the workers.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        shards_per_worker: int = 4,
        min_sessions: int = 5_000,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if shards_per_worker < 1:
            raise ValueError(
                f"shards_per_worker must be >= 1, got {shards_per_worker!r}"
            )
        if min_sessions < 0:
            raise ValueError(f"min_sessions must be >= 0, got {min_sessions!r}")
        self.workers = workers or _default_workers()
        self.shards_per_worker = shards_per_worker
        self.min_sessions = min_sessions
        self._executor: Optional[ProcessPoolExecutor] = None

    def close(self) -> None:
        """Shut down the worker pool (recreated lazily if used again)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def map_swarms(
        self, tasks: Sequence[SwarmTask], config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        if not tasks:
            return []
        num_shards = min(len(tasks), self.workers * self.shards_per_worker)
        total_sessions = sum(len(task.sessions) for task in tasks)
        if num_shards <= 1 or self.workers <= 1 or total_sessions < self.min_sessions:
            return run_shard(tasks, config)
        shard_indices = [range(offset, len(tasks), num_shards) for offset in range(num_shards)]
        outputs: List[Optional[SwarmOutput]] = [None] * len(tasks)
        try:
            executor = self._pool()
            futures = [
                executor.submit(run_shard, [tasks[i] for i in indices], config)
                for indices in shard_indices
            ]
            for indices, future in zip(shard_indices, futures):
                for i, output in zip(indices, future.result()):
                    outputs[i] = output
        except BrokenProcessPool:
            self.close()  # next call starts a fresh pool
            raise
        return outputs  # type: ignore[return-value] - every slot is filled


#: The registry of selectable backend names -- the single source of
#: truth consumed by ``SimulationConfig`` validation and the CLI's
#: ``--backend`` choices.
BACKEND_NAMES: tuple = (
    SerialBackend.name,
    ThreadBackend.name,
    ProcessPoolBackend.name,
)


def resolve_backend(
    backend: Optional[str] = None, workers: Optional[int] = None
) -> ExecutionBackend:
    """Pick a backend from ``SimulationConfig(backend=..., workers=...)``.

    * an explicit name (one of :data:`BACKEND_NAMES`) wins;
    * otherwise ``workers`` > 1 selects the process pool;
    * otherwise the serial baseline.
    """
    if backend is None:
        if workers is not None and workers > 1:
            return ProcessPoolBackend(workers)
        return SerialBackend()
    if backend == SerialBackend.name:
        return SerialBackend()
    if backend == ThreadBackend.name:
        return ThreadBackend(workers)
    if backend == ProcessPoolBackend.name:
        return ProcessPoolBackend(workers)
    raise ValueError(
        f"unknown backend {backend!r}; choose from {', '.join(BACKEND_NAMES)}"
    )
