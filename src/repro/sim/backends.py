"""Execution backends: where and how swarm kernels actually run.

The simulation is embarrassingly parallel across swarms -- the paper's
simulator sweeps each swarm independently (Section IV.A) -- so the
engine delegates the *placement* of per-swarm work to a pluggable
backend while keeping the physics in :mod:`repro.sim.kernel` and the
reduction in :func:`repro.sim.kernel.merge_outputs`.

Sharding / merge architecture::

    sessions ──build_tasks──▶ [SwarmTask...]     (canonical order)
                                   │
                         backend.map_swarms      (any placement,
                                   │              any completion order)
                                   ▼
                            [SwarmOutput...]     (task order restored)
                                   │
                            merge_outputs        (deterministic fold)
                                   ▼
                           SimulationResult

Because tasks are immutable, kernels are pure, and every backend
restores task order before the fold, all three backends are bit-for-bit
equivalent; the only degrees of freedom are wall-clock time and memory
residency.

Backends consume a **task plan** (:mod:`repro.sim.grouping`), not a
materialized task list: a plan knows its task count and per-task
session counts (enough to balance shards) and yields tasks or cheap
picklable *refs* lazily.  Under ``grouping="memory"`` a ref is the
:class:`~repro.sim.kernel.SwarmTask` itself; under
``grouping="external"`` it is an extent handle ``(path, offset,
length, key)`` into the sorted shard file, and the worker resolves it
itself (:func:`~repro.sim.kernel.run_ref` -- under the columnar kernel
straight into packed schedule columns, no ``Session`` objects at all)
-- the coordinator never pickles session tuples to workers.  Plain
task sequences are still accepted everywhere (normalized via
:func:`~repro.sim.grouping.as_task_plan`).

Every backend also exposes a **streaming** submission path
(:meth:`ExecutionBackend.iter_outputs`) feeding the incremental
reducer (:mod:`repro.sim.reduce`)::

    sessions ──build_tasks──▶ [SwarmTask...]      (canonical order)
                                   │
                        backend.iter_outputs      (bounded in-flight
                                   │               window, completion
                                   ▼               order)
                     (start_index, [SwarmOutput...]) blocks
                                   │
                          StreamingReducer        (re-orders to task
                                   │               order, folds as
                                   ▼               blocks complete)
                           SimulationResult

The streaming fold is the same reduction ``merge_outputs`` performs, so
both paths are bit-for-bit identical; the difference is residency: the
batched path holds every output until the fold, the streaming path at
most ``workers + 1`` blocks (see ``SimulationConfig(reduction=...)``).

Backends:

* :class:`SerialBackend` -- in-process loop; zero overhead, the
  baseline every other backend must reproduce exactly.
* :class:`ThreadBackend` -- a thread pool.  The kernel is pure Python
  and GIL-bound, so this mainly exercises the shared-nothing contract
  (and becomes useful under free-threaded builds); it needs no
  pickling.
* :class:`ProcessPoolBackend` -- a :class:`concurrent.futures.\
ProcessPoolExecutor` over interleaved shards of tasks.  Tasks are
  round-robin-assigned to ``4 x workers`` shards so the heavy head of
  the Zipf catalogue (tasks arrive sorted by content id, with wildly
  uneven session counts) spreads across workers; each shard costs one
  pickle round-trip.
* :class:`DistributedBackend` -- a coordinator over a crash-safe
  file-based work queue (:mod:`repro.sim.queue`).  Work items carry
  the same picklable refs the process pool ships, but through shared
  storage instead of a pipe, so the workers
  (``python -m repro.sim.worker``) can live on **any host that sees
  the queue directory and the shard file** -- the multi-host extension
  of the same contract.  Completion-order result blocks feed the same
  streaming reducer; dead workers are survived via lease-expiry
  requeue, so results stay bit-for-bit identical to serial even when
  workers are killed mid-run.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
import uuid
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.sim import faults
from repro.sim.grouping import TaskPlan, as_task_plan, plan_handoff
from repro.sim.queue import (
    JobSpec,
    WorkQueue,
    item_id_for,
    make_items,
    position_of,
)
from repro.sim.kernel import (
    MultiSwarmOutput,
    SwarmOutput,
    SwarmTask,
    run_ref,
    run_ref_multi,
    run_shard,
    run_shard_multi,
    sweep_memo,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.sim.engine import SimulationConfig

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "DistributedBackend",
    "resolve_backend",
    "contiguous_blocks",
]

#: What backends accept: a lazy task plan, or (the historical API) a
#: plain sequence of resident tasks.
TaskSource = Union[TaskPlan, Sequence[SwarmTask]]

#: A contiguous run of tasks, tagged with the task index of its first
#: member -- the unit the streaming submission path ships and the
#: :class:`~repro.sim.reduce.StreamingReducer` re-orders by.
OutputBlock = Tuple[int, List[SwarmOutput]]

#: The sweep counterpart: per-task :class:`~repro.sim.kernel.\
#: MultiSwarmOutput` values (one output per sweep config inside each).
MultiOutputBlock = Tuple[int, List[MultiSwarmOutput]]


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def contiguous_blocks(
    tasks: Sequence, num_blocks: int
) -> List[Tuple[int, List]]:
    """Split task refs into at most ``num_blocks`` contiguous, session-balanced runs.

    Accepts resident :class:`~repro.sim.kernel.SwarmTask` values or
    extent refs -- anything with a ``num_sessions`` attribute -- so
    balancing never forces a decode.

    Unlike the batched path's round-robin interleave (which optimizes
    pure load balance), streaming shards must be *contiguous* in task
    order: the reducer folds strictly in task order, so a shard's
    outputs become foldable the moment every earlier shard has folded
    -- interleaved shards would all have to finish before the first
    fold.  Balance is recovered by weighting the cut points with
    session counts; each block's target is re-paced from the weight
    *remaining* when it opens, so one overweight Zipf-head task absorbs
    only its own block instead of starving every later cut.

    Returns ``(start_index, tasks)`` pairs covering every task exactly
    once, in task order; every block is non-empty.
    """
    total_tasks = len(tasks)
    if total_tasks == 0:
        return []
    num_blocks = max(1, min(num_blocks, total_tasks))
    weights = [float(task.num_sessions) for task in tasks]
    if sum(weights) <= 0.0:  # degenerate all-empty tasks: split evenly
        weights = [1.0] * total_tasks
    blocks: List[Tuple[int, List[SwarmTask]]] = []
    start = 0
    block_weight = 0.0
    weight_left = sum(weights)  # not yet assigned to a closed block
    for index in range(total_tasks):
        block_weight += weights[index]
        open_and_unfilled = num_blocks - len(blocks)  # including the open block
        if open_and_unfilled <= 1:
            continue  # the last block swallows the remaining tasks
        tasks_left = total_tasks - (index + 1)
        target_reached = block_weight * open_and_unfilled >= weight_left
        must_close = tasks_left < open_and_unfilled
        if target_reached or must_close:
            blocks.append((start, list(tasks[start : index + 1])))
            start = index + 1
            weight_left -= block_weight
            block_weight = 0.0
    if start < total_tasks:
        blocks.append((start, list(tasks[start:])))
    return blocks


def _iter_single_tasks(
    refs: Iterable, config: "SimulationConfig"
) -> Iterator[OutputBlock]:
    """One task at a time, lazily: exactly one output ever resident.

    The shared inline streaming path -- the serial backend's whole
    strategy, and the parallel backends' small-workload fallback.
    Consumes any ref iterable (resident tasks or extent refs):
    :func:`~repro.sim.kernel.run_ref` resolves each one on demand --
    via the zero-object columnar path where eligible -- so at most one
    task's working set is resident alongside its output.
    """
    for index, ref in enumerate(refs):
        yield index, [run_ref(ref, config)]


def _iter_single_tasks_multi(
    refs: Iterable, configs: Sequence["SimulationConfig"]
) -> Iterator[MultiOutputBlock]:
    """The sweep counterpart of :func:`_iter_single_tasks`.

    The allocation memo is shared across the stream's tasks (exactly
    like :func:`~repro.sim.kernel.run_shard_multi` does per shard), so
    inline sweeps hit on catalogue tails with repeating membership.
    """
    memo = sweep_memo()
    for index, ref in enumerate(refs):
        yield index, [run_ref_multi(ref, configs, memo)]


def _stream_blocks(
    executor: Executor,
    blocks: Sequence[Tuple[int, List]],
    window: int,
    shard_fn,
    *shard_args,
) -> Iterator[Tuple[int, List]]:
    """Submit task blocks with a bounded lookahead; yield in completion order.

    ``shard_fn(chunk, *shard_args)`` is the picklable unit of work --
    :func:`~repro.sim.kernel.run_shard` with a config for single runs,
    :func:`~repro.sim.kernel.run_shard_multi` with a config list for
    sweeps.

    ``imap``-style backpressure: at most ``window`` blocks may be past
    the *yield frontier* (the earliest block not yet yielded) at any
    time -- submitted, running, or completed-and-yielded out of order.
    Since the reducer's fold frontier trails the yield frontier by at
    most the blocks we yielded out of order, its reorder buffer can
    never hold more than ``window`` blocks, no matter how long a slow
    early shard straggles.
    """
    total = len(blocks)
    pending: dict = {}  # future -> position in ``blocks``
    yielded = [False] * total
    frontier = 0  # first position not yet yielded
    next_submit = 0
    while next_submit < total or pending:
        # Every pending future sits in [frontier, next_submit), so this
        # single guard also caps len(pending) below ``window``.
        while next_submit < total and next_submit < frontier + window:
            start, chunk = blocks[next_submit]
            pending[executor.submit(shard_fn, chunk, *shard_args)] = next_submit
            next_submit += 1
        done, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            position = pending.pop(future)
            yielded[position] = True
            yield blocks[position][0], future.result()
        while frontier < total and yielded[frontier]:
            frontier += 1


class ExecutionBackend(ABC):
    """Strategy for executing swarm kernels over a task list."""

    #: Stable identifier, usable as ``SimulationConfig(backend=...)``.
    name: str = "abstract"

    @abstractmethod
    def map_swarms(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        """Run every task, returning outputs **in task order**.

        Accepts a lazy :class:`~repro.sim.grouping.TaskPlan` or a plain
        task sequence.  Implementations may execute in any placement
        and completion order, but must restore task order so the
        caller's reduction is deterministic.
        """

    def iter_outputs(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> Iterator[OutputBlock]:
        """Yield ``(start_index, outputs)`` blocks as they complete.

        The streaming counterpart of :meth:`map_swarms`: blocks may be
        yielded in any completion order, but together they must cover
        the task list exactly once in contiguous runs, tagged with the
        task index of each run's first output so the
        :class:`~repro.sim.reduce.StreamingReducer` can restore the
        canonical fold order.  Implementations bound how many blocks
        are in flight past the earliest unyielded block, which is what
        keeps the reducer's reorder buffer (and hence coordinator
        memory) bounded.

        This base implementation delegates to :meth:`map_swarms` as one
        degenerate block, so third-party backends keep working before
        they grow a real streaming path.
        """
        plan = as_task_plan(tasks)
        if len(plan) == 0:
            return
        yield 0, self.map_swarms(plan, config)

    def map_swarms_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> List[MultiSwarmOutput]:
        """Run every task under every sweep config, **in task order**.

        The fan-out half of the sweep amortization
        (:func:`~repro.sim.kernel.run_swarm_multi`): each task's
        sessions are resolved once and swept for all K configs, so the
        per-task cost -- pickling, shard decode, event-schedule build,
        membership timeline -- is paid once instead of K times.  The
        base implementation runs inline; parallel backends override it
        to ship one task ref + K config deltas per worker round-trip.
        Inline runs share one sweep-scoped allocation memo across tasks.
        """
        plan = as_task_plan(tasks)
        memo = sweep_memo()
        return [run_ref_multi(ref, configs, memo) for ref in plan.refs()]

    def iter_outputs_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> Iterator[MultiOutputBlock]:
        """Yield ``(start_index, multi outputs)`` blocks as they complete.

        The streaming counterpart of :meth:`map_swarms_multi`, with the
        same block contract as :meth:`iter_outputs` (contiguous runs
        covering the task list exactly once, bounded in-flight window).
        The base implementation streams inline one task at a time, so
        at most one task's K outputs are resident beyond the reducer.
        """
        return _iter_single_tasks_multi(as_task_plan(tasks).refs(), configs)


class SerialBackend(ExecutionBackend):
    """Run every swarm in the calling thread, in task order."""

    name = "serial"

    def map_swarms(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        plan = as_task_plan(tasks)
        return [run_ref(ref, config) for ref in plan.refs()]

    def iter_outputs(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> Iterator[OutputBlock]:
        """One task at a time, lazily: exactly one output ever resident."""
        return _iter_single_tasks(as_task_plan(tasks).refs(), config)


class ThreadBackend(ExecutionBackend):
    """Run swarms on a thread pool (shared-nothing, no pickling).

    Task refs resolve inside the pool threads; with external grouping
    the threads decode their extents through one shared store reader
    (positional reads, no shared seek state), so decoding parallelises
    along with the sweep.
    """

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers or _default_workers()

    def map_swarms(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        refs = as_task_plan(tasks).refs()
        if not refs:
            return []
        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            return list(
                executor.map(lambda ref: run_ref(ref, config), refs)
            )

    def iter_outputs(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> Iterator[OutputBlock]:
        """Single-task blocks over the pool, ``workers + 1`` in flight."""
        refs = as_task_plan(tasks).refs()
        if not refs:
            return
        blocks = [(index, [ref]) for index, ref in enumerate(refs)]
        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            yield from _stream_blocks(
                executor, blocks, self.workers + 1, run_shard, config
            )

    def map_swarms_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> List[MultiSwarmOutput]:
        refs = as_task_plan(tasks).refs()
        if not refs:
            return []
        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            return list(
                executor.map(lambda ref: run_ref_multi(ref, configs), refs)
            )

    def iter_outputs_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> Iterator[MultiOutputBlock]:
        """Single-task sweep blocks over the pool, ``workers + 1`` in flight."""
        refs = as_task_plan(tasks).refs()
        if not refs:
            return
        blocks = [(index, [ref]) for index, ref in enumerate(refs)]
        with ThreadPoolExecutor(max_workers=self.workers) as executor:
            yield from _stream_blocks(
                executor, blocks, self.workers + 1, run_shard_multi, configs
            )


class ProcessPoolBackend(ExecutionBackend):
    """Run swarm shards on worker processes.

    Tasks are interleaved round-robin into ``shards_per_worker x
    workers`` shards (task ``i`` goes to shard ``i mod n``), submitted
    concurrently, and reassembled into task order before returning.

    What crosses the process boundary is the plan's *refs*: resident
    tasks under memory grouping, but under external grouping just
    ``(path, offset, length, key)`` extent handles -- each worker opens
    the shard file itself and decodes only its own byte ranges
    (:func:`~repro.sim.kernel.run_ref`), so the coordinator's
    session-pickling hot path disappears entirely.

    Workloads below ``min_sessions`` run inline instead: spawning a
    pool and pickling tasks costs more than sweeping a small trace
    (e.g. the per-ISP exemplar subtraces of Fig. 2), and results are
    bit-for-bit identical either way.

    The worker pool is created lazily on first parallel use and then
    **kept alive across** ``map_swarms`` **calls**, so drivers that run
    many simulations through one backend (or one Simulator) pay pool
    startup once.  Call :meth:`close` (or rely on garbage collection /
    interpreter exit) to release the workers.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        shards_per_worker: int = 4,
        min_sessions: int = 5_000,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if shards_per_worker < 1:
            raise ValueError(
                f"shards_per_worker must be >= 1, got {shards_per_worker!r}"
            )
        if min_sessions < 0:
            raise ValueError(f"min_sessions must be >= 0, got {min_sessions!r}")
        self.workers = workers or _default_workers()
        self.shards_per_worker = shards_per_worker
        self.min_sessions = min_sessions
        self._executor: Optional[ProcessPoolExecutor] = None

    def close(self) -> None:
        """Shut down the worker pool (recreated lazily if used again)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def map_swarms(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        plan = as_task_plan(tasks)
        num_tasks = len(plan)
        if num_tasks == 0:
            return []
        num_shards = min(num_tasks, self.workers * self.shards_per_worker)
        total_sessions = sum(plan.session_counts)
        if num_shards <= 1 or self.workers <= 1 or total_sessions < self.min_sessions:
            return [run_ref(ref, config) for ref in plan.refs()]
        refs = plan.refs()
        shard_indices = [
            range(offset, num_tasks, num_shards) for offset in range(num_shards)
        ]
        outputs: List[Optional[SwarmOutput]] = [None] * num_tasks
        try:
            executor = self._pool()
            futures = [
                executor.submit(run_shard, [refs[i] for i in indices], config)
                for indices in shard_indices
            ]
            for indices, future in zip(shard_indices, futures):
                for i, output in zip(indices, future.result()):
                    outputs[i] = output
        except BrokenProcessPool:
            self.close()  # next call starts a fresh pool
            raise
        return outputs  # type: ignore[return-value] - every slot is filled

    def iter_outputs(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> Iterator[OutputBlock]:
        """Contiguous session-balanced shards, ``workers + 1`` in flight.

        Small workloads (below ``min_sessions``) stream inline one task
        at a time instead, exactly like :class:`SerialBackend` -- same
        results, no pool spawn, and still O(1) resident outputs.

        Unlike the batched path's fixed shard count, the streaming
        shard count *grows* with the trace so that each shard carries
        at most ~``min_sessions`` sessions: a resident shard's output
        size is then bounded by a constant, and with the ``workers +
        1`` in-flight window the coordinator's resident memory stays
        O(workers), not O(trace).
        """
        plan = as_task_plan(tasks)
        if len(plan) == 0:
            return
        total_sessions = sum(plan.session_counts)
        per_shard_quantum = max(1, self.min_sessions)
        num_shards = min(
            len(plan),
            max(
                self.workers * self.shards_per_worker,
                -(-total_sessions // per_shard_quantum),  # ceil division
            ),
        )
        if (
            self.workers <= 1
            or total_sessions < self.min_sessions
            or num_shards <= 1
        ):
            yield from _iter_single_tasks(plan.refs(), config)
            return
        blocks = contiguous_blocks(plan.refs(), num_shards)
        try:
            yield from _stream_blocks(
                self._pool(), blocks, self.workers + 1, run_shard, config
            )
        except BrokenProcessPool:
            self.close()  # next call starts a fresh pool
            raise

    def map_swarms_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> List[MultiSwarmOutput]:
        """Sweep-shard the task list over the pool, one ref set + K configs.

        Mirrors :meth:`map_swarms`, but each shard round-trip carries the
        config *list* once and returns K outputs per task -- pickling and
        (under external grouping) shard decode amortize K-fold.  The
        inline fallback weighs the workload as ``sessions x configs``,
        since that is the actual sweep cost a pool spawn competes with.
        """
        plan = as_task_plan(tasks)
        num_tasks = len(plan)
        if num_tasks == 0:
            return []
        num_shards = min(num_tasks, self.workers * self.shards_per_worker)
        total_sessions = sum(plan.session_counts)
        if (
            num_shards <= 1
            or self.workers <= 1
            or total_sessions * max(1, len(configs)) < self.min_sessions
        ):
            memo = sweep_memo()
            return [run_ref_multi(ref, configs, memo) for ref in plan.refs()]
        refs = plan.refs()
        shard_indices = [
            range(offset, num_tasks, num_shards) for offset in range(num_shards)
        ]
        outputs: List[Optional[MultiSwarmOutput]] = [None] * num_tasks
        try:
            executor = self._pool()
            futures = [
                executor.submit(run_shard_multi, [refs[i] for i in indices], configs)
                for indices in shard_indices
            ]
            for indices, future in zip(shard_indices, futures):
                for i, output in zip(indices, future.result()):
                    outputs[i] = output
        except BrokenProcessPool:
            self.close()  # next call starts a fresh pool
            raise
        return outputs  # type: ignore[return-value] - every slot is filled

    def iter_outputs_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> Iterator[MultiOutputBlock]:
        """Contiguous sweep shards, ``workers + 1`` in flight.

        The shard quantum shrinks with the config count: a resident
        sweep block holds K outputs per task, so bounding the per-shard
        session count at ``min_sessions / K`` keeps the coordinator's
        resident-output footprint at the single-run level.
        """
        plan = as_task_plan(tasks)
        if len(plan) == 0:
            return
        num_configs = max(1, len(configs))
        total_sessions = sum(plan.session_counts)
        per_shard_quantum = max(1, self.min_sessions // num_configs)
        num_shards = min(
            len(plan),
            max(
                self.workers * self.shards_per_worker,
                -(-total_sessions // per_shard_quantum),  # ceil division
            ),
        )
        if (
            self.workers <= 1
            or total_sessions * num_configs < self.min_sessions
            or num_shards <= 1
        ):
            yield from _iter_single_tasks_multi(plan.refs(), configs)
            return
        blocks = contiguous_blocks(plan.refs(), num_shards)
        try:
            yield from _stream_blocks(
                self._pool(), blocks, self.workers + 1, run_shard_multi, configs
            )
        except BrokenProcessPool:
            self.close()  # next call starts a fresh pool
            raise


class DistributedBackend(ExecutionBackend):
    """Run swarm shards on worker processes over a file-based work queue.

    The multi-host counterpart of :class:`ProcessPoolBackend`: instead
    of a pipe to a local executor, each invocation publishes a *job*
    under ``queue_dir`` -- a spec (config or sweep configs), a grouping
    handoff (``plan.json``, see
    :func:`repro.sim.grouping.plan_handoff`), and one crash-safe work
    item per contiguous session-balanced task block -- and collects
    result files as independent workers (``python -m
    repro.sim.worker``) claim, run and ack them.  Workers need nothing
    from the coordinator but shared storage: the queue directory, and
    (under external grouping) the sorted shard file the
    :class:`~repro.sim.grouping.ExtentTaskRef` values point into.

    Fault tolerance: claims carry leases that live workers renew; the
    coordinator requeues any item whose lease expires (worker killed
    mid-task), honours results written by workers that died before
    acking, fails fast on poisoned items parked in ``failed/``, and
    raises if an item keeps bouncing (``max_attempts``) or nothing at
    all makes progress for ``progress_timeout`` seconds.  Because
    kernels are pure and result blocks fold in canonical task order,
    every recovery path is bit-for-bit invisible in the result.

    Args:
        workers: local worker processes to spawn (default: CPU count).
            The spawned fleet persists across runs (like the process
            pool) until :meth:`close`.
        queue_dir: the shared queue root.  ``None`` uses a private
            temporary directory (single-host convenience); point it at
            shared storage and start extra workers on other hosts to
            scale out -- the coordinator happily feeds both its own
            and foreign workers.
        spawn: set False to spawn no local workers and rely entirely
            on externally launched ones (``workers`` then only sizes
            the streaming window).
        lease_timeout: seconds an unrenewed claim may age before the
            coordinator requeues it.  Renewal runs every third of
            this, so only dead (not slow) workers trip it.
        poll_interval: coordinator/worker scan period in seconds.
        shards_per_worker: target task blocks per worker (same
            balancing role as in :class:`ProcessPoolBackend`).
        shard_quantum: streaming-path cap on sessions per block, so
            resident result blocks stay O(1)-sized (the sweep path
            divides it by the config count, like the process pool).
        progress_timeout: seconds without any activity -- no new
            result, no requeue, and no live (in-lease) claim -- before
            the coordinator gives up (e.g. no worker can reach the
            queue).  A claim kept alive by lease renewal counts as
            activity, so long-running kernels never trip this.
        max_attempts: executions allowed per item before the
            coordinator declares it poisoned.
        compact_every: collected results are folded into the job's
            append-only ``results.pack`` every this many items
            (0: never), keeping huge jobs from drowning the results
            directory in loose files.
    """

    name = "distributed"

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_dir: Optional[Union[str, Path]] = None,
        *,
        spawn: bool = True,
        lease_timeout: float = 30.0,
        poll_interval: float = 0.05,
        shards_per_worker: int = 4,
        shard_quantum: int = 5_000,
        progress_timeout: float = 300.0,
        max_attempts: int = 5,
        compact_every: int = 256,
    ) -> None:
        # State first: __del__ -> close() must work even if validation
        # below raises on a half-constructed instance.
        self._queue_root = Path(queue_dir) if queue_dir is not None else None
        self._owned_root: Optional[Path] = None
        self._procs: List[subprocess.Popen] = []
        self._spawned = 0
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout!r}")
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval!r}")
        if shards_per_worker < 1:
            raise ValueError(
                f"shards_per_worker must be >= 1, got {shards_per_worker!r}"
            )
        if shard_quantum < 1:
            raise ValueError(f"shard_quantum must be >= 1, got {shard_quantum!r}")
        if progress_timeout <= 0:
            raise ValueError(
                f"progress_timeout must be > 0, got {progress_timeout!r}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts!r}")
        if compact_every < 0:
            raise ValueError(
                f"compact_every must be >= 0, got {compact_every!r}"
            )
        self.workers = workers or _default_workers()
        self.spawn = spawn
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.shards_per_worker = shards_per_worker
        self.shard_quantum = shard_quantum
        self.progress_timeout = progress_timeout
        self.max_attempts = max_attempts
        #: Fold collected results into the job's ``results.pack`` every
        #: this many items, so a million-block job never leaves a
        #: million loose ``.out`` files in one directory (shared
        #: filesystems degrade badly on huge directories).  0 disables
        #: compaction.
        self.compact_every = compact_every
        #: Stale-lease requeues performed during the most recent job --
        #: how many work items had to be recovered from dead workers.
        #: 0 on a healthy run; tests and benchmarks assert fault
        #: handling through this.
        self.last_requeues = 0
        #: Optional stable name for the *next* job's directory
        #: (``job-<token>`` instead of a fresh timestamped id).  Set by
        #: the always-on service before each epoch run: if a directory
        #: with that name already exists -- a previous coordinator was
        #: killed mid-epoch -- the job is **resumed**: only items not
        #: already known to the queue are enqueued, and acked results
        #: from the dead run are collected instead of re-run.  The
        #: caller owns token uniqueness (the service scopes tokens by a
        #: per-state-dir service id).  ``None``: historical one-shot
        #: job naming.
        self.job_token: Optional[str] = None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Terminate spawned workers; delete the queue root if owned."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                proc.kill()
                proc.wait()
        self._procs = []
        if self._owned_root is not None:
            shutil.rmtree(self._owned_root, ignore_errors=True)
            self._owned_root = None
            self._queue_root = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        self.close()

    def _root(self) -> Path:
        if self._queue_root is None:
            self._owned_root = Path(tempfile.mkdtemp(prefix="repro-queue-"))
            self._queue_root = self._owned_root
        self._queue_root.mkdir(parents=True, exist_ok=True)
        return self._queue_root

    def live_workers(self) -> int:
        """How many of the spawned local workers are still alive."""
        return sum(1 for proc in self._procs if proc.poll() is None)

    def _ensure_workers(self, root: Path) -> None:
        """Top the spawned fleet up to ``workers`` (first run, or reuse)."""
        if not self.spawn:
            return
        self._procs = [proc for proc in self._procs if proc.poll() is None]
        while len(self._procs) < self.workers:
            self._procs.append(self._spawn_worker(root))

    def _spawn_worker(self, root: Path) -> subprocess.Popen:
        import repro

        package_root = Path(repro.__file__).resolve().parent.parent
        env = os.environ.copy()
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            f"{package_root}{os.pathsep}{existing}" if existing else str(package_root)
        )
        self._spawned += 1
        if faults.PLAN_ENV_VAR in env:
            # Chaos runs: decorrelate each worker's fault streams so the
            # fleet doesn't crash in lockstep (still deterministic: the
            # salt is the spawn ordinal).
            env[faults.SALT_ENV_VAR] = f"worker-{self._spawned}"
        command = [
            sys.executable,
            "-m",
            "repro.sim.worker",
            "--queue-dir",
            str(root),
            "--poll-interval",
            str(self.poll_interval),
            "--lease-timeout",
            str(self.lease_timeout),
        ]
        return subprocess.Popen(command, env=env)

    # -- job plumbing ---------------------------------------------------

    def _streaming_shards(self, plan: TaskPlan, num_configs: int = 1) -> int:
        """Block count for the streaming paths (bounded block size)."""
        total_sessions = sum(plan.session_counts)
        quantum = max(1, self.shard_quantum // max(1, num_configs))
        return min(
            len(plan),
            max(
                self.workers * self.shards_per_worker,
                -(-total_sessions // quantum),  # ceil division
            ),
        )

    def _run_job(
        self,
        blocks: Sequence[Tuple[int, List]],
        spec: JobSpec,
        window: int,
        handoff: Optional[Dict] = None,
    ) -> Iterator[Tuple[int, List]]:
        """Publish one job, collect its result blocks, clean up.

        With :attr:`job_token` set and the token's directory already on
        disk, the job is resumed: the spec and handoff are re-published
        (byte-identical -- blocks are a deterministic function of the
        plan), a stale ``DONE`` marker from a half-retired run is
        lifted so workers serve the job again, and only items absent
        from every queue state are enqueued.
        """
        root = self._root()
        if self.job_token is not None:
            job_dir = root / f"job-{self.job_token}"
        else:
            job_dir = root / f"job-{time.time_ns():020d}-{uuid.uuid4().hex[:8]}"
        self.last_requeues = 0
        resuming = self.job_token is not None and job_dir.exists()
        queue = WorkQueue(job_dir, lease_timeout=self.lease_timeout)
        queue.write_spec(spec)
        if handoff is not None:
            (job_dir / WorkQueue.PLAN_FILENAME).write_text(
                json.dumps(handoff, indent=2) + "\n"
            )
        known = queue.known_item_ids() if resuming else frozenset()
        if resuming:
            (job_dir / WorkQueue.DONE_FILENAME).unlink(missing_ok=True)
        for item in make_items(blocks):
            if item.item_id not in known:
                queue.put(item)
        self._ensure_workers(root)
        try:
            yield from self._collect(queue, blocks, window)
        finally:
            queue.mark_done()
            shutil.rmtree(job_dir, ignore_errors=True)

    def _collect(
        self,
        queue: WorkQueue,
        blocks: Sequence[Tuple[int, List]],
        window: int,
    ) -> Iterator[Tuple[int, List]]:
        """Yield result blocks in completion order, window-bounded.

        The same invariant as :func:`_stream_blocks`, shifted to disk:
        a block is loaded and yielded only while it is fewer than
        ``window`` positions past the earliest unyielded block, so the
        reducer's reorder buffer -- the only place results are resident
        -- never exceeds ``window``.  Results completed beyond the
        window stay on disk (free) until the frontier catches up.
        """
        total = len(blocks)
        yielded = [False] * total
        frontier = 0
        ready: Set[int] = set()  # result on disk, not yet yielded
        seen: Set[str] = set()
        attempts: Dict[str, int] = {}
        compactable: List[str] = []  # yielded, not yet folded into the pack
        last_progress = time.monotonic()
        while frontier < total:
            progress = False
            for item_id in queue.result_ids() - seen:
                seen.add(item_id)
                ready.add(position_of(item_id))
                progress = True
            while True:
                eligible = sorted(p for p in ready if p < frontier + window)
                if not eligible:
                    break
                for position in eligible:
                    ready.discard(position)
                    yielded[position] = True
                    yield blocks[position][0], queue.load_result(
                        item_id_for(position)
                    )
                    compactable.append(item_id_for(position))
                while frontier < total and yielded[frontier]:
                    frontier += 1
            if self.compact_every and len(compactable) >= self.compact_every:
                queue.compact_results(compactable)
                compactable = []
            if frontier >= total:
                break
            failures = queue.failed_items()
            if failures:
                item_id, error = sorted(failures.items())[0]
                detail = ""
                if getattr(error, "exception_type", None):
                    detail = (
                        f" [{error.exception_type}, attempt {error.attempts}"
                        f", worker {error.worker_id}]"
                    )
                raise RuntimeError(
                    f"distributed worker gave up on {item_id}: {error}{detail}"
                )
            for item_id in queue.requeue_stale():
                attempts[item_id] = attempts.get(item_id, 0) + 1
                self.last_requeues += 1
                progress = True  # requeue IS progress (the lease moved)
                if attempts[item_id] >= self.max_attempts:
                    raise RuntimeError(
                        f"work item {item_id} requeued {attempts[item_id]} "
                        "times without completing; giving up"
                    )
            if not progress and queue.claimed_ids():
                # A claim that survived requeue_stale is within its
                # lease: either a live worker is renewing it (a long
                # kernel run is work, not a stall), or it will go stale
                # and be requeued -- which registers as progress above
                # -- within one lease_timeout.  Only a queue with no
                # results, no requeues AND no live claims is stalled.
                progress = True
            if self.spawn and self.live_workers() < self.workers:
                # Fleet self-healing: a worker that died mid-job
                # (crash, OOM, --max-rss self-limit) is replaced while
                # the job is still running, not at the next job.
                self._ensure_workers(queue.job_dir.parent)
            if progress:
                last_progress = time.monotonic()
            elif time.monotonic() - last_progress > self.progress_timeout:
                raise RuntimeError(
                    f"distributed run stalled for {self.progress_timeout:.0f}s: "
                    f"{len(queue.pending_ids())} pending / "
                    f"{len(queue.claimed_ids())} claimed items, "
                    f"{self.live_workers()} live local workers "
                    f"(queue: {queue.job_dir})"
                )
            else:
                time.sleep(self.poll_interval)

    # -- ExecutionBackend API -------------------------------------------

    def map_swarms(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> List[SwarmOutput]:
        plan = as_task_plan(tasks)
        num_tasks = len(plan)
        if num_tasks == 0:
            return []
        blocks = contiguous_blocks(
            plan.refs(), min(num_tasks, self.workers * self.shards_per_worker)
        )
        outputs: List[Optional[SwarmOutput]] = [None] * num_tasks
        spec = JobSpec(
            kind="single", config=config, lease_timeout=self.lease_timeout
        )
        for start, outs in self._run_job(
            blocks, spec, window=len(blocks), handoff=plan_handoff(plan)
        ):
            outputs[start : start + len(outs)] = outs
        return outputs  # type: ignore[return-value] - every slot is filled

    def iter_outputs(
        self, tasks: TaskSource, config: "SimulationConfig"
    ) -> Iterator[OutputBlock]:
        plan = as_task_plan(tasks)
        if len(plan) == 0:
            return
        blocks = contiguous_blocks(plan.refs(), self._streaming_shards(plan))
        spec = JobSpec(
            kind="single", config=config, lease_timeout=self.lease_timeout
        )
        yield from self._run_job(
            blocks, spec, window=self.workers + 1, handoff=plan_handoff(plan)
        )

    def map_swarms_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> List[MultiSwarmOutput]:
        plan = as_task_plan(tasks)
        num_tasks = len(plan)
        if num_tasks == 0:
            return []
        blocks = contiguous_blocks(
            plan.refs(), min(num_tasks, self.workers * self.shards_per_worker)
        )
        outputs: List[Optional[MultiSwarmOutput]] = [None] * num_tasks
        spec = JobSpec(
            kind="sweep", configs=tuple(configs), lease_timeout=self.lease_timeout
        )
        for start, outs in self._run_job(
            blocks, spec, window=len(blocks), handoff=plan_handoff(plan)
        ):
            outputs[start : start + len(outs)] = outs
        return outputs  # type: ignore[return-value] - every slot is filled

    def iter_outputs_multi(
        self, tasks: TaskSource, configs: Sequence["SimulationConfig"]
    ) -> Iterator[MultiOutputBlock]:
        plan = as_task_plan(tasks)
        if len(plan) == 0:
            return
        blocks = contiguous_blocks(
            plan.refs(), self._streaming_shards(plan, len(configs))
        )
        spec = JobSpec(
            kind="sweep", configs=tuple(configs), lease_timeout=self.lease_timeout
        )
        yield from self._run_job(
            blocks, spec, window=self.workers + 1, handoff=plan_handoff(plan)
        )


#: The registry of selectable backend names -- the single source of
#: truth consumed by ``SimulationConfig`` validation and the CLI's
#: ``--backend`` choices.
BACKEND_NAMES: tuple = (
    SerialBackend.name,
    ThreadBackend.name,
    ProcessPoolBackend.name,
    DistributedBackend.name,
)


def resolve_backend(
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    queue_dir: Optional[str] = None,
) -> ExecutionBackend:
    """Pick a backend from ``SimulationConfig(backend=..., workers=...)``.

    * an explicit name (one of :data:`BACKEND_NAMES`) wins;
    * otherwise ``workers`` > 1 selects the process pool;
    * otherwise the serial baseline.

    ``queue_dir`` reaches only the distributed backend (the engine
    validates it is never set for the others).
    """
    if backend is None:
        if workers is not None and workers > 1:
            return ProcessPoolBackend(workers)
        return SerialBackend()
    if backend == SerialBackend.name:
        return SerialBackend()
    if backend == ThreadBackend.name:
        return ThreadBackend(workers)
    if backend == ProcessPoolBackend.name:
        return ProcessPoolBackend(workers)
    if backend == DistributedBackend.name:
        return DistributedBackend(workers, queue_dir)
    raise ValueError(
        f"unknown backend {backend!r}; choose from {', '.join(BACKEND_NAMES)}"
    )
