"""ASCII line/scatter charts for terminal experiment reports.

The paper's figures are log-x line charts and CDFs; the benchmark
harness reproduces their *shape* directly in the terminal so a reader
can eyeball who wins and where the crossovers fall without a plotting
stack.  Markers from later series overwrite earlier ones on collisions.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

__all__ = ["ascii_chart"]

_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 18,
    log_x: bool = False,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """Render (x, y) series as an ASCII chart.

    Args:
        series: name -> list of (x, y) points; each series gets a marker.
        width: plot area width in characters.
        height: plot area height in rows.
        log_x: use a log10 x axis (the paper's capacity axes are log).
        title: optional heading.
        y_label: short y-axis description shown in the legend line.

    Returns:
        The chart as a single string.

    Raises:
        ValueError: when there are no points, or log_x with x <= 0.
    """
    points_by_name = {name: list(pts) for name, pts in series.items() if pts}
    if not points_by_name:
        raise ValueError("nothing to plot: every series is empty")
    if width < 8 or height < 4:
        raise ValueError(f"plot area too small: {width}x{height}")

    def x_of(value: float) -> float:
        if log_x:
            if value <= 0:
                raise ValueError(f"log_x requires x > 0, got {value!r}")
            return math.log10(value)
        return value

    xs = [x_of(x) for pts in points_by_name.values() for x, _ in pts]
    ys = [y for pts in points_by_name.values() for _, y in pts]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for index, (name, pts) in enumerate(points_by_name.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            col = int((x_of(x) - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    out: List[str] = []
    if title:
        out.append(title)
    prefix = f"  [{y_label}]  " if y_label else "  "
    out.append(prefix + "   ".join(legend))
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = top_label.rjust(label_width)
        elif i == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        out.append(f"{label} |{''.join(row_cells)}")
    x_lo = f"{(10 ** x_min if log_x else x_min):.3g}"
    x_hi = f"{(10 ** x_max if log_x else x_max):.3g}"
    axis = " " * label_width + " +" + "-" * width
    out.append(axis)
    out.append(
        " " * (label_width + 2)
        + x_lo
        + " " * max(1, width - len(x_lo) - len(x_hi))
        + x_hi
        + ("  (log)" if log_x else "")
    )
    return "\n".join(out)
