"""Analysis toolkit: distributions, aggregates, theory-vs-sim comparison,
and terminal rendering for the experiment reports."""

from repro.analysis.aggregates import (
    daily_theory_savings,
    median_item_savings,
    per_item_savings,
    top_share_of_savings,
    weighted_theory_savings,
)
from repro.analysis.comparison import ComparisonRow, ComparisonSummary, compare_series
from repro.analysis.distributions import (
    EmpiricalDistribution,
    ccdf_points,
    ecdf_points,
)
from repro.analysis.plots import ascii_chart
from repro.analysis.tables import format_value, render_table

__all__ = [
    "ComparisonRow",
    "ComparisonSummary",
    "EmpiricalDistribution",
    "ascii_chart",
    "ccdf_points",
    "compare_series",
    "daily_theory_savings",
    "ecdf_points",
    "format_value",
    "median_item_savings",
    "per_item_savings",
    "render_table",
    "top_share_of_savings",
    "weighted_theory_savings",
]
