"""Empirical distributions: ECDF, CCDF, quantiles.

The paper reports distributions twice: Fig. 3 plots CCDFs of per-swarm
capacities and savings over the catalogue, and Fig. 6 plots the CDF of
per-user carbon-credit transfers.  These helpers compute the standard
right-continuous empirical distribution functions used for both.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["EmpiricalDistribution", "ecdf_points", "ccdf_points"]


@dataclass(frozen=True)
class EmpiricalDistribution:
    """An immutable empirical distribution over a sample.

    Attributes:
        values: the sample, sorted ascending.
    """

    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("sample must be non-empty")
        if any(math.isnan(v) for v in self.values):
            raise ValueError("sample must not contain NaN")
        object.__setattr__(self, "values", tuple(sorted(self.values)))

    @classmethod
    def from_sample(cls, sample: Sequence[float]) -> "EmpiricalDistribution":
        return cls(values=tuple(sample))

    def __len__(self) -> int:
        return len(self.values)

    def cdf(self, x: float) -> float:
        """``P[X <= x]`` under the empirical measure."""
        return bisect.bisect_right(self.values, x) / len(self.values)

    def ccdf(self, x: float) -> float:
        """``P[X > x]`` -- the survival function plotted in Fig. 3."""
        return 1.0 - self.cdf(x)

    def quantile(self, q: float) -> float:
        """The smallest sample value with at least mass ``q`` below it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        if q == 0.0:
            return self.values[0]
        index = math.ceil(q * len(self.values)) - 1
        return self.values[max(index, 0)]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def min(self) -> float:
        return self.values[0]

    @property
    def max(self) -> float:
        return self.values[-1]

    def share_above(self, x: float) -> float:
        """Fraction of total *mass* carried by samples > x.

        Used for statements like "the top-1 % of items obtain 21-33 % of
        the savings": mass-weighted, not count-weighted.
        """
        total = sum(self.values)
        if total == 0.0:
            return 0.0
        return sum(v for v in self.values if v > x) / total


def ecdf_points(sample: Sequence[float]) -> List[Tuple[float, float]]:
    """``(x, P[X <= x])`` at each distinct sample value, ascending."""
    dist = EmpiricalDistribution.from_sample(sample)
    return [(x, dist.cdf(x)) for x in sorted(set(dist.values))]


def ccdf_points(sample: Sequence[float]) -> List[Tuple[float, float]]:
    """``(x, P[X > x])`` at each distinct sample value, ascending."""
    dist = EmpiricalDistribution.from_sample(sample)
    return [(x, dist.ccdf(x)) for x in sorted(set(dist.values))]
