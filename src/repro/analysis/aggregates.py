"""Aggregate statistics over simulation results.

Computes the summary quantities the paper's prose reports on top of the
figures: median per-item savings, the share of savings captured by the
most popular items, and weighted theory predictions for comparison with
daily simulated series (Fig. 4's "theo." lines).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.energy import EnergyModel
from repro.core.localisation import LayerProbabilities, LONDON_LAYERS
from repro.core.savings import SavingsModel
from repro.sim.accounting import baseline_energy_nj, hybrid_energy_nj
from repro.sim.policies import SwarmPolicy
from repro.sim.results import SimulationResult, SwarmResult
from repro.trace.events import SECONDS_PER_DAY, Trace

__all__ = [
    "per_item_savings",
    "median_item_savings",
    "top_share_of_savings",
    "weighted_theory_savings",
    "daily_theory_savings",
]


def per_item_savings(result: SimulationResult, model: EnergyModel) -> Dict[str, float]:
    """Simulated savings per content item (the Fig. 3-right sample)."""
    return {
        content_id: swarm.savings(model)
        for content_id, swarm in result.per_content_results().items()
    }


def median_item_savings(result: SimulationResult, model: EnergyModel) -> float:
    """Median per-item savings (paper: ~2 % for both models)."""
    values = sorted(per_item_savings(result, model).values())
    if not values:
        return 0.0
    return values[len(values) // 2]


def top_share_of_savings(
    result: SimulationResult,
    model: EnergyModel,
    top_fraction: float = 0.01,
) -> float:
    """Share of total *saved energy* captured by the top items.

    Items are ranked by saved energy (baseline minus hybrid); the paper
    reports the top-1 % capture 21 % (Baliga) / 33 % (Valancius).

    Returns 0.0 when nothing is saved system-wide.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction!r}")
    saved: List[float] = []
    for swarm in result.per_content_results().values():
        ledger = swarm.ledger
        saved.append(
            baseline_energy_nj(ledger, model) - hybrid_energy_nj(ledger, model)
        )
    total = sum(saved)
    if total <= 0.0:
        return 0.0
    saved.sort(reverse=True)
    top_n = max(1, int(len(saved) * top_fraction))
    return sum(saved[:top_n]) / total


def weighted_theory_savings(
    swarms: Iterable[SwarmResult],
    model: EnergyModel,
    *,
    upload_ratio: float = 1.0,
    layers: LayerProbabilities = LONDON_LAYERS,
) -> float:
    """Traffic-weighted Eq. 12 prediction over a set of swarms.

    Each swarm contributes ``S(c_measured)`` weighted by its demanded
    traffic -- the theoretical counterpart of an aggregate simulated
    savings number.
    """
    savings_model = SavingsModel(model, layers=layers, upload_ratio=upload_ratio)
    weighted = 0.0
    total = 0.0
    for swarm in swarms:
        traffic = swarm.ledger.demanded_bits
        if traffic <= 0.0:
            continue
        weighted += savings_model.savings(swarm.capacity) * traffic
        total += traffic
    return weighted / total if total > 0.0 else 0.0


def daily_theory_savings(
    trace: Trace,
    isp: str,
    model: EnergyModel,
    *,
    policy: Optional[SwarmPolicy] = None,
    upload_ratio: float = 1.0,
    layers: LayerProbabilities = LONDON_LAYERS,
) -> List[Tuple[int, float]]:
    """Fig. 4's "theo." series: per-day Eq. 12 predictions for one ISP.

    For each day, every swarm's capacity is measured from the trace
    (watch-seconds within the day / day length) and Eq. 12 is applied,
    weighted by the swarm's traffic that day.
    """
    policy = policy or SwarmPolicy()
    savings_model = SavingsModel(model, layers=layers, upload_ratio=upload_ratio)
    # (day, swarm_key) -> [watch_seconds, traffic_bits]
    buckets: Dict[Tuple[int, object], List[float]] = {}
    num_days = max(1, trace.num_days)
    for session in trace:
        if session.isp != isp:
            continue
        key = policy.key_for(session)
        first = int(session.start // SECONDS_PER_DAY)
        last = int((session.end - 1e-9) // SECONDS_PER_DAY)
        for day in range(first, min(last, num_days - 1) + 1):
            lo = max(session.start, day * SECONDS_PER_DAY)
            hi = min(session.end, (day + 1) * SECONDS_PER_DAY)
            seconds = max(hi - lo, 0.0)
            if seconds <= 0.0:
                continue
            bucket = buckets.setdefault((day, key), [0.0, 0.0])
            bucket[0] += seconds
            bucket[1] += seconds * session.bitrate

    per_day: Dict[int, List[float]] = {}
    for (day, _key), (watch_seconds, traffic) in buckets.items():
        capacity = watch_seconds / SECONDS_PER_DAY
        s = savings_model.savings(capacity)
        acc = per_day.setdefault(day, [0.0, 0.0])
        acc[0] += s * traffic
        acc[1] += traffic
    return sorted(
        (day, weighted / total if total > 0 else 0.0)
        for day, (weighted, total) in per_day.items()
    )
