"""Theory-vs-simulation comparison (the paper's Fig. 2/4 overlay claim).

The paper validates Eq. 12 by overlaying theoretical curves on simulated
points and noting they are "generally in good agreement".  This module
makes that claim quantitative: paired rows and summary error metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ComparisonRow", "ComparisonSummary", "compare_series"]


@dataclass(frozen=True)
class ComparisonRow:
    """One paired observation.

    Attributes:
        x: the shared abscissa (capacity, day, ...).
        simulated: the simulated value.
        theoretical: the model's prediction at the same ``x``.
    """

    x: float
    simulated: float
    theoretical: float

    @property
    def error(self) -> float:
        """Signed difference, simulated minus theoretical."""
        return self.simulated - self.theoretical

    @property
    def absolute_error(self) -> float:
        return abs(self.error)


@dataclass(frozen=True)
class ComparisonSummary:
    """Aggregate agreement metrics over paired rows.

    Attributes:
        rows: the underlying pairs.
        mean_absolute_error: mean |sim - theo|.
        max_absolute_error: worst-case |sim - theo|.
        rmse: root-mean-square error.
        bias: mean signed error (positive = simulation above theory).
    """

    rows: Tuple[ComparisonRow, ...]
    mean_absolute_error: float
    max_absolute_error: float
    rmse: float
    bias: float

    def within(self, tolerance: float) -> bool:
        """True when every pair agrees within ``tolerance`` (absolute)."""
        return self.max_absolute_error <= tolerance


def compare_series(
    simulated: Sequence[Tuple[float, float]],
    theoretical: Sequence[Tuple[float, float]],
) -> ComparisonSummary:
    """Pair two (x, y) series on x and summarise their disagreement.

    The x values must match pairwise (the usual case: both series were
    evaluated on the same sweep).

    Raises:
        ValueError: on length mismatch, mismatched x values, or empty
            input.
    """
    if not simulated or not theoretical:
        raise ValueError("both series must be non-empty")
    if len(simulated) != len(theoretical):
        raise ValueError(
            f"series lengths differ: {len(simulated)} vs {len(theoretical)}"
        )
    rows: List[ComparisonRow] = []
    for (xs, ys), (xt, yt) in zip(sorted(simulated), sorted(theoretical)):
        if not math.isclose(xs, xt, rel_tol=1e-9, abs_tol=1e-9):
            raise ValueError(f"x values differ: {xs} vs {xt}")
        rows.append(ComparisonRow(x=xs, simulated=ys, theoretical=yt))

    abs_errors = [row.absolute_error for row in rows]
    return ComparisonSummary(
        rows=tuple(rows),
        mean_absolute_error=sum(abs_errors) / len(rows),
        max_absolute_error=max(abs_errors),
        rmse=math.sqrt(sum(e * e for e in abs_errors) / len(rows)),
        bias=sum(row.error for row in rows) / len(rows),
    )
