"""Plain-text table rendering for experiment reports.

Every experiment driver and benchmark prints its results as monospace
tables (the closest a terminal gets to the paper's tables); this module
is the single renderer they share.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object, *, precision: int = 4) -> str:
    """Human-friendly cell formatting: floats trimmed, rest str()'d."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if value != value:  # NaN
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:.{precision}g}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned ASCII table.

    Args:
        headers: column names.
        rows: row cells; values are formatted with :func:`format_value`.
        title: optional heading printed above the table.
        precision: significant digits for float cells.

    Returns:
        The table as a single string (no trailing newline).
    """
    formatted: List[List[str]] = [
        [format_value(cell, precision=precision) for cell in row] for row in rows
    ]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in formatted)
    return "\n".join(out)
