"""Fig. 4: aggregate daily energy savings across ISPs over a month.

The paper plots daily system savings for ISPs 1, 4 and 5 over September
2013, simulated and theoretical, under both energy models; the biggest
ISP averages ~30 % (Valancius) / ~18 % (Baliga).  The theoretical series
applies Eq. 12 per swarm per day (capacity measured from the trace) and
weights by traffic.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.aggregates import daily_theory_savings
from repro.analysis.comparison import compare_series
from repro.analysis.plots import ascii_chart
from repro.analysis.tables import render_table
from repro.core.energy import builtin_models
from repro.core.savings import SavingsModel
from repro.experiments.config import ExperimentSettings, city_trace, paper_simulation
from repro.experiments.report import Report

__all__ = ["run_fig4", "FIG4_ISPS", "PAPER_MONTHLY_SESSIONS"]

#: The ISPs the paper plots (largest, a mid one and the smallest).
FIG4_ISPS: Tuple[str, ...] = ("ISP-1", "ISP-4", "ISP-5")

#: London sessions in the paper's Sep 2013 month (Table I) -- the
#: reference density for the capacity extrapolation.
PAPER_MONTHLY_SESSIONS = 23.5e6


def run_fig4(settings: ExperimentSettings) -> Report:
    """Reproduce Fig. 4 (both energy-model panels)."""
    report = Report(
        name="fig4",
        title=(
            "Aggregate daily energy savings across ISPs over the month, "
            "simulated vs analytical (paper Fig. 4)"
        ),
    )
    result = paper_simulation(settings)
    trace = city_trace(settings)

    data: Dict[str, Dict[str, object]] = {}
    for model in builtin_models():
        series: Dict[str, List[Tuple[float, float]]] = {}
        rows = []
        for isp in FIG4_ISPS:
            simulated = [(float(d), s) for d, s in result.daily_savings(isp, model)]
            theoretical = [
                (float(d), s)
                for d, s in daily_theory_savings(
                    trace, isp, model, upload_ratio=settings.upload_ratio
                )
            ]
            if not simulated:
                continue
            series[f"{isp} sim."] = simulated
            series[f"{isp} theo."] = theoretical
            summary = compare_series(simulated, theoretical)
            mean_sim = sum(s for _, s in simulated) / len(simulated)
            mean_theo = sum(s for _, s in theoretical) / len(theoretical)
            rows.append(
                [
                    isp,
                    round(mean_sim, 4),
                    round(mean_theo, 4),
                    round(summary.mean_absolute_error, 4),
                ]
            )
            data[f"{model.name}/{isp}"] = {
                "mean_sim": mean_sim,
                "mean_theo": mean_theo,
                "mae": summary.mean_absolute_error,
                "series_sim": simulated,
                "series_theo": theoretical,
            }
        if series:
            report.add(
                f"{model.name}: daily savings by ISP",
                ascii_chart(series, title=f"daily S, {model.name}", y_label="S"),
            )
            report.add(
                f"{model.name}: monthly means (paper: ~0.30 Valancius / "
                "~0.18 Baliga for the biggest ISP)",
                render_table(["ISP", "mean sim S", "mean theo S", "MAE"], rows),
            )

    # Whole-system numbers for the headline claim, plus the density
    # extrapolation: swarm capacity is an absolute quantity, so a 1:N
    # scale trace under-populates swarms by exactly N.  Scaling each
    # measured capacity back up by N and applying the (simulation-
    # validated) Eq. 12, traffic-weighted, estimates the full-density
    # system savings -- this recovers the paper's ~30 % / ~18 %.
    month_fraction = settings.days / 30.0
    density_factor = PAPER_MONTHLY_SESSIONS * month_fraction / max(len(trace), 1)
    headline = []
    for model in builtin_models():
        savings_model = SavingsModel(model, upload_ratio=settings.upload_ratio)
        weighted = 0.0
        total = 0.0
        for swarm in result.per_swarm.values():
            traffic = swarm.ledger.demanded_bits
            weighted += savings_model.savings(swarm.capacity * density_factor) * traffic
            total += traffic
        extrapolated = weighted / total if total else 0.0
        headline.append(
            [model.name, round(result.savings(model), 4), round(extrapolated, 4)]
        )
        data[f"extrapolated/{model.name}"] = extrapolated
    report.add(
        "Whole-system savings (paper headline: 24-48 %); extrapolation "
        f"rescales measured capacities x{density_factor:.1f} to the paper's "
        "trace density before applying Eq. 12",
        render_table(
            ["model", "system S (this scale)", "S at paper density (theo)"], headline
        ),
    )
    data["system"] = {m.name: result.savings(m) for m in builtin_models()}
    report.data = data
    return report
