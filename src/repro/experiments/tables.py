"""Reproduction of the paper's Tables I, III and IV.

* **Table I** -- dataset description: two generated "months" (different
  seeds standing in for Sep 2013 / Jul 2014) summarised by users, IPs
  and sessions.
* **Table III** -- localisation probabilities of the London ISP tree.
* **Table IV** -- the two energy parameter sets, including the check
  that the Valancius network figures equal hops x 150 nJ/bit.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.tables import render_table
from repro.core.energy import PER_HOP_NJ_PER_BIT, VALANCIUS_HOP_COUNTS, builtin_models
from repro.experiments.config import CITY_DEVICE_MIX, ExperimentSettings, city_trace
from repro.experiments.report import Report
from repro.topology.isp import ISPNetwork
from repro.trace.generator import TraceGenerator
from repro.trace.stats import summarise

__all__ = ["run_table1", "run_table3", "run_table4"]


def run_table1(settings: ExperimentSettings) -> Report:
    """Table I: dataset description for two generated months."""
    report = Report(
        name="table1",
        title="Description of the dataset (paper Table I; synthetic, ~1:20 scale)",
    )
    months = {
        "Sep 2013": settings,
        "Jul 2014": replace(
            settings,
            seed=settings.seed + 100,
            # The paper's second month is ~8 % busier (3.6M vs 3.3M users).
            num_users=int(settings.num_users * 1.08),
            expected_sessions=settings.expected_sessions * 1.03,
        ),
    }
    stats = {}
    for label, month_settings in months.items():
        if label == "Sep 2013":
            trace = city_trace(month_settings)
        else:
            trace = TraceGenerator(
                config=month_settings.city_config(), device_mix=CITY_DEVICE_MIX
            ).generate()
        stats[label] = summarise(trace)

    first = next(iter(stats.values()))
    headers = ["", *stats.keys()]
    rows = []
    for index, (metric, _) in enumerate(first.table_rows()):
        rows.append([metric, *(s.table_rows()[index][1] for s in stats.values())])
    report.add("Dataset description", render_table(headers, rows))
    report.data["stats"] = {
        label: {
            "users": s.num_users,
            "ips": s.num_ip_addresses,
            "sessions": s.num_sessions,
        }
        for label, s in stats.items()
    }
    return report


def run_table3(settings: ExperimentSettings) -> Report:
    """Table III: per-layer localisation probabilities."""
    report = Report(
        name="table3",
        title="Localisation probabilities of the metro hierarchy (paper Table III)",
    )
    isp = ISPNetwork("London-major-ISP")
    rows = [
        [row["layer"], row["count"], f"{row['probability']:.2%}"]
        for row in isp.localisation_table()
    ]
    report.add(
        "Layer probabilities (345 ExP / 9 PoP / 1 core)",
        render_table(["Layer", "Count", "Localisation Probability"], rows),
    )
    report.data["rows"] = isp.localisation_table()
    return report


def run_table4(settings: ExperimentSettings) -> Report:
    """Table IV: energy parameters of both built-in models."""
    report = Report(
        name="table4",
        title="Energy parameters, Valancius et al. and Baliga et al. (paper Table IV)",
    )
    models = builtin_models()
    labels = {
        "gamma_server": "Content Server (gamma_s)",
        "gamma_modem": "End User Modem (gamma_m)",
        "gamma_cdn_network": "Traditional CDN Network (gamma_cdn)",
        "gamma_exchange": "P2P Network within ExP (gamma_exp)",
        "gamma_pop": "P2P Network within PoP (gamma_pop)",
        "gamma_core": "P2P Network within Core (gamma_core)",
        "pue": "Power Efficiency (PUE)",
        "loss": "End-user energy loss (l)",
    }
    rows = []
    for key, label in labels.items():
        rows.append([label, *(model.as_table_row()[key] for model in models)])
    report.add(
        "Per-bit energy parameters (nJ/bit)",
        render_table(["Variable", *(m.name.title() for m in models)], rows),
    )

    hop_rows = [
        [name, hops, hops * PER_HOP_NJ_PER_BIT]
        for name, hops in sorted(VALANCIUS_HOP_COUNTS.items())
    ]
    report.add(
        "Valancius derivation check: network params are hops x 150 nJ/bit",
        render_table(["Path class", "Hops", "nJ/bit"], hop_rows),
    )
    report.data["models"] = {m.name: m.as_table_row() for m in models}
    return report
