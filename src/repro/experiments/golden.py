"""Golden regression fixtures for the paper's figure experiments.

Refactors like the parallel runtime (PR 1) or the streaming reduction
pipeline rely on "bit-for-bit identical" guarantees -- but a silent
drift in the *physics* would satisfy every internal-consistency test
while quietly changing the paper numbers.  The golden layer pins them:
the seeded :data:`GOLDEN_SETTINGS` mini-trace (~5K city sessions, a
week) is run once through every Fig. 2-6 experiment path, the
machine-readable ``Report.data`` payloads are canonicalised to JSON and
committed under ``tests/golden/``, and ``tests/test_golden.py`` compares
fresh runs against them **exactly** (floats are serialized with
``repr``-level round-tripping, so the comparison is bit-for-bit).

When a change *legitimately* moves the numbers (a physics fix, a new
accounting field), regenerate the fixtures and review the diff::

    PYTHONPATH=src python -m repro.experiments.golden tests/golden
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List

from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import run_experiment

__all__ = [
    "GOLDEN_SETTINGS",
    "GOLDEN_EXPERIMENTS",
    "canonicalize",
    "golden_payload",
    "write_golden",
]

#: The pinned mini-trace: ~5K expected city sessions over a week
#: (1.2M x 0.02 x 7/30 = 5.6K), small enough to simulate in seconds,
#: large enough that every figure path exercises real swarm dynamics.
GOLDEN_SETTINGS = ExperimentSettings(scale=0.02, days=7)

#: The experiment paths the fixtures pin (the paper's figures; the
#: tables are deterministic functions of the same simulation).
GOLDEN_EXPERIMENTS: List[str] = ["fig2", "fig3", "fig4", "fig5", "fig6"]


def canonicalize(value):
    """``Report.data`` as plain JSON types, deterministically.

    Dict keys become strings (sorted, so dict iteration order cannot
    leak into the fixture), tuples become lists; numbers pass through
    untouched -- ``json`` serializes floats with shortest-round-trip
    ``repr``, so equality of canonical forms is bit-for-bit equality
    of every float.
    """
    if isinstance(value, dict):
        return {
            str(key): canonicalize(value[key])
            for key in sorted(value, key=str)
        }
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise TypeError(
        f"report data contains a non-JSON value of type {type(value).__name__}: "
        f"{value!r}"
    )


def golden_payload(name: str) -> Dict:
    """One experiment's canonical payload under the golden settings."""
    report = run_experiment(name, GOLDEN_SETTINGS)
    return canonicalize(report.data)


def write_golden(out_dir: Path) -> List[Path]:
    """(Re)generate every fixture; returns the files written."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in GOLDEN_EXPERIMENTS:
        path = out_dir / f"{name}.json"
        payload = golden_payload(name)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        written.append(path)
    return written


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("tests/golden")
    for path in write_golden(target):
        print(f"wrote {path}")
