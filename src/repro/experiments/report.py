"""The report structure every experiment driver produces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Report"]


@dataclass
class Report:
    """A rendered experiment outcome plus its structured data.

    Attributes:
        name: experiment id ("table1", "fig2", ...).
        title: the paper artefact being reproduced.
        sections: ordered (heading, body) text blocks.
        data: machine-readable results, for tests and EXPERIMENTS.md.
    """

    name: str
    title: str
    sections: List[Tuple[str, str]] = field(default_factory=list)
    data: Dict[str, object] = field(default_factory=dict)

    def add(self, heading: str, body: str) -> None:
        """Append a section."""
        self.sections.append((heading, body))

    def render(self) -> str:
        """The full report as plain text."""
        out = [f"{'#' * 2} {self.name}: {self.title}"]
        for heading, body in self.sections:
            out.append("")
            out.append(f"--- {heading} ---")
            out.append(body)
        return "\n".join(out)
