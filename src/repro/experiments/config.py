"""Shared settings and cached artefacts for the experiment drivers.

Two traces drive everything (see DESIGN.md's per-experiment index):

* the **city trace** -- a month of the full synthetic catalogue over
  five ISPs; powers Table I and Figs. 3, 4, 6;
* the **exemplar trace** -- three pinned items at the paper's 100:10:1
  popularity ratios with a uniform 1.5 Mbps bitrate; powers Fig. 2.

``scale`` shrinks both proportionally (``quick()`` is what the test
suite and fast benchmark runs use).  Traces and simulation results are
memoised per settings value, so e.g. Figs. 3, 4 and 6 share one
simulation run exactly like they share one trace in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.backends import BACKEND_NAMES
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.grouping import GROUPING_MODES
from repro.sim.reduce import REDUCTION_MODES
from repro.sim.results import SimulationResult
from repro.trace.events import SECONDS_PER_DAY, Trace

if TYPE_CHECKING:  # deferred: sim.service imports are runtime-local
    from repro.sim.service import ServiceConfig
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.population import DeviceProfile

__all__ = [
    "ExperimentSettings",
    "city_trace",
    "exemplar_trace",
    "paper_simulation",
    "sweep_configs",
    "memo_key",
]

#: Fig. 2 exemplar ids and their expected monthly views at scale = 1.
#: The 100:10:1 ratio mirrors the paper's ~100K / ~10K / ~1K items
#: ("Bad Education" / "Question Time" / "What's to Eat").
TIER_VIEWS: Mapping[str, float] = {
    "tier-popular": 120_000.0,
    "tier-medium": 12_000.0,
    "tier-unpopular": 1_200.0,
}

#: Fig. 2 uses a single-bitrate mix: the theory curve assumes a uniform
#: beta, and the cost of mixing bitrates is measured separately by the
#: bitrate ablation benchmark.
UNIFORM_DEVICE_MIX: Tuple[DeviceProfile, ...] = (
    DeviceProfile("desktop", bitrate=1.5e6, share=1.0),
)

#: City-trace device mix: three bitrate classes around the paper's modal
#: 1.5 Mbps.  Fewer classes than the library default keeps sub-swarm
#: fragmentation comparable to the paper's "split based on average
#: bitrates" at our reduced population scale.
CITY_DEVICE_MIX: Tuple[DeviceProfile, ...] = (
    DeviceProfile("desktop", bitrate=1.5e6, share=0.70),
    DeviceProfile("tv", bitrate=3.0e6, share=0.20),
    DeviceProfile("mobile", bitrate=0.8e6, share=0.10),
)


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment driver.

    Attributes:
        scale: multiplies users and session counts; 1.0 is the headline
            configuration (a ~1:20 scale model of the paper's London
            month -- chosen so the *head* of the catalogue reaches the
            paper's per-item capacities: swarm capacity is an absolute
            quantity and cannot be preserved under uniform downscaling),
            smaller values give proportionally faster runs.
        days: trace length in days.
        seed: master seed for both traces.
        upload_ratio: the ``q / beta`` used outside Fig. 2's sweep.
        num_users: city population at scale 1.
        num_items: catalogue size at scale 1 (smaller than iPlayer's but
            with identical Zipf structure; per-item capacities matter,
            not the tail count).
        expected_sessions: expected city-trace sessions at scale 1; with
            600 Zipf(0.9) items the top item draws ~120K monthly views,
            i.e. capacity ~90, matching the paper's popular exemplar.
        workers: worker count for the simulation backend (``None`` or 1
            = serial; > 1 shards swarms over a process pool).  Results
            are bit-for-bit identical at any worker count, so this is a
            pure wall-clock knob.
        backend: execution backend name (see
            :data:`repro.sim.backends.BACKEND_NAMES`); ``None``
            auto-selects from ``workers``.  "distributed" runs swarm
            shards through the file-based work queue
            (:mod:`repro.sim.queue`), so experiments can fan out to
            workers on other hosts.  Bit-for-bit identical either way.
        queue_dir: shared work-queue directory for
            ``backend="distributed"`` (``None``: a run-scoped private
            queue with locally spawned workers).  Only meaningful with
            the distributed backend.
        reduction: shard-output reduction mode ("batched", "streaming"
            or "spill", see :data:`repro.sim.reduce.REDUCTION_MODES`);
            ``None`` uses the simulator default ("batched").  Results
            are bit-for-bit identical across modes, so like ``workers``
            this is a pure resource knob (coordinator memory).
        grouping: session-grouping mode ("memory" or "external", see
            :data:`repro.sim.grouping.GROUPING_MODES`); ``None`` uses
            the simulator default ("memory").  Bit-for-bit identical
            either way -- "external" bounds coordinator memory during
            grouping for month-of-London-scale traces.
        shard_dir: where external grouping keeps its sorted shard file
            (``None``: a run-scoped temporary directory).  Only
            meaningful with ``grouping="external"``.
    """

    scale: float = 1.0
    days: int = 30
    seed: int = 20130901
    upload_ratio: float = 1.0
    num_users: int = 60_000
    num_items: int = 600
    expected_sessions: float = 1_200_000.0
    workers: Optional[int] = None
    backend: Optional[str] = None
    queue_dir: Optional[str] = None
    reduction: Optional[str] = None
    grouping: Optional[str] = None
    shard_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0, got {self.scale!r}")
        if self.days < 1:
            raise ValueError(f"days must be >= 1, got {self.days}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, got {self.backend!r}"
            )
        if self.queue_dir is not None and self.backend != "distributed":
            raise ValueError(
                "queue_dir is only valid with backend='distributed', "
                f"got backend={self.backend!r}"
            )
        if self.reduction is not None and self.reduction not in REDUCTION_MODES:
            raise ValueError(
                f"reduction must be one of {REDUCTION_MODES}, got {self.reduction!r}"
            )
        if self.grouping is not None and self.grouping not in GROUPING_MODES:
            raise ValueError(
                f"grouping must be one of {GROUPING_MODES}, got {self.grouping!r}"
            )
        if self.shard_dir is not None and self.grouping != "external":
            raise ValueError(
                "shard_dir is only valid with grouping='external', "
                f"got grouping={self.grouping!r}"
            )

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """A fast configuration for tests and smoke benchmarks."""
        return cls(scale=0.05, days=7)

    # ------------------------------------------------------------------
    # Derived generator configs
    # ------------------------------------------------------------------

    def city_config(self) -> GeneratorConfig:
        """Generator config of the full-catalogue city trace."""
        return GeneratorConfig(
            num_users=max(100, int(self.num_users * self.scale)),
            num_items=max(20, int(self.num_items * min(1.0, self.scale * 4))),
            days=self.days,
            expected_sessions=self.expected_sessions * self.scale * (self.days / 30),
            seed=self.seed,
        )

    def exemplar_config(self) -> GeneratorConfig:
        """Generator config of the Fig. 2 exemplar trace.

        Only the three pinned tiers exist; their views scale with both
        ``scale`` and trace length so per-day dots stay meaningful.
        """
        factor = self.scale * (self.days / 30)
        return GeneratorConfig(
            num_users=max(100, int(self.num_users * self.scale)),
            num_items=len(TIER_VIEWS),
            days=self.days,
            expected_sessions=0.0,
            pinned_views={tier: views * factor for tier, views in TIER_VIEWS.items()},
            seed=self.seed + 1,
        )

    def simulation_config(
        self, upload_ratio: Optional[float] = None
    ) -> SimulationConfig:
        """Simulation config at a given (or the default) upload ratio."""
        ratio = self.upload_ratio if upload_ratio is None else upload_ratio
        return SimulationConfig(
            upload_ratio=ratio,
            workers=self.workers,
            backend=self.backend,
            queue_dir=self.queue_dir,
            reduction=self.reduction or "batched",
            grouping=self.grouping or "memory",
            shard_dir=self.shard_dir,
        )

    def service_config(
        self,
        epoch_seconds: float = SECONDS_PER_DAY,
        *,
        upload_ratio: Optional[float] = None,
        allowed_lateness: float = 0.0,
    ) -> "ServiceConfig":
        """Service-mode config over these settings' simulation knobs.

        The accounting horizon is pinned to the settings' trace length
        (``days`` worth of seconds) -- the fixed-horizon mode in which
        the service's cumulative result is bit-for-bit equal to the
        batch run of the same trace (see :mod:`repro.sim.service`).
        """
        from repro.sim.service import ServiceConfig

        return ServiceConfig(
            simulation=self.simulation_config(upload_ratio),
            epoch_seconds=epoch_seconds,
            horizon=self.days * SECONDS_PER_DAY,
            allowed_lateness=allowed_lateness,
        )


# ----------------------------------------------------------------------
# Memoised artefacts
# ----------------------------------------------------------------------

_TRACES: Dict[Tuple, Trace] = {}
_RESULTS: Dict[Tuple, SimulationResult] = {}


def memo_key(kind: str, settings: ExperimentSettings) -> Tuple:
    """Cache key for memoised artefacts.

    ``workers``, ``backend``, ``queue_dir``, ``reduction``,
    ``grouping`` and ``shard_dir`` are excluded: they only change
    wall-clock and memory, never values (backends, reduction modes and
    grouping strategies are bit-for-bit identical), so runs differing
    only in those knobs share traces and simulation results.  Exported
    so figure drivers can key their own sweep-level artefacts (e.g.
    fig2's per-tier ratio sweeps) the same way.
    """
    return (
        kind,
        replace(
            settings,
            workers=None,
            backend=None,
            queue_dir=None,
            reduction=None,
            grouping=None,
            shard_dir=None,
        ),
    )


#: Backwards-compatible private alias (pre-sweep name).
_memo_key = memo_key


def sweep_configs(
    settings: ExperimentSettings, upload_ratios: Sequence[float]
) -> List[SimulationConfig]:
    """Per-ratio simulation configs for one ``Simulator.run_sweep`` call.

    The sweep-submission helper figure drivers share: every config
    carries the settings' runtime knobs and policy, differing only in
    ``upload_ratio``, so a whole ratio axis ships as one sweep (grouped
    once, decoded once, swept once -- see
    :meth:`repro.sim.engine.Simulator.run_sweep`).
    """
    return [settings.simulation_config(ratio) for ratio in upload_ratios]


def city_trace(settings: ExperimentSettings) -> Trace:
    """The (cached) full-catalogue city trace for these settings."""
    key = memo_key("city", settings)
    if key not in _TRACES:
        _TRACES[key] = TraceGenerator(
            config=settings.city_config(), device_mix=CITY_DEVICE_MIX
        ).generate()
    return _TRACES[key]


def exemplar_trace(settings: ExperimentSettings) -> Trace:
    """The (cached) Fig. 2 exemplar trace for these settings."""
    key = memo_key("exemplar", settings)
    if key not in _TRACES:
        _TRACES[key] = TraceGenerator(
            config=settings.exemplar_config(), device_mix=UNIFORM_DEVICE_MIX
        ).generate()
    return _TRACES[key]


def paper_simulation(settings: ExperimentSettings) -> SimulationResult:
    """The (cached) paper-policy simulation of the city trace."""
    key = memo_key("city-sim", settings)
    if key not in _RESULTS:
        simulator = Simulator(settings.simulation_config())
        try:
            _RESULTS[key] = simulator.run(city_trace(settings))
        finally:
            # Deterministic release: a distributed backend owns spawned
            # worker processes (and maybe a temp queue dir) that must
            # not wait for garbage collection.
            simulator.close()
    return _RESULTS[key]
