"""Experiment drivers: one module per paper table/figure, plus a runner.

See DESIGN.md's per-experiment index for the mapping from paper artefact
to driver and benchmark.
"""

from repro.experiments.config import (
    ExperimentSettings,
    city_trace,
    exemplar_trace,
    paper_simulation,
)
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.report import Report
from repro.experiments.runner import EXPERIMENTS, run_all, run_experiment
from repro.experiments.tables import run_table1, run_table3, run_table4

__all__ = [
    "EXPERIMENTS",
    "ExperimentSettings",
    "Report",
    "city_trace",
    "exemplar_trace",
    "paper_simulation",
    "run_all",
    "run_experiment",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_table1",
    "run_table3",
    "run_table4",
]
