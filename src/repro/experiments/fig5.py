"""Fig. 5: savings decomposition vs swarm capacity (analytic).

End-to-end savings (Eq. 12), CDN savings (G), user "savings" (-G) and
the carbon credit transfer (Eq. 13) as capacity sweeps 10^-3 ... 10^4,
for both energy models.  The CCT curve rises from -1 (no sharing) and
crosses zero where users turn carbon neutral, asymptoting at +18 %
(Valancius) / +58 % (Baliga).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.plots import ascii_chart
from repro.analysis.tables import render_table
from repro.core.energy import builtin_models
from repro.core.savings import SavingsModel
from repro.experiments.config import ExperimentSettings
from repro.experiments.report import Report

__all__ = ["run_fig5", "capacity_grid"]


def capacity_grid(points: int = 60) -> List[float]:
    """Log-spaced capacities over the paper's 10^-3 ... 10^4 axis."""
    return [10 ** (-3 + 7 * i / (points - 1)) for i in range(points)]


def run_fig5(settings: ExperimentSettings) -> Report:
    """Reproduce Fig. 5 (both panels)."""
    report = Report(
        name="fig5",
        title=(
            "Energy savings of the network by party (end-to-end / CDN / user) "
            "and carbon credit transfer vs swarm capacity (paper Fig. 5)"
        ),
    )
    grid = capacity_grid()
    data: Dict[str, Dict[str, object]] = {}
    for model in builtin_models():
        savings_model = SavingsModel(model, upload_ratio=settings.upload_ratio)
        rows = [savings_model.breakdown(c) for c in grid]
        series = {
            "End-to-End": [(r.capacity, r.end_to_end) for r in rows],
            "CDN": [(r.capacity, r.cdn) for r in rows],
            "User": [(r.capacity, r.user) for r in rows],
            "CC Transfer": [(r.capacity, r.carbon_credit_transfer) for r in rows],
        }
        report.add(
            f"{model.name}: savings vs capacity",
            ascii_chart(
                series, log_x=True, title=f"Fig. 5, {model.name}", y_label="savings"
            ),
        )

        neutrality = savings_model.neutrality_capacity()
        asymptote = savings_model.asymptotic_carbon_positivity()
        if math.isfinite(neutrality):
            neutral_capacity = round(neutrality, 3)
            neutral_offload = round(savings_model.offload_fraction(neutrality), 4)
        else:
            neutral_capacity = "inf"
            neutral_offload = "unreachable"
        report.add(
            f"{model.name}: carbon neutrality",
            render_table(
                ["quantity", "value"],
                [
                    ["neutral capacity c*", neutral_capacity],
                    ["neutral offload G*", neutral_offload],
                    ["asymptotic CCT (G=1)", round(asymptote, 4)],
                ],
            ),
        )
        data[model.name] = {
            "series": series,
            "neutral_capacity": neutrality,
            "asymptotic_cct": asymptote,
        }
    report.data = data
    return report
