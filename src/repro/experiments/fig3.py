"""Fig. 3: CCDFs of per-swarm capacities and savings over the catalogue.

The paper: "the catalogue ... consists of a few popular items but a
large majority of unpopular items", yielding "highly disproportionate
savings for the popular items" -- median per-item savings ~2 %, while
the top-1 % of items capture 21 % (Baliga) / 33 % (Valancius) of the
saved energy.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.aggregates import (
    median_item_savings,
    top_share_of_savings,
)
from repro.analysis.distributions import EmpiricalDistribution, ccdf_points
from repro.analysis.plots import ascii_chart
from repro.analysis.tables import render_table
from repro.core.energy import builtin_models
from repro.experiments.config import ExperimentSettings, paper_simulation
from repro.experiments.report import Report

__all__ = ["run_fig3"]


def run_fig3(settings: ExperimentSettings) -> Report:
    """Reproduce Fig. 3 (capacity CCDF left, savings CCDF right)."""
    report = Report(
        name="fig3",
        title=(
            "Distribution of per-swarm capacities and energy savings across "
            "the content catalogue (paper Fig. 3)"
        ),
    )
    result = paper_simulation(settings)
    per_content = result.per_content_results()

    capacities = [r.capacity for r in per_content.values() if r.capacity > 0]
    capacity_dist = EmpiricalDistribution.from_sample(capacities)
    ccdf = [(x, p) for x, p in ccdf_points(capacities) if x > 0 and p > 0]
    report.add(
        "Per-swarm capacity CCDF (left panel)",
        ascii_chart(
            {"capacity CCDF": ccdf},
            log_x=True,
            title="P[capacity > x]",
            y_label="CCDF",
        ),
    )

    rows = []
    data: Dict[str, Dict[str, float]] = {}
    savings_series = {}
    for model in builtin_models():
        savings_sample = [r.savings(model) for r in per_content.values()]
        positive = [s for s in savings_sample if s > 0]
        if positive:
            savings_series[model.name] = [
                (x, p) for x, p in ccdf_points(positive) if p > 0
            ]
        median = median_item_savings(result, model)
        top1 = top_share_of_savings(result, model, 0.01)
        rows.append(
            [
                model.name,
                round(median, 4),
                f"{top1:.1%}",
                round(max(savings_sample), 4),
            ]
        )
        data[model.name] = {
            "median_item_savings": median,
            "top1pct_share_of_savings": top1,
            "max_item_savings": max(savings_sample),
        }

    if savings_series:
        report.add(
            "Per-swarm savings CCDF (right panel)",
            ascii_chart(
                savings_series,
                log_x=True,
                title="P[savings > x]",
                y_label="CCDF",
            ),
        )
    report.add(
        "Catalogue skew (paper: median ~2 %, top-1 % capture 21-33 % of savings)",
        render_table(
            [
                "model",
                "median per-item S",
                "top-1% share of saved energy",
                "max item S",
            ],
            rows,
        ),
    )
    data["capacity"] = {
        "median": capacity_dist.median,
        "max": capacity_dist.max,
        "items": len(capacities),
    }
    report.data = data
    return report
