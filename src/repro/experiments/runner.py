"""Run every experiment and collect the reports.

Every driver consumes the shared :class:`ExperimentSettings`, including
its ``workers`` knob: pass ``workers=N`` (or settings with it set) and
each experiment's simulation shards its swarms over N worker processes
-- results are bit-for-bit identical to the serial run, only faster.
Likewise ``reduction="streaming"`` (or ``"spill"``) folds shard
outputs incrementally as they complete, and ``grouping="external"``
groups the session stream out-of-core through a sorted shard file,
bounding coordinator memory on large traces without changing a single
bit of any report.

Sweep-heavy drivers submit whole parameter sweeps instead of per-point
runs: fig2's upload-ratio axis goes through ``Simulator.run_sweep`` (one
grouping + one timeline sweep for all five ratios -- see
``repro.experiments.fig2.tier_dots``), and with ``grouping="external"``
plus a persistent ``shard_dir`` the sorted shard is content-addressed
and reused across experiments, runs and processes.  All of it is
bit-for-bit identical to the naive per-point loop.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Callable, List, Mapping, Optional

from repro.experiments.config import ExperimentSettings
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.report import Report
from repro.experiments.tables import run_table1, run_table3, run_table4

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

#: Every reproducible artefact, in paper order.
EXPERIMENTS: Mapping[str, Callable[[ExperimentSettings], Report]] = {
    "table1": run_table1,
    "table3": run_table3,
    "table4": run_table4,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
}


def _resolve_settings(
    settings: Optional[ExperimentSettings],
    workers: Optional[int],
    reduction: Optional[str] = None,
    grouping: Optional[str] = None,
    backend: Optional[str] = None,
    queue_dir: Optional[str] = None,
) -> ExperimentSettings:
    settings = settings or ExperimentSettings()
    if workers is not None:
        settings = replace(settings, workers=workers)
    if reduction is not None:
        settings = replace(settings, reduction=reduction)
    if grouping is not None:
        settings = replace(settings, grouping=grouping)
    if backend is not None:
        settings = replace(settings, backend=backend)
    if queue_dir is not None:
        settings = replace(settings, queue_dir=queue_dir)
    return settings


def run_experiment(
    name: str,
    settings: Optional[ExperimentSettings] = None,
    *,
    workers: Optional[int] = None,
    reduction: Optional[str] = None,
    grouping: Optional[str] = None,
    backend: Optional[str] = None,
    queue_dir: Optional[str] = None,
) -> Report:
    """Run one experiment by id ("table1", "fig2", ...).

    ``workers`` / ``reduction`` / ``grouping`` / ``backend`` /
    ``queue_dir`` override the settings' values for this invocation.
    """
    try:
        driver = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return driver(
        _resolve_settings(settings, workers, reduction, grouping, backend, queue_dir)
    )


def run_all(
    settings: Optional[ExperimentSettings] = None,
    *,
    out_dir: Optional[Path] = None,
    workers: Optional[int] = None,
    reduction: Optional[str] = None,
    grouping: Optional[str] = None,
    backend: Optional[str] = None,
    queue_dir: Optional[str] = None,
) -> List[Report]:
    """Run every experiment; optionally write one text file per report.

    ``workers`` / ``reduction`` / ``grouping`` / ``backend`` /
    ``queue_dir`` override the settings' values for this invocation.
    """
    settings = _resolve_settings(
        settings, workers, reduction, grouping, backend, queue_dir
    )
    reports = [driver(settings) for driver in EXPERIMENTS.values()]
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for report in reports:
            (out_dir / f"{report.name}.txt").write_text(report.render() + "\n")
    return reports
