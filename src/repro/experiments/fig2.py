"""Fig. 2: energy savings vs swarm capacity, theory vs simulation.

The paper's figure: for three exemplar items (popular / medium /
unpopular, ~100:10:1 views) and the top-5 ISPs, simulated savings (dots)
against the Eq. 12 curve (line), for q/beta in {0.2 ... 1.0}, under both
energy models.

Reproduction: each (tier, ISP) sub-trace is simulated once per upload
ratio; every simulated *day* yields one dot at (measured daily capacity,
daily savings), which is how the paper's dots spread along the capacity
axis.  The theory curve is Eq. 12 over a log-spaced capacity grid.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.analysis.plots import ascii_chart
from repro.analysis.tables import render_table
from repro.core.energy import EnergyModel, builtin_models
from repro.core.savings import SavingsModel
from repro.experiments.config import (
    ExperimentSettings,
    TIER_VIEWS,
    exemplar_trace,
    memo_key,
    sweep_configs,
)
from repro.experiments.report import Report
from repro.sim.accounting import ByteLedger, savings as ledger_savings
from repro.sim.engine import Simulator
from repro.trace.events import SECONDS_PER_DAY

__all__ = ["run_fig2", "UPLOAD_RATIOS", "tier_dots"]

#: The paper's q/beta sweep.
UPLOAD_RATIOS: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)

#: Dots: (capacity, savings) samples; one per simulated day per ISP.
Dots = List[Tuple[float, float]]

#: Per-(settings, tier) sweep artefacts: upload ratio -> daily
#: (capacity, ledger) samples.  Ledgers are kept (not savings) so one
#: sweep serves every energy model -- exactly like the paper's twin
#: columns come from one simulation.
_TIER_SWEEPS: Dict[Tuple, Dict[float, List[Tuple[float, ByteLedger]]]] = {}


def _tier_sweep_entries(
    settings: ExperimentSettings, tier: str, upload_ratios: Tuple[float, ...]
) -> Dict[float, List[Tuple[float, ByteLedger]]]:
    """Daily (capacity, ledger) samples per ratio, simulated as sweeps.

    Each (tier, ISP) sub-trace is submitted to
    :meth:`~repro.sim.engine.Simulator.run_sweep` once for the whole
    ratio axis -- grouped once, event-scheduled once, timeline swept
    once -- instead of one ``run()`` per ratio.  Results are bit-for-bit
    what the per-ratio runs produced, so the dots (and the golden
    fixtures pinning them) are unchanged.
    """
    key = memo_key("fig2-tier", settings) + (tier,)
    entries = _TIER_SWEEPS.setdefault(key, {})
    missing = tuple(r for r in upload_ratios if r not in entries)
    if missing:
        trace = exemplar_trace(settings).for_content(tier)
        # One simulator (and hence one worker pool) shared by all ISPs.
        simulator = Simulator(settings.simulation_config(missing[0]))
        configs = sweep_configs(settings, missing)
        fresh: Dict[float, List[Tuple[float, ByteLedger]]] = {r: [] for r in missing}
        try:
            for isp in trace.isps:
                sub = trace.for_isp(isp)
                results = simulator.run_sweep(sub, configs)
                for ratio, result in zip(missing, results):
                    samples = fresh[ratio]
                    for (name, _day), ledger in result.per_isp_day.items():
                        if name != isp or ledger.watch_seconds <= 0.0:
                            continue
                        samples.append((ledger.watch_seconds / SECONDS_PER_DAY, ledger))
        finally:
            simulator.close()  # release pools/fleets deterministically
        entries.update(fresh)
    return entries


def tier_dots(
    settings: ExperimentSettings,
    tier: str,
    model: EnergyModel,
    upload_ratio: float,
) -> Dots:
    """Simulated daily (capacity, savings) dots for one tier and model.

    Sweep-amortized: a ratio from :data:`UPLOAD_RATIOS` triggers one
    ``run_sweep`` over the *whole* paper axis for this tier (any other
    ratio sweeps alone), and later calls -- other ratios, or the other
    energy model -- reuse the cached per-day ledgers.  Values are
    bit-for-bit identical to the historical one-run-per-call behaviour.
    """
    ratios = UPLOAD_RATIOS if upload_ratio in UPLOAD_RATIOS else (upload_ratio,)
    entries = _tier_sweep_entries(settings, tier, ratios)
    return [
        (capacity, ledger_savings(ledger, model))
        for capacity, ledger in entries[upload_ratio]
    ]


def run_fig2(settings: ExperimentSettings) -> Report:
    """Reproduce Fig. 2 (both energy-model rows, all three tiers)."""
    report = Report(
        name="fig2",
        title=(
            "Energy savings vs capacity: theory (Eq. 12) and simulation, "
            "3 popularity tiers x top-5 ISPs x q/beta sweep (paper Fig. 2)"
        ),
    )
    summary_rows = []
    data: Dict[str, Dict] = {}

    for model in builtin_models():
        for tier in TIER_VIEWS:
            series: Dict[str, Dots] = {}
            for ratio in UPLOAD_RATIOS:
                dots = tier_dots(settings, tier, model, ratio)
                if not dots:
                    continue
                series[f"sim q/b={ratio}"] = dots

                capacities = [c for c, _ in dots]
                grid = _log_grid(min(capacities), max(capacities))
                theory = SavingsModel(model, upload_ratio=ratio)
                series[f"theo q/b={ratio}"] = theory.savings_curve(grid)

                sim_mean = sum(s for _, s in dots) / len(dots)
                theo_at = [theory.savings(c) for c, _ in dots]
                theo_mean = sum(theo_at) / len(theo_at)
                mae = sum(abs(s - t) for (_, s), t in zip(dots, theo_at)) / len(dots)
                summary_rows.append(
                    [
                        model.name,
                        tier,
                        ratio,
                        round(sim_mean, 4),
                        round(theo_mean, 4),
                        round(mae, 4),
                    ]
                )
                data[f"{model.name}/{tier}/{ratio}"] = {
                    "sim_mean": sim_mean,
                    "theo_mean": theo_mean,
                    "mae": mae,
                    "dots": dots,
                }
            if series:
                chart_series = {
                    k: v
                    for k, v in series.items()
                    if k.endswith("=1.0") or k.endswith("=0.2")
                }
                report.add(
                    f"{model.name} / {tier}",
                    ascii_chart(
                        chart_series,
                        log_x=True,
                        title=f"savings vs capacity ({model.name}, {tier})",
                        y_label="S",
                    ),
                )

    report.add(
        "Theory vs simulation summary",
        render_table(
            ["model", "tier", "q/beta", "sim mean S", "theo mean S", "MAE"],
            summary_rows,
        ),
    )
    report.data = data
    return report


def _log_grid(lo: float, hi: float, points: int = 40) -> List[float]:
    """Log-spaced capacities covering [lo/2, hi*2]."""
    lo = max(lo / 2.0, 1e-3)
    hi = max(hi * 2.0, lo * 10.0)
    log_lo, log_hi = math.log10(lo), math.log10(hi)
    return [
        10 ** (log_lo + (log_hi - log_lo) * i / (points - 1)) for i in range(points)
    ]
