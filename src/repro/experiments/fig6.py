"""Fig. 6: distribution of per-user carbon footprints after credit transfer.

Each user's uploads earn carbon credit (``PUE * gamma_s`` per bit)
against their own footprint (``l * gamma_m`` per bit through the modem);
the figure is the CDF of the normalised net footprint (Eq. 13 applied to
measured per-user bytes).  The paper reports ~41 % (Valancius) / >70 %
(Baliga) of users end up carbon positive, with the stragglers being
viewers of niche content whose swarms are too small.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.distributions import EmpiricalDistribution, ecdf_points
from repro.analysis.plots import ascii_chart
from repro.analysis.tables import render_table
from repro.core.analytical import offload_fraction
from repro.core.carbon import carbon_credit_transfer
from repro.core.energy import builtin_models
from repro.experiments.config import ExperimentSettings, city_trace, paper_simulation
from repro.experiments.report import Report

__all__ = ["run_fig6"]

#: Reference density for the per-user extrapolation (Table I, Sep 2013).
_PAPER_MONTHLY_SESSIONS = 23.5e6


def run_fig6(settings: ExperimentSettings) -> Report:
    """Reproduce Fig. 6 (per-user CCT CDF, both models)."""
    report = Report(
        name="fig6",
        title=(
            "Distribution of per-user carbon credit transfer across all "
            "users (paper Fig. 6)"
        ),
    )
    result = paper_simulation(settings)
    footprints = result.user_footprints()

    series: Dict[str, List[Tuple[float, float]]] = {}
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for model in builtin_models():
        sample = [fp.carbon_credit_transfer(model) for fp in footprints.values()]
        dist = EmpiricalDistribution.from_sample(sample)
        # Thin the ECDF for plotting (every user is a step otherwise).
        points = ecdf_points(sample)
        step = max(1, len(points) // 300)
        series[model.name] = points[::step]

        positive = result.carbon_positive_share(model)
        rows.append(
            [
                model.name,
                f"{positive:.1%}",
                round(dist.median, 4),
                round(dist.mean, 4),
            ]
        )
        data[model.name] = {
            "carbon_positive_share": positive,
            "median_cct": dist.median,
            "mean_cct": dist.mean,
        }

    report.add(
        "Per-user CCT CDF (x: net normalised footprint, y: CDF)",
        ascii_chart(series, title="Fig. 6", y_label="CDF"),
    )
    report.add(
        "Carbon-positive users (paper: ~41 % Valancius, >70 % Baliga; "
        "at this trace scale swarms are smaller, so shares are lower)",
        render_table(["model", "carbon positive", "median CCT", "mean CCT"], rows),
    )

    # Density extrapolation: per-user CCT at the paper's trace density.
    # Each user's offload fraction is re-derived from Eq. 3 at their
    # swarms' capacities rescaled to the full-population scale, then
    # pushed through Eq. 13 -- the same validated-model extrapolation
    # Fig. 4 uses for the system aggregate.
    trace = city_trace(settings)
    factor = _PAPER_MONTHLY_SESSIONS * (settings.days / 30.0) / max(len(trace), 1)
    policy = settings.simulation_config().policy
    capacity_of = {key: swarm.capacity for key, swarm in result.per_swarm.items()}
    user_bits: Dict[int, float] = {}
    user_weighted_g: Dict[int, float] = {}
    for session in trace:
        capacity = capacity_of.get(policy.key_for(session), 0.0)
        g = offload_fraction(capacity * factor, settings.upload_ratio)
        bits = session.bits_watched
        user_bits[session.user_id] = user_bits.get(session.user_id, 0.0) + bits
        user_weighted_g[session.user_id] = (
            user_weighted_g.get(session.user_id, 0.0) + g * bits
        )
    extrapolated_rows = []
    for model in builtin_models():
        positive = 0
        for uid, bits in user_bits.items():
            g_user = user_weighted_g[uid] / bits if bits > 0 else 0.0
            if carbon_credit_transfer(g_user, model) >= 0.0:
                positive += 1
        share = positive / len(user_bits) if user_bits else 0.0
        extrapolated_rows.append([model.name, f"{share:.1%}"])
        data[model.name]["carbon_positive_share_extrapolated"] = share
    report.add(
        "Carbon-positive users extrapolated to paper density "
        f"(capacities x{factor:.1f}; paper: ~41 % Valancius, >70 % Baliga)",
        render_table(["model", "carbon positive (extrapolated)"], extrapolated_rows),
    )
    report.data = data
    return report
