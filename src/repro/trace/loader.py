"""Trace persistence: JSON-lines and CSV round-trips.

The on-disk formats carry exactly the :class:`~repro.trace.events.Session`
fields, one record per line, so generated traces can be cached between
experiment runs and external traces (with the same schema) can be fed to
the simulator.  A small header record in the JSONL format stores the
horizon so round-trips are lossless.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.topology.nodes import AttachmentPoint
from repro.trace.events import Session, Trace

__all__ = [
    "session_to_record",
    "session_from_record",
    "save_jsonl",
    "load_jsonl",
    "save_csv",
    "load_csv",
]

_CSV_FIELDS = [
    "session_id",
    "user_id",
    "content_id",
    "start",
    "duration",
    "bitrate",
    "isp",
    "pop",
    "exchange",
    "device",
]


def session_to_record(session: Session) -> Dict[str, object]:
    """Flatten a session into a JSON/CSV-friendly dict."""
    return {
        "session_id": session.session_id,
        "user_id": session.user_id,
        "content_id": session.content_id,
        "start": session.start,
        "duration": session.duration,
        "bitrate": session.bitrate,
        "isp": session.attachment.isp,
        "pop": session.attachment.pop,
        "exchange": session.attachment.exchange,
        "device": session.device,
    }


def session_from_record(record: Dict[str, object]) -> Session:
    """Rebuild a session from a flat record (inverse of
    :func:`session_to_record`)."""
    try:
        return Session(
            session_id=int(record["session_id"]),
            user_id=int(record["user_id"]),
            content_id=str(record["content_id"]),
            start=float(record["start"]),
            duration=float(record["duration"]),
            bitrate=float(record["bitrate"]),
            attachment=AttachmentPoint(
                isp=str(record["isp"]),
                pop=int(record["pop"]),
                exchange=int(record["exchange"]),
            ),
            device=str(record.get("device", "unknown")),
        )
    except KeyError as missing:
        raise ValueError(f"session record is missing field {missing}") from None


def save_jsonl(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace as JSON lines (header record first)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {"kind": "trace-header", "version": 1, "horizon": trace.horizon}
        handle.write(json.dumps(header) + "\n")
        for session in trace:
            handle.write(json.dumps(session_to_record(session)) + "\n")


def load_jsonl(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_jsonl`."""
    path = Path(path)
    horizon = 0.0
    sessions: List[Session] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "trace-header":
                horizon = float(record.get("horizon", 0.0))
                continue
            try:
                sessions.append(session_from_record(record))
            except (ValueError, TypeError) as exc:
                raise ValueError(f"{path}:{line_number + 1}: bad session record: {exc}") from exc
    return Trace.from_sessions(sessions, horizon=horizon)


def save_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace as CSV (no horizon header; it is re-derived on load)."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for session in trace:
            writer.writerow(session_to_record(session))


def load_csv(path: Union[str, Path], horizon: float = 0.0) -> Trace:
    """Read a trace written by :func:`save_csv`.

    Args:
        path: CSV file path.
        horizon: trace length in seconds; when 0 it is re-derived from
            the latest session end (rounded up to whole days).
    """
    path = Path(path)
    sessions: List[Session] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        for line_number, record in enumerate(csv.DictReader(handle)):
            try:
                sessions.append(session_from_record(record))
            except (ValueError, TypeError) as exc:
                raise ValueError(f"{path}:{line_number + 2}: bad session record: {exc}") from exc
    return Trace.from_sessions(sessions, horizon=horizon)
