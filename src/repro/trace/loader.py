"""Trace persistence: JSONL / CSV / binary-store round-trips.

The text formats carry exactly the :class:`~repro.trace.events.Session`
fields, one record per line, so generated traces can be cached between
experiment runs and external traces (with the same schema) can be fed to
the simulator.  A small header record in the JSONL format stores the
horizon so round-trips are lossless.

Every format has two consumption styles:

* ``load_*`` materializes a full :class:`~repro.trace.events.Trace`
  (convenient for laptop-scale experiments);
* ``iter_*`` yields sessions lazily, one at a time -- the streaming
  entry points for the out-of-core pipeline (feed them straight into
  ``Simulator.run_stream``; nothing beyond the current line/record is
  ever resident).

``save_store`` / ``iter_store`` / ``load_store`` round-trip through the
compact binary format of :mod:`repro.trace.store` (56 bytes per session
plus interned string tables) -- the format external grouping shards and
workers decode from.
"""

from __future__ import annotations

import csv
import json
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Union

from repro.topology.nodes import intern_attachment
from repro.trace.events import Session, Trace
from repro.trace.store import StoreReader, StoreWriter

__all__ = [
    "session_to_record",
    "session_from_record",
    "save_jsonl",
    "append_jsonl_end",
    "load_jsonl",
    "iter_jsonl",
    "follow_jsonl",
    "read_jsonl_horizon",
    "save_csv",
    "load_csv",
    "iter_csv",
    "save_store",
    "load_store",
    "iter_store",
]

_CSV_FIELDS = [
    "session_id",
    "user_id",
    "content_id",
    "start",
    "duration",
    "bitrate",
    "isp",
    "pop",
    "exchange",
    "device",
]


def session_to_record(session: Session) -> Dict[str, object]:
    """Flatten a session into a JSON/CSV-friendly dict."""
    return {
        "session_id": session.session_id,
        "user_id": session.user_id,
        "content_id": session.content_id,
        "start": session.start,
        "duration": session.duration,
        "bitrate": session.bitrate,
        "isp": session.attachment.isp,
        "pop": session.attachment.pop,
        "exchange": session.attachment.exchange,
        "device": session.device,
    }


def session_from_record(record: Dict[str, object]) -> Session:
    """Rebuild a session from a flat record (inverse of
    :func:`session_to_record`).

    Attachment points are interned (one shared instance per (ISP, PoP,
    exchange) triple), so loading a month-scale trace does not duplicate
    millions of identical attachment objects.
    """
    try:
        return Session(
            session_id=int(record["session_id"]),
            user_id=int(record["user_id"]),
            content_id=str(record["content_id"]),
            start=float(record["start"]),
            duration=float(record["duration"]),
            bitrate=float(record["bitrate"]),
            attachment=intern_attachment(
                str(record["isp"]), int(record["pop"]), int(record["exchange"])
            ),
            device=str(record.get("device", "unknown")),
        )
    except KeyError as missing:
        raise ValueError(f"session record is missing field {missing}") from None


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------


def save_jsonl(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace as JSON lines (header record first)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {"kind": "trace-header", "version": 1, "horizon": trace.horizon}
        handle.write(json.dumps(header) + "\n")
        for session in trace:
            handle.write(json.dumps(session_to_record(session)) + "\n")


def append_jsonl_end(path: Union[str, Path]) -> None:
    """Append the end-of-stream marker record to a live JSONL feed.

    :func:`follow_jsonl` stops cleanly when it reads the marker; plain
    :func:`iter_jsonl` skips it (like any other non-session ``kind``
    record), so a terminated feed still loads as a normal trace.
    """
    with Path(path).open("a", encoding="utf-8") as handle:
        handle.write(json.dumps({"kind": "trace-end"}) + "\n")
        handle.flush()


def iter_jsonl(
    path: Union[str, Path], *, allow_partial_tail: bool = False
) -> Iterator[Session]:
    """Yield sessions from a JSONL trace lazily, one line at a time.

    Header (and other non-session ``kind``) records are skipped (use
    :func:`load_jsonl` when the stored horizon matters, or read the
    first line yourself); only the current line is ever resident, so
    arbitrarily large trace files stream straight into
    ``Simulator.run_stream``.

    Args:
        path: the JSONL trace file.
        allow_partial_tail: tolerate a truncated final record -- the
            steady state of a feed that is still being appended when
            the reader arrives mid-write.  A final line without its
            terminating newline is silently ignored instead of raising
            (re-read, or :func:`follow_jsonl`, picks it up once the
            writer finishes it).  A *complete* line that fails to
            parse is real corruption and still raises.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle):
            if allow_partial_tail and not raw.endswith("\n"):
                break  # mid-write tail: the writer owes us a newline
            line = raw.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") is not None:
                continue
            try:
                yield session_from_record(record)
            except (ValueError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{line_number + 1}: bad session record: {exc}"
                ) from exc


def follow_jsonl(
    path: Union[str, Path],
    *,
    poll_interval: float = 0.2,
    idle_timeout: Optional[float] = None,
    stop: Optional[Callable[[], bool]] = None,
    start_record: int = 0,
) -> Iterator[Session]:
    """Tail a live-appended JSONL feed, yielding sessions as lines land.

    The streaming loader for service mode: a partial final record is
    never parsed -- the reader seeks back to the start of the
    incomplete line and re-polls until the writer finishes it, so a
    feed read mid-write can neither crash the reader nor drop the
    record.  Stops cleanly at a ``{"kind": "trace-end"}`` marker
    (:func:`append_jsonl_end`), when ``stop()`` returns True, or after
    ``idle_timeout`` seconds without file growth; with all three unset
    it follows forever.

    Args:
        path: the feed file (must exist; may be empty).
        poll_interval: seconds between polls while no complete line is
            available.
        idle_timeout: give up after this long without a new record
            (``None``: never).
        stop: callable checked between polls; True ends the follow.
        start_record: session records to skip before yielding -- the
            service's stream cursor on checkpointed resume.
    """
    path = Path(path)
    seen = 0
    idle_since = time.monotonic()
    with path.open("r", encoding="utf-8") as handle:
        line_number = 0
        while True:
            position = handle.tell()
            raw = handle.readline()
            if raw.endswith("\n"):
                line_number += 1
                idle_since = time.monotonic()
                line = raw.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("kind") == "trace-end":
                    return
                if record.get("kind") is not None:
                    continue
                seen += 1
                if seen <= start_record:
                    continue
                try:
                    yield session_from_record(record)
                except (ValueError, TypeError) as exc:
                    raise ValueError(
                        f"{path}:{line_number}: bad session record: {exc}"
                    ) from exc
                continue
            # No complete line: rewind over the partial tail and wait.
            handle.seek(position)
            if stop is not None and stop():
                return
            if (
                idle_timeout is not None
                and time.monotonic() - idle_since >= idle_timeout
            ):
                return
            time.sleep(poll_interval)


def read_jsonl_horizon(path: Union[str, Path]) -> float:
    """The horizon stored in a JSONL trace's header record.

    Returns 0.0 when the file has no header (external traces with the
    session schema but no header record) -- callers then re-derive the
    horizon from session ends, as :class:`~repro.trace.events.Trace`
    does.  Reads only the first record, so it is O(1) in trace size.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "trace-header":
                return float(record.get("horizon", 0.0))
            break  # the header, if present, is the first record
    return 0.0


def load_jsonl(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_jsonl`."""
    path = Path(path)
    return Trace.from_sessions(iter_jsonl(path), horizon=read_jsonl_horizon(path))


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------


def save_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace as CSV (no horizon header; it is re-derived on load)."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for session in trace:
            writer.writerow(session_to_record(session))


def iter_csv(path: Union[str, Path]) -> Iterator[Session]:
    """Yield sessions from a CSV trace lazily, one row at a time."""
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as handle:
        for line_number, record in enumerate(csv.DictReader(handle)):
            try:
                yield session_from_record(record)
            except (ValueError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{line_number + 2}: bad session record: {exc}"
                ) from exc


def load_csv(path: Union[str, Path], horizon: float = 0.0) -> Trace:
    """Read a trace written by :func:`save_csv`.

    Args:
        path: CSV file path.
        horizon: trace length in seconds; when 0 it is re-derived from
            the latest session end (rounded up to whole days).
    """
    return Trace.from_sessions(iter_csv(path), horizon=horizon)


# ----------------------------------------------------------------------
# Binary store
# ----------------------------------------------------------------------


def save_store(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace in the compact binary store format.

    56 bytes per session plus interned string tables -- the format the
    out-of-core pipeline shards; round-trips are lossless, horizon
    included (floats are stored as IEEE-754 doubles, so sessions read
    back bit-for-bit equal).
    """
    with StoreWriter(path, horizon=trace.horizon) as writer:
        for session in trace:
            writer.append(session)


def iter_store(path: Union[str, Path]) -> Iterator[Session]:
    """Yield sessions from a binary store lazily, chunk-buffered."""
    with StoreReader(path) as reader:
        yield from reader.iter_sessions()


def load_store(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_store` (horizon included)."""
    with StoreReader(path) as reader:
        return Trace.from_sessions(reader.iter_sessions(), horizon=reader.horizon)
