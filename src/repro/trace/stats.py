"""Trace summary statistics (the paper's Table I and beyond).

Table I describes the dataset with three rows per month: number of users,
number of IP addresses and number of sessions.  Our synthetic population
attaches one household (= one IP) per user, so we additionally estimate
distinct IPs the way a real trace would see them: a household NAT shared
by ~2.2 users on average (3.3M users vs 1.5M IPs in the paper's Sep 2013
column).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Tuple

from repro.trace.events import Trace

__all__ = ["TraceStats", "summarise"]

#: Users per IP address implied by the paper's Table I (3.3M / 1.5M).
USERS_PER_IP = 2.2


@dataclass(frozen=True)
class TraceStats:
    """Aggregate description of one trace (one "month" of data).

    Attributes:
        num_users: distinct viewers.
        num_ip_addresses: distinct household IPs (users / 2.2, matching
            the paper's observed NAT ratio).
        num_sessions: total sessions.
        num_items: distinct content items viewed.
        days: trace length in days.
        total_hours_watched: user-hours of viewing.
        mean_session_minutes: mean session duration.
        mean_concurrency: average concurrent viewers across the trace.
        sessions_per_user_top_decile_share: fraction of sessions from the
            most active 10% of users (the paper's skew observation).
    """

    num_users: int
    num_ip_addresses: int
    num_sessions: int
    num_items: int
    days: int
    total_hours_watched: float
    mean_session_minutes: float
    mean_concurrency: float
    sessions_per_user_top_decile_share: float

    def table_rows(self) -> List[Tuple[str, str]]:
        """Rows in the paper's Table I format (plus context rows)."""
        return [
            ("Number of Users", _millions(self.num_users)),
            ("Number of IP addresses", _millions(self.num_ip_addresses)),
            ("Number of Sessions", _millions(self.num_sessions)),
            ("Distinct items", f"{self.num_items:,}"),
            ("Days covered", str(self.days)),
            ("Hours watched", f"{self.total_hours_watched:,.0f}"),
            ("Mean session (min)", f"{self.mean_session_minutes:.1f}"),
            ("Mean concurrent viewers", f"{self.mean_concurrency:,.1f}"),
            (
                "Top-decile session share",
                f"{self.sessions_per_user_top_decile_share:.0%}",
            ),
        ]


def summarise(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for a trace."""
    num_sessions = len(trace)
    user_sessions = Counter(s.user_id for s in trace)
    num_users = len(user_sessions)
    total_seconds = trace.total_watch_seconds()
    mean_minutes = (total_seconds / num_sessions / 60.0) if num_sessions else 0.0

    if user_sessions:
        counts = sorted(user_sessions.values(), reverse=True)
        top_n = max(1, len(counts) // 10)
        top_share = sum(counts[:top_n]) / num_sessions
    else:
        top_share = 0.0

    return TraceStats(
        num_users=num_users,
        num_ip_addresses=int(round(num_users / USERS_PER_IP)) if num_users else 0,
        num_sessions=num_sessions,
        num_items=len(trace.content_ids),
        days=trace.num_days,
        total_hours_watched=total_seconds / 3600.0,
        mean_session_minutes=mean_minutes,
        mean_concurrency=trace.mean_concurrency(),
        sessions_per_user_top_decile_share=top_share,
    )


def _millions(value: int) -> str:
    """Format counts the way Table I does (e.g. "3.3M"), falling back to
    plain integers below 1M (synthetic traces are 1:100 scale)."""
    if value >= 1_000_000:
        return f"{value / 1e6:.1f}M"
    if value >= 10_000:
        return f"{value / 1e3:.1f}K"
    return f"{value:,}"
