"""Diurnal and weekly viewing-demand profile.

Catch-up TV demand is strongly time-of-day dependent: near-zero overnight,
a daytime plateau, and a pronounced evening peak (iPlayer's published
usage curves peak between 20:00 and 22:00).  Swarm capacities inherit
this shape, which is why the paper's Fig. 4 shows *daily* savings and why
simulated capacities fluctuate around the Little's-law mean.

:class:`DiurnalProfile` maps a time offset (seconds from the trace epoch)
to a relative arrival intensity and supports inverse-CDF sampling of
arrival times over a horizon, which is how the generator spreads each
item's sessions over the month.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["DiurnalProfile", "UK_TV_PROFILE", "FLAT_PROFILE"]

SECONDS_PER_HOUR = 3_600.0
HOURS_PER_DAY = 24
SECONDS_PER_DAY = SECONDS_PER_HOUR * HOURS_PER_DAY

#: Relative hourly demand for UK catch-up TV (midnight-indexed): quiet
#: small hours, daytime plateau, strong 20:00-22:00 peak.
_UK_TV_HOURLY: Tuple[float, ...] = (
    0.35, 0.18, 0.10, 0.06, 0.05, 0.06,  # 00-05
    0.12, 0.25, 0.42, 0.55, 0.62, 0.70,  # 06-11
    0.80, 0.78, 0.72, 0.70, 0.78, 0.95,  # 12-17
    1.30, 1.70, 2.20, 2.40, 1.90, 0.90,  # 18-23
)


@dataclass(frozen=True)
class DiurnalProfile:
    """Hour-of-day demand weights with a weekend multiplier.

    Attributes:
        hourly: 24 nonnegative weights, midnight first.  Scale is
            irrelevant -- only the shape matters.
        weekend_multiplier: factor applied to every hour on days 5 and 6
            of each week (the trace epoch starts a Monday).
    """

    hourly: Tuple[float, ...]
    weekend_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if len(self.hourly) != HOURS_PER_DAY:
            raise ValueError(
                f"need {HOURS_PER_DAY} hourly weights, got {len(self.hourly)}"
            )
        if any(w < 0 for w in self.hourly):
            raise ValueError("hourly weights must be >= 0")
        if sum(self.hourly) <= 0:
            raise ValueError("at least one hourly weight must be positive")
        if self.weekend_multiplier <= 0:
            raise ValueError(
                f"weekend_multiplier must be > 0, got {self.weekend_multiplier!r}"
            )

    def is_weekend(self, t: float) -> bool:
        """True when ``t`` falls on day 5 or 6 of a week (epoch = Monday)."""
        day = int(t // SECONDS_PER_DAY)
        return day % 7 >= 5

    def intensity(self, t: float) -> float:
        """Relative arrival intensity at time ``t`` (seconds from epoch)."""
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t!r}")
        hour = int((t % SECONDS_PER_DAY) // SECONDS_PER_HOUR)
        weight = self.hourly[hour]
        if self.is_weekend(t):
            weight *= self.weekend_multiplier
        return weight

    def hourly_cumulative(self, horizon: float) -> List[float]:
        """Cumulative intensity at each whole hour up to ``horizon``.

        Entry ``k`` is the integral of the (piecewise-constant) intensity
        over the first ``k`` hours; used for inverse-CDF sampling.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon!r}")
        num_hours = int(-(-horizon // SECONDS_PER_HOUR))
        weights = (self.intensity(h * SECONDS_PER_HOUR) for h in range(num_hours))
        return [0.0, *itertools.accumulate(weights)]

    def sample_times(
        self, count: int, horizon: float, rng: random.Random
    ) -> List[float]:
        """Draw ``count`` arrival times over [0, horizon), profile-shaped.

        Inverse-CDF over the piecewise-constant hourly intensity: pick a
        point uniform in total mass, find its hour by bisection, place it
        uniformly within the hour.  Returned times are unsorted.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        cumulative = self.hourly_cumulative(horizon)
        total = cumulative[-1]
        times = []
        for _ in range(count):
            point = rng.random() * total
            hour = bisect.bisect_right(cumulative, point) - 1
            hour = min(hour, len(cumulative) - 2)
            mass = cumulative[hour + 1] - cumulative[hour]
            frac = (point - cumulative[hour]) / mass if mass > 0 else rng.random()
            t = (hour + frac) * SECONDS_PER_HOUR
            times.append(min(t, horizon - 1e-6))
        return times


#: UK catch-up TV shape: evening peak, modest weekend daytime boost.
UK_TV_PROFILE = DiurnalProfile(hourly=_UK_TV_HOURLY, weekend_multiplier=1.15)

#: Uniform arrivals -- the M/M/inf model's stationarity assumption; used
#: in tests and for isolating diurnal effects in ablations.
FLAT_PROFILE = DiurnalProfile(hourly=tuple([1.0] * HOURS_PER_DAY))
