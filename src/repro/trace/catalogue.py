"""Content catalogue with Zipf-distributed popularity.

The paper's Fig. 3 shows the iPlayer catalogue has "a few popular items
but a large majority of unpopular items" -- the classic heavy-tailed
video-on-demand popularity.  We model per-item expected view counts as a
Zipf law over popularity rank, with optional *pinned* items whose view
counts are set explicitly (used to plant the Fig. 2 exemplars: a ~100K
views hit, a ~10K mid-tier show and a ~1K niche item, scaled to the
configured trace size).

Programme durations follow the TV-schedule grid (30/45/60/90-minute
slots) rather than a continuous distribution -- iPlayer is catch-up TV,
and "TV shows are much longer than the average YouTube video" (paper
Section IV.A).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["ContentItem", "Catalogue", "zipf_weights"]

#: TV schedule slot lengths in seconds, with rough airtime shares.
_SLOT_DURATIONS: Tuple[Tuple[float, float], ...] = (
    (30 * 60.0, 0.45),
    (45 * 60.0, 0.20),
    (60 * 60.0, 0.25),
    (90 * 60.0, 0.10),
)

_GENRES = (
    "drama", "comedy", "news", "documentary", "entertainment", "sport", "children"
)


def zipf_weights(n: int, exponent: float) -> List[float]:
    """Normalised Zipf weights ``w_k ~ k^-exponent`` for ranks 1..n."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    raw = [(k + 1) ** -exponent for k in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


@dataclass(frozen=True)
class ContentItem:
    """One programme available for on-demand streaming.

    Attributes:
        content_id: stable identifier, e.g. ``"item-0042"``.
        title: human-readable name (synthetic ones are generated).
        duration: programme length in seconds.
        genre: coarse genre label, informational.
        expected_views: expected number of sessions over the trace
            horizon (the Zipf mass assigned to this item).
    """

    content_id: str
    title: str
    duration: float
    genre: str
    expected_views: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration!r}")
        if self.expected_views < 0:
            raise ValueError(
                f"expected_views must be >= 0, got {self.expected_views!r}"
            )


@dataclass(frozen=True)
class Catalogue:
    """The full set of items available during the trace.

    Attributes:
        items: all items, most popular first.
    """

    items: Tuple[ContentItem, ...]

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("catalogue must contain at least one item")
        ids = [item.content_id for item in self.items]
        if len(set(ids)) != len(ids):
            raise ValueError("content ids must be unique")

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def get(self, content_id: str) -> ContentItem:
        """Look up an item by id."""
        for item in self.items:
            if item.content_id == content_id:
                return item
        raise KeyError(f"no item {content_id!r} in catalogue")

    @property
    def total_expected_views(self) -> float:
        return sum(item.expected_views for item in self.items)

    def by_popularity(self) -> List[ContentItem]:
        """Items sorted by expected views, descending."""
        return sorted(self.items, key=lambda i: i.expected_views, reverse=True)

    def popularity_tiers(self) -> Dict[str, ContentItem]:
        """The Fig. 2 exemplars: the most popular item, a mid-tier item
        (~popularity rank at 1/10th the top item's views) and an
        unpopular item (~1/100th).

        Returns:
            Mapping with keys ``"popular"``, ``"medium"``, ``"unpopular"``.
        """
        ranked = self.by_popularity()
        top = ranked[0]
        tiers = {"popular": top}
        for key, factor in (("medium", 0.1), ("unpopular", 0.01)):
            target = top.expected_views * factor
            tiers[key] = min(ranked, key=lambda i: abs(i.expected_views - target))
        return tiers

    @classmethod
    def generate(
        cls,
        num_items: int,
        total_expected_views: float,
        *,
        zipf_exponent: float = 0.9,
        pinned_views: Optional[Mapping[str, float]] = None,
        rng: Optional[random.Random] = None,
    ) -> "Catalogue":
        """Generate a synthetic catalogue.

        Args:
            num_items: catalogue size (iPlayer's is thousands of items).
            total_expected_views: expected sessions across the horizon;
                divided over items by Zipf rank.
            zipf_exponent: popularity skew (literature on VoD traces
                reports 0.8-1.0; the default 0.9 sits in the middle).
            pinned_views: optional explicit view counts, keyed by
                content id; pinned items are prepended and the Zipf mass
                covers the remainder.  Used to plant the Fig. 2 tier
                exemplars at paper-like popularity ratios.
            rng: randomness for durations/genres (a fresh seeded
                generator when omitted).
        """
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {num_items}")
        if total_expected_views < 0:
            raise ValueError(
                f"total_expected_views must be >= 0, got {total_expected_views}"
            )
        rng = rng or random.Random(0)
        pinned = dict(pinned_views or {})
        if len(pinned) > num_items:
            raise ValueError(
                f"{len(pinned)} pinned items exceed catalogue size {num_items}"
            )
        pinned_total = sum(pinned.values())
        num_zipf = num_items - len(pinned)
        remaining = max(total_expected_views - pinned_total, 0.0)
        weights = zipf_weights(num_zipf, zipf_exponent) if num_zipf else []

        items: List[ContentItem] = []
        for content_id, views in pinned.items():
            items.append(_make_item(content_id, views, rng))
        for rank, weight in enumerate(weights):
            content_id = f"item-{rank:05d}"
            items.append(_make_item(content_id, remaining * weight, rng))
        items.sort(key=lambda i: i.expected_views, reverse=True)
        return cls(items=tuple(items))


def _make_item(
    content_id: str, expected_views: float, rng: random.Random
) -> ContentItem:
    durations = [d for d, _ in _SLOT_DURATIONS]
    weights = [w for _, w in _SLOT_DURATIONS]
    duration = rng.choices(durations, weights=weights)[0]
    genre = rng.choice(_GENRES)
    return ContentItem(
        content_id=content_id,
        title=f"Programme {content_id}",
        duration=duration,
        genre=genre,
        expected_views=expected_views,
    )
