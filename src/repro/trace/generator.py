"""Synthetic trace generator: the stand-in for the proprietary iPlayer trace.

The paper drives its simulator from a month of BBC iPlayer session
records (start time, duration, bitrate per session) for London users.
That trace is not public, so this module generates traces with the same
*statistical structure*, every aspect of which is an explicit,
documented parameter:

* Zipf catalogue popularity (Fig. 3's heavy tail),
* per-item Poisson arrivals shaped by a TV diurnal/weekly profile,
* session durations = programme length x a Beta-distributed completion,
* a device/bitrate mix centred on the paper's modal 1.5 Mbps,
* ISP market shares and uniform exchange-point attachment,
* log-normally skewed per-user activity.

Scale is set by ``num_users`` / ``expected_sessions`` -- defaults are
roughly 1:100 of the paper's London month (Table I), which keeps every
experiment laptop-sized while exercising identical code paths.  All
randomness flows from a single seed: traces are fully reproducible.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Optional, Sequence, Tuple

from repro.topology.city import CityNetwork, default_london
from repro.trace.catalogue import Catalogue, ContentItem
from repro.trace.diurnal import DiurnalProfile, UK_TV_PROFILE
from repro.trace.events import SECONDS_PER_DAY, Session, Trace
from repro.trace.population import DEFAULT_DEVICE_MIX, DeviceProfile, Population

__all__ = ["GeneratorConfig", "TraceGenerator", "generate_trace", "sample_poisson"]


@dataclass(frozen=True)
class GeneratorConfig:
    """All knobs of the synthetic trace.

    Attributes:
        num_users: population size (paper: 3.3M London users; default is
            a 1:100-ish scale).
        num_items: catalogue size.
        days: trace length in days (paper: one month).
        expected_sessions: expected total session count over the horizon
            (paper: 23.5M for London in Sep 2013).
        zipf_exponent: catalogue popularity skew.
        pinned_views: explicit expected view counts for named items --
            used to plant the Fig. 2 popularity-tier exemplars.
        completion_alpha: alpha of the Beta completion distribution.
        completion_beta: beta of the Beta completion distribution (the
            default Beta(6, 2) has mean 0.75: most viewers watch most of
            a programme).
        min_session_seconds: sessions shorter than this are clamped up
            (trackers rarely log sub-minute sessions).
        activity_sigma: log-normal sigma of the per-user activity skew.
        seed: master seed; every derived stream is deterministic in it.
    """

    num_users: int = 30_000
    num_items: int = 1_500
    days: int = 30
    expected_sessions: float = 200_000.0
    zipf_exponent: float = 0.9
    pinned_views: Mapping[str, float] = field(default_factory=dict)
    completion_alpha: float = 6.0
    completion_beta: float = 2.0
    min_session_seconds: float = 60.0
    activity_sigma: float = 1.0
    seed: int = 20180701

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ValueError(f"num_users must be >= 1, got {self.num_users}")
        if self.num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {self.num_items}")
        if self.days < 1:
            raise ValueError(f"days must be >= 1, got {self.days}")
        if self.expected_sessions < 0:
            raise ValueError(
                f"expected_sessions must be >= 0, got {self.expected_sessions}"
            )
        if self.completion_alpha <= 0 or self.completion_beta <= 0:
            raise ValueError("completion Beta parameters must be > 0")
        if self.min_session_seconds <= 0:
            raise ValueError(
                f"min_session_seconds must be > 0, got {self.min_session_seconds}"
            )

    @property
    def horizon(self) -> float:
        """Trace length in seconds."""
        return self.days * SECONDS_PER_DAY

    def scaled(self, factor: float) -> "GeneratorConfig":
        """A copy with users/sessions scaled by ``factor`` (for quick runs)."""
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return replace(
            self,
            num_users=max(1, int(self.num_users * factor)),
            expected_sessions=self.expected_sessions * factor,
            pinned_views={k: v * factor for k, v in self.pinned_views.items()},
        )


def sample_poisson(rng: random.Random, lam: float) -> int:
    """Draw from Poisson(lam) using only the stdlib ``random.Random``.

    Knuth's product method below ``lam = 30``; a rounded normal
    approximation (with continuity correction, clamped at 0) above --
    exact tails are irrelevant at that size and the approximation keeps
    generation O(1) for popular items.
    """
    if lam < 0:
        raise ValueError(f"lam must be >= 0, got {lam!r}")
    if lam == 0:
        return 0
    if lam < 30.0:
        threshold = math.exp(-lam)
        count, product = 0, rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count
    value = rng.gauss(lam, math.sqrt(lam))
    return max(0, int(round(value)))


@dataclass(frozen=True)
class TraceGenerator:
    """Generates reproducible synthetic traces from a config.

    Attributes:
        config: the trace parameters.
        city: the multi-ISP city viewers attach to (default: the paper's
            five-ISP London).
        device_mix: device/bitrate classes.
        profile: diurnal arrival-intensity profile.
    """

    config: GeneratorConfig = field(default_factory=GeneratorConfig)
    city: CityNetwork = field(default_factory=default_london)
    device_mix: Tuple[DeviceProfile, ...] = DEFAULT_DEVICE_MIX
    profile: DiurnalProfile = UK_TV_PROFILE

    def build_catalogue(self) -> Catalogue:
        """The item catalogue implied by the config (deterministic)."""
        return Catalogue.generate(
            self.config.num_items,
            self.config.expected_sessions,
            zipf_exponent=self.config.zipf_exponent,
            pinned_views=self.config.pinned_views,
            rng=random.Random(self._derived_seed("catalogue")),
        )

    def build_population(self) -> Population:
        """The viewer population implied by the config (deterministic)."""
        return Population.generate(
            self.config.num_users,
            city=self.city,
            device_mix=self.device_mix,
            activity_sigma=self.config.activity_sigma,
            rng=random.Random(self._derived_seed("population")),
        )

    def generate(self) -> Trace:
        """Generate the full trace (materialized and start-time-sorted).

        Per item: a Poisson view count, diurnal-shaped start times,
        activity-weighted viewers, Beta-completion durations, the
        viewer's device bitrate.
        """
        return Trace.from_sessions(self.iter_sessions(), horizon=self.config.horizon)

    def iter_sessions(self) -> Iterator[Session]:
        """Yield the trace's sessions lazily, one at a time.

        The streaming twin of :meth:`generate`: identical sessions (the
        same RNG streams are consumed in the same order), yielded one at
        a time instead of collected and sorted into a
        :class:`~repro.trace.events.Trace` tuple.  Feeding this into
        ``Simulator.run_stream`` skips that intermediate materialized
        copy -- the simulator still retains the sessions grouped into
        swarm shards, so peak memory remains O(sessions), just with one
        full-trace tuple less; a consumer that filters or windows the
        stream keeps only what it selects.  Sessions arrive in
        generation order (grouped by content item), *not* sorted by
        start time; the simulator's canonical sharding makes the result
        independent of that ordering.
        """
        catalogue = self.build_catalogue()
        population = self.build_population()
        rng = random.Random(self._derived_seed("sessions"))
        horizon = self.config.horizon

        users = list(population.users)
        cum_weights = _cumulative(population.activity_weights())

        session_id = 0
        for item in catalogue:
            count = sample_poisson(rng, item.expected_views)
            if count == 0:
                continue
            times = self.profile.sample_times(count, horizon, rng)
            viewers = rng.choices(users, cum_weights=cum_weights, k=count)
            for start, viewer in zip(times, viewers):
                duration = self._session_duration(item, rng)
                duration = min(duration, horizon - start)
                if duration < self.config.min_session_seconds:
                    continue
                yield Session(
                    session_id=session_id,
                    user_id=viewer.user_id,
                    content_id=item.content_id,
                    start=start,
                    duration=duration,
                    bitrate=viewer.bitrate,
                    attachment=viewer.attachment,
                    device=viewer.device.name,
                )
                session_id += 1

    def _session_duration(self, item: ContentItem, rng: random.Random) -> float:
        completion = rng.betavariate(
            self.config.completion_alpha, self.config.completion_beta
        )
        return max(item.duration * completion, self.config.min_session_seconds)

    def _derived_seed(self, stream: str) -> int:
        """Independent, stable seed per generation stream.

        Uses crc32 rather than ``hash()`` -- string hashing is salted per
        process and would break cross-process reproducibility.
        """
        mixed = zlib.crc32(stream.encode("utf-8")) ^ (self.config.seed * 0x9E3779B1)
        return mixed & 0x7FFFFFFF


def generate_trace(
    config: Optional[GeneratorConfig] = None,
    *,
    city: Optional[CityNetwork] = None,
    profile: Optional[DiurnalProfile] = None,
) -> Trace:
    """One-call trace generation with defaults (see :class:`GeneratorConfig`)."""
    generator = TraceGenerator(
        config=config or GeneratorConfig(),
        city=city or default_london(),
        profile=profile or UK_TV_PROFILE,
    )
    return generator.generate()


def _cumulative(weights: Sequence[float]) -> list:
    total = 0.0
    out = []
    for w in weights:
        total += w
        out.append(total)
    return out
