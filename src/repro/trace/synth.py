"""Seeded generative city-scale trace synthesis, written straight to disk.

The paper's workloads are all the single-city London model rebuilt from
Table I.  This module generates *parametric* city workloads instead --
the knobs CoGenT-style trace generators expose (catalogue size and
churn, Zipf-like popularity with drift over the horizon, diurnal demand
curves) plus the per-region topology skew an Open-Connect-style CDN
sees (ISP market shares and exchange attachment following their own
power laws) -- and streams every session **straight into the binary
session store** (:class:`~repro.trace.store.StoreWriter`, via its
``append_fields`` zero-object entry point).  No JSONL intermediate and
no :class:`~repro.trace.events.Session` objects exist at any point;
synthesis cost is one pass of scalar arithmetic plus 56 B of disk per
session.

Determinism contract:

* :meth:`SynthConfig.fingerprint` is a pure function of the config
  (seed included).  Two ``synthesize`` calls with equal configs produce
  **byte-identical** store files, on any host -- the RNG is stdlib
  ``random.Random`` seeded from ``crc32``-derived streams, never
  ``hash()``.
* :attr:`SynthConfig.cache_token` is therefore a valid shard-cache
  token: feed it to ``Simulator.run_stream(..., cache_token=...)`` and
  the content-addressed shard cache (:mod:`repro.sim.grouping`) makes
  repeated simulation of the same synthetic city free of the re-sort.
* :func:`ensure_store` content-addresses the store *file* by the same
  fingerprint, so repeated synthesis itself is also free: an existing
  store whose sidecar matches the fingerprint is reused untouched.

Region naming: content ids are ``"<region>/c<slot>.g<gen>"`` and ISP
names ``"<region>/isp-<i>"``, so distinct regions have disjoint swarm
key spaces under any policy that scopes by content -- the property
multi-city federation (:mod:`repro.sim.federate`) builds its bit-for-bit
union parity on.  Region names are restricted to ``[A-Za-z0-9_]`` so
that region-name order and content-id lexicographic order agree (every
allowed character sorts after ``"/"``).
"""

from __future__ import annotations

import json
import math
import os
import random
import re
import zlib
from bisect import bisect_right
from dataclasses import asdict, dataclass
from hashlib import blake2b
from pathlib import Path
from typing import List, Optional, Union

from repro.trace.catalogue import zipf_weights
from repro.trace.events import SECONDS_PER_DAY
from repro.trace.generator import sample_poisson
from repro.trace.population import DEFAULT_DEVICE_MIX
from repro.trace.store import STORE_VERSION, StoreWriter

__all__ = ["SynthConfig", "SynthResult", "synthesize", "ensure_store"]

#: Bumped whenever the generation algorithm changes in a way that
#: alters output bytes for an unchanged config -- part of the
#: fingerprint, so stale content-addressed stores self-invalidate.
SYNTH_VERSION = 1

_REGION_PATTERN = re.compile(r"^[A-Za-z0-9_]+$")

#: Shortest session ever emitted (seconds); durations are clamped to
#: ``[_MIN_DURATION, horizon - start]``.
_MIN_DURATION = 60.0


@dataclass(frozen=True)
class SynthConfig:
    """All knobs of one synthetic city workload.

    Every field participates in :meth:`fingerprint`; changing any single
    one (seed included) changes the fingerprint, and equal configs
    synthesize byte-identical stores.

    Attributes:
        region: city/region label, ``[A-Za-z0-9_]+``.  Prefixes content
            ids, ISP names and the numeric id space, so regions are
            disjoint by construction (see the module docstring).
        seed: master RNG seed; every random stream derives from it.
        days: horizon length in whole days.
        users: population size.
        catalogue_size: concurrently available catalogue slots.
        sessions_per_user_day: expected demand intensity (sessions per
            user per weekday; weekends scale by ``weekend_multiplier``).
        zipf_exponent: catalogue popularity skew (``w ~ rank^-s``).
        popularity_drift: fraction of the catalogue's rank range an
            item drifts (in its own fixed random direction) across the
            whole horizon; 0 freezes the popularity ranking.
        catalogue_churn: fraction of catalogue slots replaced per day;
            replacements are staggered across slots, and a replaced
            slot starts a new content generation (a fresh content id at
            the slot's current rank).
        peak_hour: centre of the diurnal demand peak (0-23, local).
        diurnal_strength: 0 gives a flat daily profile, 1 concentrates
            demand entirely in the evening bump.
        weekend_multiplier: demand multiplier on days 5 and 6 of each
            week (the trace starts on a Monday).
        num_isps: ISPs in the region.
        isp_skew: Zipf exponent over ISP market shares (0 = equal
            shares).
        num_exchanges: exchanges per ISP.
        num_pops: PoPs per ISP (an exchange belongs to PoP
            ``exchange % num_pops``).
        exchange_skew: Zipf exponent over exchange attachment -- how
            concentrated users are on the region's big exchanges.
        user_activity_skew: Zipf exponent over per-user demand weight
            (0 = uniform viewers).
        mean_duration: mean session length in seconds (log-normal).
        duration_sigma: log-normal sigma of session length.
        catalogue_prefix: content-id prefix; ``None`` uses ``region``.
            Give several regions the *same* prefix to model a shared
            catalogue whose swarms span regions (the federation
            ledger's cross-region case).
    """

    region: str = "metro"
    seed: int = 0
    days: int = 7
    users: int = 1000
    catalogue_size: int = 300
    sessions_per_user_day: float = 1.2
    zipf_exponent: float = 0.9
    popularity_drift: float = 0.0
    catalogue_churn: float = 0.0
    peak_hour: float = 20.0
    diurnal_strength: float = 0.7
    weekend_multiplier: float = 1.15
    num_isps: int = 4
    isp_skew: float = 1.0
    num_exchanges: int = 48
    num_pops: int = 4
    exchange_skew: float = 0.6
    user_activity_skew: float = 0.5
    mean_duration: float = 1500.0
    duration_sigma: float = 0.5
    catalogue_prefix: Optional[str] = None

    def __post_init__(self) -> None:
        if not _REGION_PATTERN.match(self.region):
            raise ValueError(
                f"region must match [A-Za-z0-9_]+, got {self.region!r} "
                "(region-prefixed ids must sort like region names)"
            )
        if self.catalogue_prefix is not None and not _REGION_PATTERN.match(
            self.catalogue_prefix
        ):
            raise ValueError(
                f"catalogue_prefix must match [A-Za-z0-9_]+, "
                f"got {self.catalogue_prefix!r}"
            )
        for name, minimum in (
            ("days", 1),
            ("users", 1),
            ("catalogue_size", 1),
            ("num_isps", 1),
            ("num_exchanges", 1),
            ("num_pops", 1),
        ):
            if getattr(self, name) < minimum:
                raise ValueError(
                    f"{name} must be >= {minimum}, got {getattr(self, name)!r}"
                )
        if self.sessions_per_user_day <= 0:
            raise ValueError(
                "sessions_per_user_day must be > 0, "
                f"got {self.sessions_per_user_day!r}"
            )
        for name in ("zipf_exponent", "isp_skew", "exchange_skew", "user_activity_skew"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)!r}")
        for name in ("popularity_drift", "catalogue_churn", "diurnal_strength"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(
                    f"{name} must be in [0, 1], got {getattr(self, name)!r}"
                )
        if not 0.0 <= self.peak_hour < 24.0:
            raise ValueError(f"peak_hour must be in [0, 24), got {self.peak_hour!r}")
        if self.weekend_multiplier <= 0:
            raise ValueError(
                f"weekend_multiplier must be > 0, got {self.weekend_multiplier!r}"
            )
        if self.mean_duration <= 0:
            raise ValueError(
                f"mean_duration must be > 0, got {self.mean_duration!r}"
            )
        if self.duration_sigma < 0:
            raise ValueError(
                f"duration_sigma must be >= 0, got {self.duration_sigma!r}"
            )

    @property
    def horizon(self) -> float:
        """Trace horizon in seconds (whole days)."""
        return self.days * SECONDS_PER_DAY

    @property
    def content_prefix(self) -> str:
        """The prefix content ids carry (``catalogue_prefix`` or region)."""
        return self.catalogue_prefix or self.region

    @property
    def id_base(self) -> int:
        """Region-derived base for session and user ids.

        A pure function of the region name, so regions occupy disjoint
        numeric id ranges without any coordination between synthesizers.
        """
        return (zlib.crc32(self.region.encode("ascii")) % 999_983) * 10**12

    def fingerprint(self) -> str:
        """Stable content hash of (seed, params).

        Covers every config field plus :data:`SYNTH_VERSION` and
        :data:`~repro.trace.store.STORE_VERSION`, so any change that
        could alter output bytes changes the fingerprint.
        """
        payload = {
            "synth_version": SYNTH_VERSION,
            "store_version": STORE_VERSION,
            "params": asdict(self),
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return blake2b(blob, digest_size=16).hexdigest()

    @property
    def cache_token(self) -> str:
        """A shard-cache token for this config's synthesized trace."""
        return f"synth:{self.fingerprint()}"

    def _derived_seed(self, stream: str) -> int:
        """Independent, reproducible seed for one named random stream."""
        return (zlib.crc32(stream.encode("ascii")) ^ (self.seed * 0x9E3779B1)) & (
            2**31 - 1
        )


@dataclass(frozen=True)
class SynthResult:
    """What one :func:`synthesize` call produced (or reused).

    Attributes:
        path: the store file.
        fingerprint: :meth:`SynthConfig.fingerprint` of the config.
        cache_token: shard-cache token for simulating this store.
        sessions: session records in the store.
        users_active: distinct users with at least one session.
        distinct_items: distinct content ids that received sessions
            (> ``catalogue_size`` once churn rolls generations).
        horizon: trace horizon in seconds.
        reused: True when an existing content-addressed store matched
            the fingerprint and synthesis was skipped entirely.
    """

    path: Path
    fingerprint: str
    cache_token: str
    sessions: int
    users_active: int
    distinct_items: int
    horizon: float
    reused: bool


def _cumulative(weights: List[float]) -> List[float]:
    total = 0.0
    out = []
    for weight in weights:
        total += weight
        out.append(total)
    return out


def _hourly_cumulative(config: SynthConfig) -> List[float]:
    """Cumulative weights of the 24 in-day demand hours.

    A raised-cosine bump centred on ``peak_hour`` blended with a flat
    floor by ``diurnal_strength`` -- the inverse-CDF table every
    session start time is drawn from.
    """
    strength = config.diurnal_strength
    weights = []
    for hour in range(24):
        phase = 2.0 * math.pi * (hour + 0.5 - config.peak_hour) / 24.0
        bump = (0.5 * (1.0 + math.cos(phase))) ** 2
        weights.append((1.0 - strength) + strength * bump)
    return _cumulative(weights)


def _build_population(config: SynthConfig):
    """Per-user attachment/bitrate columns (no User objects).

    Returns parallel lists: ISP ref (index into the region ISP names),
    pop, exchange, bitrate, device ref (index into device names), plus
    the cumulative per-user activity weights used to sample viewers.
    """
    rng = random.Random(config._derived_seed("population"))
    isp_cum = _cumulative(zipf_weights(config.num_isps, config.isp_skew))
    exchange_cum = _cumulative(
        zipf_weights(config.num_exchanges, config.exchange_skew)
    )
    device_cum = _cumulative([d.share for d in DEFAULT_DEVICE_MIX])
    activity = zipf_weights(config.users, config.user_activity_skew)
    isp_refs: List[int] = []
    pops: List[int] = []
    exchanges: List[int] = []
    bitrates: List[float] = []
    device_refs: List[int] = []
    for _ in range(config.users):
        isp = bisect_right(isp_cum, rng.random() * isp_cum[-1])
        isp = min(isp, config.num_isps - 1)
        rank = bisect_right(exchange_cum, rng.random() * exchange_cum[-1])
        rank = min(rank, config.num_exchanges - 1)
        # Rotate popular exchanges per ISP so the region's load is not
        # stacked on the same exchange index in every ISP tree.
        exchange = (rank + isp * 7) % config.num_exchanges
        device = bisect_right(device_cum, rng.random() * device_cum[-1])
        device = min(device, len(DEFAULT_DEVICE_MIX) - 1)
        isp_refs.append(isp)
        pops.append(exchange % config.num_pops)
        exchanges.append(exchange)
        bitrates.append(DEFAULT_DEVICE_MIX[device].bitrate)
        device_refs.append(device)
    # Shuffle activity ranks over users so user_id order carries no
    # popularity structure (ranks, not weights, are permuted: the
    # weight multiset -- and thus total demand -- is skew-exact).
    order = list(range(config.users))
    rng.shuffle(order)
    user_cum = _cumulative([activity[order[u]] for u in range(config.users)])
    return isp_refs, pops, exchanges, bitrates, device_refs, user_cum


def _slot_drift(config: SynthConfig) -> List[float]:
    """Each slot's fixed drift direction in [-1, 1]."""
    rng = random.Random(config._derived_seed("catalogue"))
    return [rng.uniform(-1.0, 1.0) for _ in range(config.catalogue_size)]


def synthesize(
    config: SynthConfig, path: Union[str, Path], *, force: bool = False
) -> SynthResult:
    """Generate ``config``'s workload into a binary session store.

    One deterministic pass: for each day, each catalogue slot's demand
    is Poisson around its (drifted, churned, diurnally shaped) share of
    the day's total, and each session is appended to the store as raw
    fields -- no Session objects, no JSONL.  The write is atomic (temp
    file + rename) and a ``<path>.synth.json`` sidecar records the
    config fingerprint; a later call with an unchanged config sees the
    sidecar and returns ``reused=True`` without touching the store
    (pass ``force=True`` to regenerate anyway).
    """
    path = Path(path)
    fingerprint = config.fingerprint()
    sidecar = path.with_name(path.name + ".synth.json")
    if not force and path.exists() and sidecar.exists():
        try:
            meta = json.loads(sidecar.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            meta = None
        if meta is not None and meta.get("fingerprint") == fingerprint:
            return SynthResult(
                path=path,
                fingerprint=fingerprint,
                cache_token=config.cache_token,
                sessions=int(meta["sessions"]),
                users_active=int(meta["users_active"]),
                distinct_items=int(meta["distinct_items"]),
                horizon=config.horizon,
                reused=True,
            )

    isp_refs, pops, exchanges, bitrates, device_refs, user_cum = _build_population(
        config
    )
    isp_names = [f"{config.region}/isp-{i}" for i in range(config.num_isps)]
    device_names = [d.name for d in DEFAULT_DEVICE_MIX]
    drift = _slot_drift(config)
    hour_cum = _hourly_cumulative(config)
    horizon = config.horizon
    prefix = config.content_prefix
    id_base = config.id_base
    log_mu = math.log(config.mean_duration) - config.duration_sigma**2 / 2.0

    sessions_written = 0
    active_users = set()
    distinct_items = set()
    temp_path = path.with_name(path.name + ".tmp")
    writer = StoreWriter(temp_path, horizon=horizon)
    try:
        for day in range(config.days):
            rng = random.Random(config._derived_seed(f"day-{day}"))
            day_frac = day / max(config.days - 1, 1)
            weights = []
            for slot in range(config.catalogue_size):
                shift = round(
                    drift[slot]
                    * config.popularity_drift
                    * config.catalogue_size
                    * day_frac
                )
                rank = (slot + shift) % config.catalogue_size
                weights.append((rank + 1) ** -config.zipf_exponent)
            total_weight = sum(weights)
            day_total = (
                config.users
                * config.sessions_per_user_day
                * (config.weekend_multiplier if day % 7 in (5, 6) else 1.0)
            )
            day_start = day * SECONDS_PER_DAY
            for slot in range(config.catalogue_size):
                expected = day_total * weights[slot] / total_weight
                count = sample_poisson(rng, expected)
                if count == 0:
                    continue
                generation = math.floor(
                    config.catalogue_churn * day + slot / config.catalogue_size
                )
                content_id = f"{prefix}/c{slot:05d}.g{generation}"
                distinct_items.add(content_id)
                for _ in range(count):
                    hour = bisect_right(hour_cum, rng.random() * hour_cum[-1])
                    hour = min(hour, 23)
                    start = day_start + hour * 3600.0 + rng.random() * 3600.0
                    user = bisect_right(user_cum, rng.random() * user_cum[-1])
                    user = min(user, config.users - 1)
                    if config.duration_sigma > 0:
                        raw = rng.lognormvariate(log_mu, config.duration_sigma)
                    else:
                        raw = config.mean_duration
                    duration = min(max(raw, _MIN_DURATION), horizon - start)
                    active_users.add(user)
                    writer.append_fields(
                        session_id=id_base + sessions_written,
                        user_id=id_base + user,
                        content_id=content_id,
                        start=start,
                        duration=duration,
                        bitrate=bitrates[user],
                        isp=isp_names[isp_refs[user]],
                        pop=pops[user],
                        exchange=exchanges[user],
                        device=device_names[device_refs[user]],
                    )
                    sessions_written += 1
        writer.close()
        os.replace(temp_path, path)
    except BaseException:
        writer.close()
        temp_path.unlink(missing_ok=True)
        raise
    meta = {
        "fingerprint": fingerprint,
        "store_version": STORE_VERSION,
        "sessions": sessions_written,
        "users_active": len(active_users),
        "distinct_items": len(distinct_items),
        "params": asdict(config),
    }
    sidecar_tmp = sidecar.with_name(sidecar.name + ".tmp")
    sidecar_tmp.write_text(json.dumps(meta, sort_keys=True), encoding="utf-8")
    os.replace(sidecar_tmp, sidecar)
    return SynthResult(
        path=path,
        fingerprint=fingerprint,
        cache_token=config.cache_token,
        sessions=sessions_written,
        users_active=len(active_users),
        distinct_items=len(distinct_items),
        horizon=horizon,
        reused=False,
    )


def ensure_store(
    config: SynthConfig, directory: Union[str, Path]
) -> SynthResult:
    """A content-addressed store for ``config`` under ``directory``.

    The store lives at ``synth-<region>-<fingerprint16>.store``; an
    existing file with a matching sidecar is reused as-is, so repeated
    synthesis of the same config costs one sidecar read.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = f"synth-{config.region}-{config.fingerprint()[:16]}.store"
    return synthesize(config, directory / name)
