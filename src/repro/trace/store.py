"""Out-of-core session storage: a compact binary columnar trace format.

The paper's headline workload is a month of London catch-up TV -- 23.5M
sessions from 3.3M users (Table I).  At that scale a trace does not fit
in coordinator RAM as Python objects (a :class:`~repro.trace.events.\
Session` costs hundreds of bytes; the packed record below costs 56), so
this module provides the disk substrate the out-of-core pipeline stands
on:

* :class:`StoreWriter` / :class:`StoreReader` -- an append-only binary
  session file: fixed-width struct-packed numeric columns plus interned
  string tables for ``content_id`` / ``isp`` / ``device`` (and, via the
  interned :class:`~repro.topology.nodes.AttachmentPoint` flyweights,
  one attachment object per distinct (ISP, PoP, exchange) triple on
  read-back).  Records are fixed size, so any contiguous extent of
  sessions is addressable as ``(offset, length)`` byte ranges and a
  worker process can decode *its own* sessions straight from the file
  instead of receiving them pickled from the coordinator.
* :class:`ExternalSessionSorter` -- a classic external merge-sort:
  bounded in-memory runs are sorted and spilled as store files, then
  k-way merged (``heapq.merge``) into one globally sorted stream.  The
  sort key is injected by the caller (the simulator sorts by
  ``(SwarmKey.sort_key, start, session_id)``), so the module stays
  independent of the simulation layer.
* :class:`Extent` / :class:`ShardManifest` -- the map from each group
  (swarm) to its ``(file, offset, length)`` extent in a sorted store,
  the unit of zero-copy handoff to workers.
* :func:`shared_reader` -- a per-process cache of open readers so a
  worker decoding many extents of the same shard file pays one open /
  one string-table parse, with thread-safe positional reads
  (``os.pread``) underneath.

Everything round-trips losslessly: floats are stored as IEEE-754
doubles, so a session read back from a store compares equal -- bit for
bit -- to the one written.
"""

from __future__ import annotations

import errno
import hashlib
import heapq
import json
import os
import struct
import threading
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.sim import faults
from repro.topology.nodes import intern_attachment
from repro.trace.events import Session

__all__ = [
    "RECORD_SIZE",
    "STORE_VERSION",
    "StoreCorruptionError",
    "SessionColumns",
    "StoreWriter",
    "StoreReader",
    "Extent",
    "ShardManifest",
    "ExternalSessionSorter",
    "SorterStats",
    "shared_reader",
    "evict_reader",
    "clear_reader_cache",
    "trace_fingerprint",
    "file_fingerprint",
    "save_manifest",
    "load_manifest",
]

#: File layout:  [header][records...][footer JSON][tail]
#:   header = magic (4 bytes) + version (u32 LE)
#:   record = the fixed-width struct below, one per session
#:   footer = UTF-8 JSON: record count, horizon, string tables
#:   tail   = footer byte offset (u64 LE) + magic (4 bytes)
_MAGIC = b"RPSS"
_VERSION = 1
_HEADER = struct.Struct("<4sI")
_TAIL = struct.Struct("<Q4s")

#: The on-disk format version, exported for cache keying: a cached
#: shard + manifest is only reusable by a process that writes (and
#: reads) the identical record layout, so content-addressed cache keys
#: must include this number -- bumping ``_VERSION`` automatically
#: invalidates every cache entry built by older code.
STORE_VERSION = _VERSION

#: One session: session_id, user_id, content ref, start, duration,
#: bitrate, isp ref, pop, exchange, device ref.  Little-endian, packed
#: (no padding) -- 56 bytes.
_RECORD = struct.Struct("<qqIdddHIIH")
RECORD_SIZE = _RECORD.size

#: Sequential readers decode this many records per file read.
_READ_CHUNK_RECORDS = 4096


class StoreCorruptionError(ValueError):
    """A store file's bytes do not match its self-description.

    Raised when a file fails structural validation: bad magic, an
    unsupported version, a tail pointing outside the file, a record
    region whose size disagrees with the footer's record count, or an
    extent read that comes back short.  Subclasses :class:`ValueError`
    so existing ``except ValueError`` call sites keep working.
    """


@dataclass(frozen=True)
class SessionColumns:
    """One extent decoded straight into typed columns -- no objects.

    The zero-object ingest primitive: every numeric field of the 56-byte
    record lands in a stdlib :class:`array.array` (``q`` for integers,
    ``d`` for IEEE-754 doubles, both lossless round-trips of the stored
    values), and string-valued fields stay as integer refs into the
    store file's interned tables.  ``content_table`` / ``isp_table`` /
    ``device_table`` are the read-only tables themselves so callers can
    intern ``isp_table[isp_refs[i]]`` at accounting boundaries -- but the
    hot path never has to.

    Within one store file the ref <-> string mapping is bijective
    (:class:`_StringTable` interns first-encounter), so dense codes
    computed over integer refs are identical to codes computed over the
    strings -- the property the columnar schedule builder relies on.
    """

    count: int
    session_ids: array
    user_ids: array
    content_refs: array
    starts: array
    durations: array
    bitrates: array
    isp_refs: array
    pops: array
    exchanges: array
    device_refs: array
    content_table: Sequence[str]
    isp_table: Sequence[str]
    device_table: Sequence[str]


class _StringTable:
    """Order-preserving string interner for one store file."""

    __slots__ = ("_index", "values")

    def __init__(self, values: Optional[Sequence[str]] = None) -> None:
        self.values: List[str] = list(values or [])
        self._index: Dict[str, int] = {v: i for i, v in enumerate(self.values)}

    def ref(self, value: str) -> int:
        """Return the ref for ``value``, interning it on first encounter."""
        index = self._index.get(value)
        if index is None:
            index = self._index[value] = len(self.values)
            self.values.append(value)
        return index


class StoreWriter:
    """Append-only writer of the binary session format.

    Records are written in :meth:`append` order; string tables are
    collected incrementally and written into the footer at
    :meth:`close`.  A file is unreadable until closed (the footer is
    what makes it self-describing) -- use the context-manager form::

        with StoreWriter(path, horizon) as writer:
            for session in sessions:
                writer.append(session)

    Args:
        path: output file path (parent directories are created).
        horizon: trace horizon in seconds, stored in the footer so
            round-trips are lossless; 0.0 marks "not recorded"
            (intermediate sort runs).
    """

    def __init__(self, path: Union[str, Path], horizon: float = 0.0) -> None:
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon!r}")
        self.path = Path(path)
        self.horizon = horizon
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "wb")
        self._file.write(_HEADER.pack(_MAGIC, _VERSION))
        self._content = _StringTable()
        self._isp = _StringTable()
        self._device = _StringTable()
        self._count = 0
        self._closed = False

    @property
    def records_written(self) -> int:
        """Sessions appended so far."""
        return self._count

    def append(self, session: Session) -> int:
        """Write one session; returns its record index in the file."""
        if self._closed:
            raise RuntimeError(f"store {self.path} is closed")
        self._file.write(
            _RECORD.pack(
                session.session_id,
                session.user_id,
                self._content.ref(session.content_id),
                session.start,
                session.duration,
                session.bitrate,
                self._isp.ref(session.attachment.isp),
                session.attachment.pop,
                session.attachment.exchange,
                self._device.ref(session.device),
            )
        )
        index = self._count
        self._count += 1
        return index

    def append_fields(
        self,
        session_id: int,
        user_id: int,
        content_id: str,
        start: float,
        duration: float,
        bitrate: float,
        isp: str,
        pop: int,
        exchange: int,
        device: str = "unknown",
    ) -> int:
        """Write one session from raw field values; returns its record index.

        The zero-object ingest entry point: bulk producers (the
        generative synthesizer, third-party importers) pack the 56 B
        record straight from scalars, never constructing a
        :class:`~repro.trace.events.Session`.  Field semantics and
        validation mirror ``Session`` exactly, so ``append_fields(...)``
        and ``append(Session(...))`` write identical bytes.
        """
        if self._closed:
            raise RuntimeError(f"store {self.path} is closed")
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start!r}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration!r}")
        if bitrate <= 0:
            raise ValueError(f"bitrate must be > 0, got {bitrate!r}")
        if not content_id:
            raise ValueError("content_id must be non-empty")
        self._file.write(
            _RECORD.pack(
                session_id,
                user_id,
                self._content.ref(content_id),
                start,
                duration,
                bitrate,
                self._isp.ref(isp),
                pop,
                exchange,
                self._device.ref(device),
            )
        )
        index = self._count
        self._count += 1
        return index

    def close(self) -> None:
        """Write the footer and tail; the file becomes readable."""
        if self._closed:
            return
        footer = json.dumps(
            {
                "version": _VERSION,
                "records": self._count,
                "horizon": self.horizon,
                "content": self._content.values,
                "isp": self._isp.values,
                "device": self._device.values,
            }
        ).encode("utf-8")
        footer_offset = _HEADER.size + self._count * RECORD_SIZE
        self._file.write(footer)
        self._file.write(_TAIL.pack(footer_offset, _MAGIC))
        self._file.close()
        self._closed = True

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class StoreReader:
    """Random-access reader of a closed store file.

    Reads go through ``os.pread`` (positional, no shared seek pointer),
    so one reader instance may serve many threads concurrently -- the
    property the thread backend and the shared reader cache rely on.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fd = os.open(self.path, os.O_RDONLY)
        try:
            size = os.fstat(self._fd).st_size
            if size < _HEADER.size + _TAIL.size:
                raise StoreCorruptionError(
                    f"{self.path}: not a session store (truncated)"
                )
            magic, version = _HEADER.unpack(os.pread(self._fd, _HEADER.size, 0))
            if magic != _MAGIC:
                raise StoreCorruptionError(
                    f"{self.path}: not a session store (bad magic)"
                )
            if version != _VERSION:
                raise StoreCorruptionError(
                    f"{self.path}: unsupported store version {version} "
                    f"(expected {_VERSION})"
                )
            footer_offset, tail_magic = _TAIL.unpack(
                os.pread(self._fd, _TAIL.size, size - _TAIL.size)
            )
            if tail_magic != _MAGIC or footer_offset > size - _TAIL.size:
                raise StoreCorruptionError(f"{self.path}: corrupt store tail")
            footer_bytes = os.pread(
                self._fd, size - _TAIL.size - footer_offset, footer_offset
            )
            try:
                footer = json.loads(footer_bytes.decode("utf-8"))
                self._count: int = int(footer["records"])
                self.horizon: float = float(footer["horizon"])
                self._content: List[str] = list(footer["content"])
                self._isp: List[str] = list(footer["isp"])
                self._device: List[str] = list(footer["device"])
            except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
                # A corrupt footer_offset can land the footer range inside
                # binary record bytes; surface every shape of that as the
                # one documented corruption error.
                raise StoreCorruptionError(
                    f"{self.path}: corrupt store footer ({exc})"
                ) from exc
            # The record region must hold exactly the footer's promised
            # count.  Without this check a store missing record bytes
            # (truncation, a torn copy) would open fine and short-decode
            # extents silently.
            expected_offset = _HEADER.size + self._count * RECORD_SIZE
            if footer_offset != expected_offset:
                raise StoreCorruptionError(
                    f"{self.path}: record region is "
                    f"{footer_offset - _HEADER.size} bytes but the footer "
                    f"promises {self._count} records "
                    f"({self._count * RECORD_SIZE} bytes)"
                )
        except Exception:
            os.close(self._fd)
            raise
        self._closed = False

    def __len__(self) -> int:
        return self._count

    def close(self) -> None:
        """Release the underlying file descriptor (idempotent)."""
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    def __enter__(self) -> "StoreReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- decoding ------------------------------------------------------

    def _decode(self, buffer: bytes, count: int) -> List[Session]:
        if len(buffer) != count * RECORD_SIZE:
            raise StoreCorruptionError(
                f"{self.path}: extent holds {len(buffer)} bytes, "
                f"expected {count} records ({count * RECORD_SIZE} bytes)"
            )
        content, isp, device = self._content, self._isp, self._device
        sessions: List[Session] = []
        for fields in _RECORD.iter_unpack(buffer):
            (
                session_id,
                user_id,
                content_ref,
                start,
                duration,
                bitrate,
                isp_ref,
                pop,
                exchange,
                device_ref,
            ) = fields
            sessions.append(
                Session(
                    session_id=session_id,
                    user_id=user_id,
                    content_id=content[content_ref],
                    start=start,
                    duration=duration,
                    bitrate=bitrate,
                    attachment=intern_attachment(isp[isp_ref], pop, exchange),
                    device=device[device_ref],
                )
            )
        return sessions

    def read_raw_range(self, index: int, count: int) -> bytes:
        """Read ``count`` raw 56 B records starting at record ``index``.

        The fused-kernel handoff primitive: the compiled decoder parses
        these bytes directly, so the hot path never materializes Python
        objects (or even per-field tuples).  The returned buffer is
        validated to be exactly ``count * RECORD_SIZE`` bytes.
        """
        if index < 0 or count < 0 or index + count > self._count:
            raise ValueError(
                f"record range [{index}, {index + count}) outside "
                f"[0, {self._count})"
            )
        if count == 0:
            return b""
        offset = _HEADER.size + index * RECORD_SIZE
        length = count * RECORD_SIZE

        def pread() -> bytes:
            """One positional read through the fault-injectable facade."""
            buffer = faults.storage().pread(
                self._fd, length, offset, site="store.pread"
            )
            if len(buffer) != length:
                # A short read on a complete store is transient (EIO
                # territory on flaky shared storage): surface it as one
                # so the retry loop gets a shot before we call the
                # store corrupt.
                raise OSError(
                    errno.EIO,
                    f"short read at record {index} "
                    f"(got {len(buffer)} of {length} bytes)",
                )
            return buffer

        try:
            return faults.retrying("store.pread", pread)
        except OSError as error:
            raise StoreCorruptionError(f"{self.path}: {error}") from error

    def read_range(self, index: int, count: int) -> List[Session]:
        """Decode ``count`` sessions starting at record ``index``.

        The zero-copy handoff primitive: a worker holding only
        ``(path, index, count)`` reads exactly its own bytes.
        """
        if count == 0:
            # Still bounds-check the empty range.
            self.read_raw_range(index, count)
            return []
        return self._decode(self.read_raw_range(index, count), count)

    def read_columns(self, index: int, count: int) -> SessionColumns:
        """Decode ``count`` records starting at ``index`` into columns.

        The pure-python half of zero-object ingest: one batched
        ``struct.iter_unpack`` pass transposed straight into typed
        arrays.  Field values are bit-identical to the ones
        :meth:`read_range` would put on :class:`Session` objects; string
        fields stay as integer refs (see :class:`SessionColumns`).
        """
        buffer = self.read_raw_range(index, count)
        if count == 0:
            columns: Tuple[Sequence, ...] = ((),) * 10
        else:
            columns = tuple(zip(*_RECORD.iter_unpack(buffer)))
        return SessionColumns(
            count=count,
            session_ids=array("q", columns[0]),
            user_ids=array("q", columns[1]),
            content_refs=array("q", columns[2]),
            starts=array("d", columns[3]),
            durations=array("d", columns[4]),
            bitrates=array("d", columns[5]),
            isp_refs=array("q", columns[6]),
            pops=array("q", columns[7]),
            exchanges=array("q", columns[8]),
            device_refs=array("q", columns[9]),
            content_table=self._content,
            isp_table=self._isp,
            device_table=self._device,
        )

    def iter_sessions(self) -> Iterator[Session]:
        """Yield every session in record order, chunk-buffered."""
        index = 0
        while index < self._count:
            chunk = min(_READ_CHUNK_RECORDS, self._count - index)
            yield from self.read_range(index, chunk)
            index += chunk


# ----------------------------------------------------------------------
# Shared reader cache (one open + one footer parse per file per process)
# ----------------------------------------------------------------------

_READER_LOCK = threading.Lock()
_READER_CACHE: "OrderedDict[str, StoreReader]" = OrderedDict()

#: Most readers ever cached per process.  Long-lived pool workers see a
#: fresh temporary shard file per run; without a bound every run would
#: pin one open fd (and, once the coordinator unlinks the shard, its
#: disk space) in every worker forever.  One run touches one shard
#: file, so a small LRU keeps all the reuse and none of the leak.
_READER_CACHE_MAX = 4


def shared_reader(path: Union[str, Path]) -> StoreReader:
    """A process-wide cached :class:`StoreReader` for ``path``.

    Store files are immutable once written, so caching is safe; reads
    are positional (``os.pread``), so one cached reader serves any
    number of threads.  Workers decoding many extents of the same shard
    file hit the cache after the first open.  The cache is a small LRU
    (:data:`_READER_CACHE_MAX` entries): least-recently-used readers
    are closed on overflow, so persistent worker processes never
    accumulate open fds to long-gone shard files.
    """
    key = str(Path(path))
    evicted: List[StoreReader] = []
    with _READER_LOCK:
        reader = _READER_CACHE.get(key)
        if reader is not None:
            _READER_CACHE.move_to_end(key)
            return reader
        reader = _READER_CACHE[key] = StoreReader(key)
        while len(_READER_CACHE) > _READER_CACHE_MAX:
            _, stale = _READER_CACHE.popitem(last=False)
            evicted.append(stale)
    for stale in evicted:
        stale.close()
    return reader


def evict_reader(path: Union[str, Path]) -> None:
    """Close and drop the cached reader for ``path`` (if any)."""
    key = str(Path(path))
    with _READER_LOCK:
        reader = _READER_CACHE.pop(key, None)
    if reader is not None:
        reader.close()


def clear_reader_cache() -> None:
    """Close and drop every cached reader (tests / process teardown)."""
    with _READER_LOCK:
        readers = list(_READER_CACHE.values())
        _READER_CACHE.clear()
    for reader in readers:
        reader.close()


# ----------------------------------------------------------------------
# Extents and manifests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Extent:
    """One group's contiguous slice of a sorted store file.

    Attributes:
        key: the group's identity (the simulator stores
            :class:`~repro.sim.policies.SwarmKey` values here; this
            module only requires picklability).
        index: record index of the group's first session.
        count: number of sessions in the group.
    """

    key: object
    index: int
    count: int

    @property
    def offset(self) -> int:
        """Byte offset of the extent's first record."""
        return _HEADER.size + self.index * RECORD_SIZE

    @property
    def length(self) -> int:
        """Extent size in bytes."""
        return self.count * RECORD_SIZE


@dataclass(frozen=True)
class ShardManifest:
    """Map from every group to its ``(file, offset, length)`` extent.

    The product of external grouping: ``path`` is a store file whose
    records are globally sorted so each group occupies one contiguous
    extent, and ``extents`` lists the groups in sorted-key order --
    exactly the canonical task order the simulator folds in.
    """

    path: str
    horizon: float
    extents: Tuple[Extent, ...]

    @property
    def num_sessions(self) -> int:
        """Total sessions across all extents."""
        return sum(extent.count for extent in self.extents)

    def read_extent(self, extent: Extent) -> List[Session]:
        """Decode one extent's sessions via the shared reader cache."""
        return shared_reader(self.path).read_range(extent.index, extent.count)

    def iter_groups(self) -> Iterator[Tuple[object, List[Session]]]:
        """Yield ``(key, sessions)`` per group, in manifest order."""
        for extent in self.extents:
            yield extent.key, self.read_extent(extent)


# ----------------------------------------------------------------------
# External merge-sort
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SorterStats:
    """What one external sort actually did.

    Attributes:
        sessions: total sessions sorted.
        runs_spilled: sorted runs written to disk (0 when everything
            fit in the buffer).
        peak_buffered: most sessions ever resident in the sort buffer
            -- the coordinator's grouping memory footprint, bounded by
            ``run_sessions`` regardless of trace size.
    """

    sessions: int
    runs_spilled: int
    peak_buffered: int


class ExternalSessionSorter:
    """Bounded-memory sort of an arbitrarily large session stream.

    Sessions are buffered up to ``run_sessions``; each full buffer is
    sorted by ``sort_key`` and spilled as a store file under
    ``directory``; :meth:`finish` k-way merges the spilled runs with
    the final in-memory run (``heapq.merge`` -- streaming, at most one
    read-chunk per run resident) and yields the globally sorted stream.
    Run files are deleted as soon as the merge completes.

    ``sort_key`` must be a total order over the added sessions (the
    simulator's ``(SwarmKey.sort_key, start, session_id)`` key is: ids
    are unique), so the merged order -- and everything built from it --
    is deterministic.
    """

    def __init__(
        self,
        sort_key: Callable[[Session], object],
        directory: Union[str, Path],
        run_sessions: int = 100_000,
    ) -> None:
        if run_sessions < 1:
            raise ValueError(f"run_sessions must be >= 1, got {run_sessions!r}")
        self.sort_key = sort_key
        self.directory = Path(directory)
        self.run_sessions = run_sessions
        self._buffer: List[Session] = []
        self._run_paths: List[Path] = []
        self._runs_spilled = 0
        self._sessions = 0
        self._peak_buffered = 0
        self._finished = False

    @property
    def stats(self) -> SorterStats:
        """What the sort has done so far (see :class:`SorterStats`)."""
        return SorterStats(
            sessions=self._sessions,
            runs_spilled=self._runs_spilled,
            peak_buffered=self._peak_buffered,
        )

    def add(self, session: Session) -> None:
        """Buffer one session, spilling a sorted run when full."""
        if self._finished:
            raise RuntimeError("cannot add sessions after finish()")
        self._buffer.append(session)
        self._sessions += 1
        if len(self._buffer) > self._peak_buffered:
            self._peak_buffered = len(self._buffer)
        if len(self._buffer) >= self.run_sessions:
            self._spill()

    def extend(self, sessions: Iterable[Session]) -> None:
        """Buffer a stream of sessions (spilling as needed)."""
        for session in sessions:
            self.add(session)

    def _spill(self) -> None:
        self._buffer.sort(key=self.sort_key)
        path = self.directory / f"run-{len(self._run_paths):06d}.store"
        with StoreWriter(path) as writer:
            for session in self._buffer:
                writer.append(session)
        self._run_paths.append(path)
        self._runs_spilled += 1
        self._buffer = []

    def finish(self) -> Iterator[Session]:
        """Yield every added session in globally sorted order.

        May be consumed once; spilled run files are removed when the
        iterator is exhausted (or closed).
        """
        if self._finished:
            raise RuntimeError("finish() may only be called once")
        self._finished = True
        self._buffer.sort(key=self.sort_key)
        if not self._run_paths:
            # Everything fit in one buffer: no disk round-trip needed.
            yield from self._buffer
            return
        readers = [StoreReader(path) for path in self._run_paths]
        try:
            streams: List[Iterable[Session]] = [
                reader.iter_sessions() for reader in readers
            ]
            if self._buffer:
                streams.append(iter(self._buffer))
            yield from heapq.merge(*streams, key=self.sort_key)
        finally:
            for reader in readers:
                reader.close()
            for path in self._run_paths:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            self._run_paths = []


# ----------------------------------------------------------------------
# Content addressing: trace fingerprints and persisted manifests
# ----------------------------------------------------------------------

#: Per-session numeric fields fed to the fingerprint, packed exactly
#: (IEEE-754 doubles, not decimal round-trips).
_FINGERPRINT_RECORD = struct.Struct("<qqdddII")


def trace_fingerprint(sessions: Iterable[Session]) -> str:
    """A stable content hash of a session sequence.

    The cache key half of the content-addressed shard cache: two traces
    with the same fingerprint (and the same grouping policy and store
    version) would produce byte-identical sorted shards, so a cached
    shard + manifest can be reused across runs *and across processes*
    without re-reading the sessions.

    The hash covers every field a session carries -- ids, times,
    bitrate (as exact doubles), content/ISP/device strings and the
    attachment coordinates -- and is **order-sensitive**, so fingerprint
    a canonically ordered source (a :class:`~repro.trace.events.Trace`
    orders its sessions at construction; hashing it is deterministic).
    Hashing is a single streamed pass: far cheaper than the sort /
    spill / merge it lets a run skip.
    """
    hasher = hashlib.blake2b(digest_size=16)
    update = hasher.update
    pack = _FINGERPRINT_RECORD.pack
    for session in sessions:
        attachment = session.attachment
        update(
            pack(
                session.session_id,
                session.user_id,
                session.start,
                session.duration,
                session.bitrate,
                attachment.pop,
                attachment.exchange,
            )
        )
        update(session.content_id.encode("utf-8"))
        update(b"\x00")
        update(attachment.isp.encode("utf-8"))
        update(b"\x00")
        update(session.device.encode("utf-8"))
        update(b"\x1f")
    return hasher.hexdigest()


def file_fingerprint(path: Union[str, Path]) -> str:
    """A content hash of a trace *file*, for cache tokens.

    The streamed-file counterpart of :func:`trace_fingerprint`: callers
    that would rather not parse a session stream twice (the CLI's
    out-of-core path feeds a ``.jsonl`` straight into external
    grouping) can key the shard cache on the raw bytes instead.  Any
    stable content identifier is a valid token -- a byte-level and a
    session-level fingerprint of the same trace simply address separate
    (equally correct) cache entries.
    """
    hasher = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            hasher.update(chunk)
    return "file:" + hasher.hexdigest()


def save_manifest(
    manifest: ShardManifest,
    path: Union[str, Path],
    *,
    key_encoder: Callable[[object], Dict],
    meta: Optional[Dict] = None,
) -> None:
    """Persist a :class:`ShardManifest` as JSON next to its shard.

    The shard path is stored *relative to the manifest's directory*, so
    a cache directory can be moved (or mounted at a different root by a
    worker host) and still resolve.  ``key_encoder`` turns each extent
    key into a JSON object -- the simulation layer supplies the
    :class:`~repro.sim.policies.SwarmKey` codec, keeping this module
    free of simulation imports.  The write is atomic (temp file +
    ``os.replace``), so readers never observe a torn manifest.
    """
    path = Path(path)
    shard = Path(manifest.path)
    try:
        shard_ref = str(shard.relative_to(path.parent))
    except ValueError:
        shard_ref = str(shard)
    payload = {
        "store_version": STORE_VERSION,
        "shard": shard_ref,
        "horizon": manifest.horizon,
        "records": manifest.num_sessions,
        "meta": meta or {},
        "extents": [
            {
                "index": extent.index,
                "count": extent.count,
                "key": key_encoder(extent.key),
            }
            for extent in manifest.extents
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    temp_path = path.with_name(path.name + ".tmp")
    temp_path.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(temp_path, path)


def load_manifest(
    path: Union[str, Path], *, key_decoder: Callable[[Dict], object]
) -> Tuple[ShardManifest, Dict]:
    """Load a persisted manifest; returns ``(manifest, meta)``.

    Validates the store version and that the shard file both exists and
    holds exactly the record count the manifest promises (one cheap
    footer read) -- a truncated or half-written cache entry raises
    ``ValueError`` instead of producing silently wrong extents.
    """
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("store_version") != STORE_VERSION:
        raise ValueError(
            f"{path}: manifest store version {payload.get('store_version')!r} "
            f"does not match this process ({STORE_VERSION})"
        )
    shard_path = Path(payload["shard"])
    if not shard_path.is_absolute():
        shard_path = path.parent / shard_path
    extents = tuple(
        Extent(
            key=key_decoder(entry["key"]),
            index=int(entry["index"]),
            count=int(entry["count"]),
        )
        for entry in payload["extents"]
    )
    manifest = ShardManifest(
        path=str(shard_path), horizon=float(payload["horizon"]), extents=extents
    )
    expected = int(payload["records"])
    if manifest.num_sessions != expected:
        raise ValueError(
            f"{path}: extents cover {manifest.num_sessions} records, "
            f"manifest promises {expected}"
        )
    with StoreReader(shard_path) as reader:
        if len(reader) != expected:
            raise ValueError(
                f"{shard_path}: shard holds {len(reader)} records, "
                f"manifest promises {expected}"
            )
    return manifest, dict(payload.get("meta") or {})
