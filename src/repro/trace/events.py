"""Session records: the atoms of a viewing trace.

The paper's trace has per-session granularity: "timestamps of events
(i.e., start times and durations), and bitrates of user sessions, are
taken from the trace" (Section IV.A).  A :class:`Session` carries exactly
those fields plus the viewer's network position, which the synthetic
generator assigns and a real trace would join from subscriber data.

Times are float seconds from the trace epoch (t = 0 is midnight starting
day 0); bitrates are bits/second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, List, Tuple

from repro.topology.nodes import AttachmentPoint

__all__ = ["Session", "Trace"]

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True, slots=True)
class Session:
    """One viewing session.

    Attributes:
        session_id: unique id within the trace.
        user_id: id of the viewer (stable across the trace).
        content_id: id of the content item being watched.
        start: session start time, seconds from the trace epoch.
        duration: seconds of content actually streamed (> 0).
        bitrate: streaming bitrate in bits/second.
        attachment: the viewer's position in the ISP hierarchy.
        device: coarse device class ("tv", "desktop", "mobile", ...);
            informational -- the energy models deliberately exclude
            end-user devices (paper Section III.D).
    """

    session_id: int
    user_id: int
    content_id: str
    start: float
    duration: float
    bitrate: float
    attachment: AttachmentPoint
    device: str = "unknown"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start!r}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration!r}")
        if self.bitrate <= 0:
            raise ValueError(f"bitrate must be > 0, got {self.bitrate!r}")
        if not self.content_id:
            raise ValueError("content_id must be non-empty")

    @property
    def end(self) -> float:
        """Session end time, seconds from the trace epoch."""
        return self.start + self.duration

    @property
    def bits_watched(self) -> float:
        """Total useful traffic of the session, ``beta * duration`` bits."""
        return self.bitrate * self.duration

    @property
    def isp(self) -> str:
        """The viewer's ISP (shorthand for ``attachment.isp``)."""
        return self.attachment.isp

    @property
    def day(self) -> int:
        """Zero-based day-of-trace the session *starts* on."""
        return int(self.start // SECONDS_PER_DAY)

    def overlaps(self, t_from: float, t_to: float) -> bool:
        """True when the session is live during any part of [t_from, t_to)."""
        return self.start < t_to and self.end > t_from


@dataclass(frozen=True)
class Trace:
    """An immutable, start-time-ordered collection of sessions.

    Attributes:
        sessions: sessions sorted by ``start`` (enforced at creation).
        horizon: trace length in seconds; defaults to the latest session
            end, rounded up to a whole day.
    """

    sessions: Tuple[Session, ...]
    horizon: float = field(default=0.0)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.sessions, key=lambda s: (s.start, s.session_id)))
        object.__setattr__(self, "sessions", ordered)
        if self.horizon <= 0.0:
            end = max((s.end for s in ordered), default=0.0)
            days = max(1, -(-int(end) // int(SECONDS_PER_DAY)))
            object.__setattr__(self, "horizon", days * SECONDS_PER_DAY)
        elif ordered and ordered[-1].end > self.horizon:
            raise ValueError(
                f"horizon {self.horizon} shorter than last session end "
                f"{ordered[-1].end}"
            )

    @classmethod
    def from_sessions(
        cls, sessions: Iterable[Session], horizon: float = 0.0
    ) -> "Trace":
        return cls(sessions=tuple(sessions), horizon=horizon)

    def __len__(self) -> int:
        return len(self.sessions)

    def __iter__(self) -> Iterator[Session]:
        return iter(self.sessions)

    @property
    def num_days(self) -> int:
        """Trace length in whole days."""
        return int(self.horizon // SECONDS_PER_DAY)

    @cached_property
    def user_ids(self) -> List[int]:
        """Distinct user ids, ascending (computed once, then cached)."""
        return sorted({s.user_id for s in self.sessions})

    @cached_property
    def content_ids(self) -> List[str]:
        """Distinct content ids, ascending (computed once, then cached)."""
        return sorted({s.content_id for s in self.sessions})

    @cached_property
    def isps(self) -> List[str]:
        """Distinct ISP names, ascending (computed once, then cached)."""
        return sorted({s.isp for s in self.sessions})

    def for_content(self, content_id: str) -> "Trace":
        """Sub-trace of one content item (same horizon)."""
        return Trace.from_sessions(
            (s for s in self.sessions if s.content_id == content_id), self.horizon
        )

    def for_isp(self, isp: str) -> "Trace":
        """Sub-trace of one ISP's subscribers (same horizon)."""
        return Trace.from_sessions(
            (s for s in self.sessions if s.isp == isp), self.horizon
        )

    def between(self, t_from: float, t_to: float) -> "Trace":
        """Sub-trace of sessions overlapping [t_from, t_to) (same horizon)."""
        if t_to <= t_from:
            raise ValueError(f"empty interval [{t_from}, {t_to})")
        return Trace.from_sessions(
            (s for s in self.sessions if s.overlaps(t_from, t_to)), self.horizon
        )

    @cached_property
    def _total_bits(self) -> float:
        return sum(s.bits_watched for s in self.sessions)

    def total_bits(self) -> float:
        """Total useful traffic across all sessions (cached after the
        first call -- repeated access never rescans the trace)."""
        return self._total_bits

    def total_watch_seconds(self) -> float:
        """Total user-seconds of viewing."""
        return sum(s.duration for s in self.sessions)

    def mean_concurrency(self) -> float:
        """Average concurrent viewers over the horizon (the trace-wide
        analogue of a swarm's capacity)."""
        if self.horizon == 0:
            return 0.0
        return self.total_watch_seconds() / self.horizon
