"""The viewer population: devices, bitrates, ISPs and activity skew.

Three facts from the paper shape this module:

* the most common iPlayer bitrate is **1.5 Mbps** (Section IV.B.1, citing
  Nencioni et al.), with a device mix spanning mobile phones to big-
  screen TVs -- we model a small set of device classes, each with its own
  bitrate, and swarms are later split by bitrate class exactly as the
  paper splits them;
* viewers are spread over ISPs by market share, and swarms are
  ISP-friendly (peers match within one ISP only);
* "per-user consumption patterns are highly skewed towards a small share
  of very active users" (Section II, citing the authors' earlier iPlayer
  study) -- we give each user a log-normal activity weight.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.topology.city import CityNetwork, default_london
from repro.topology.nodes import AttachmentPoint

__all__ = ["DeviceProfile", "DEFAULT_DEVICE_MIX", "User", "Population"]

MBPS = 1_000_000.0


@dataclass(frozen=True)
class DeviceProfile:
    """A device class and the bitrate it streams at.

    Attributes:
        name: device label ("tv", "desktop", "tablet", "mobile").
        bitrate: streaming bitrate in bits/second.
        share: fraction of users on this device class.
    """

    name: str
    bitrate: float
    share: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("device name must be non-empty")
        if self.bitrate <= 0:
            raise ValueError(f"bitrate must be > 0, got {self.bitrate!r}")
        if not 0 < self.share <= 1:
            raise ValueError(f"share must be in (0, 1], got {self.share!r}")


#: Device/bitrate mix centred on the paper's 1.5 Mbps modal bitrate.
DEFAULT_DEVICE_MIX: Tuple[DeviceProfile, ...] = (
    DeviceProfile("desktop", bitrate=1.5 * MBPS, share=0.45),
    DeviceProfile("tv", bitrate=3.0 * MBPS, share=0.20),
    DeviceProfile("hd-tv", bitrate=5.0 * MBPS, share=0.05),
    DeviceProfile("tablet", bitrate=1.5 * MBPS, share=0.15),
    DeviceProfile("mobile", bitrate=0.8 * MBPS, share=0.15),
)


@dataclass(frozen=True)
class User:
    """One subscriber.

    Attributes:
        user_id: stable id within the population.
        attachment: position in the ISP hierarchy (fixed for the trace:
            home broadband does not move).
        device: the user's dominant device profile.
        activity: relative propensity to start sessions (log-normal
            across users; the skew the paper reports).
    """

    user_id: int
    attachment: AttachmentPoint
    device: DeviceProfile
    activity: float

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ValueError(f"user_id must be >= 0, got {self.user_id}")
        if self.activity <= 0:
            raise ValueError(f"activity must be > 0, got {self.activity!r}")

    @property
    def isp(self) -> str:
        return self.attachment.isp

    @property
    def bitrate(self) -> float:
        return self.device.bitrate


@dataclass(frozen=True)
class Population:
    """The full viewer population with activity-weighted sampling.

    Attributes:
        users: all users, id-ordered.
    """

    users: Tuple[User, ...]

    def __post_init__(self) -> None:
        if not self.users:
            raise ValueError("population must contain at least one user")
        ids = [u.user_id for u in self.users]
        if len(set(ids)) != len(ids):
            raise ValueError("user ids must be unique")

    def __len__(self) -> int:
        return len(self.users)

    def __iter__(self):
        return iter(self.users)

    def get(self, user_id: int) -> User:
        """Look up a user by id (users are id-ordered at generation)."""
        for user in self.users:
            if user.user_id == user_id:
                return user
        raise KeyError(f"no user {user_id} in population")

    def by_isp(self) -> Dict[str, List[User]]:
        """Users grouped by ISP name."""
        groups: Dict[str, List[User]] = {}
        for user in self.users:
            groups.setdefault(user.isp, []).append(user)
        return groups

    def activity_weights(self) -> List[float]:
        """Per-user sampling weights, aligned with ``users``."""
        return [u.activity for u in self.users]

    @classmethod
    def generate(
        cls,
        num_users: int,
        *,
        city: Optional[CityNetwork] = None,
        device_mix: Sequence[DeviceProfile] = DEFAULT_DEVICE_MIX,
        activity_sigma: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> "Population":
        """Generate a synthetic population.

        Args:
            num_users: population size.
            city: multi-ISP city users attach to (default: the paper's
                5-ISP London).
            device_mix: device classes with shares (summing to ~1).
            activity_sigma: sigma of the log-normal activity skew; 1.0
                makes the top decile of users account for roughly half
                the sessions, matching the "highly skewed" description.
            rng: randomness source (fresh seeded generator when omitted).
        """
        if num_users < 1:
            raise ValueError(f"num_users must be >= 1, got {num_users}")
        if not device_mix:
            raise ValueError("device_mix must be non-empty")
        if activity_sigma < 0:
            raise ValueError(f"activity_sigma must be >= 0, got {activity_sigma!r}")
        rng = rng or random.Random(0)
        city = city or default_london()
        devices = list(device_mix)
        shares = [d.share for d in devices]
        users = []
        for user_id in range(num_users):
            attachment = city.sample_attachment(rng)
            device = rng.choices(devices, weights=shares)[0]
            activity = rng.lognormvariate(0.0, activity_sigma)
            users.append(
                User(
                    user_id=user_id,
                    attachment=attachment,
                    device=device,
                    activity=activity,
                )
            )
        return cls(users=tuple(users))
