"""Workload substrate: sessions, catalogue, population, synthetic traces.

Substitutes the paper's proprietary BBC iPlayer trace with a fully
parameterised synthetic generator (see DESIGN.md for the substitution
rationale).  The simulator consumes a :class:`Trace` regardless of where
it came from.
"""

from repro.trace.catalogue import Catalogue, ContentItem, zipf_weights
from repro.trace.diurnal import DiurnalProfile, FLAT_PROFILE, UK_TV_PROFILE
from repro.trace.events import SECONDS_PER_DAY, Session, Trace
from repro.trace.generator import (
    GeneratorConfig,
    TraceGenerator,
    generate_trace,
    sample_poisson,
)
from repro.trace.loader import load_csv, load_jsonl, save_csv, save_jsonl
from repro.trace.population import (
    DEFAULT_DEVICE_MIX,
    DeviceProfile,
    Population,
    User,
)
from repro.trace.stats import TraceStats, summarise

__all__ = [
    "Catalogue",
    "ContentItem",
    "DEFAULT_DEVICE_MIX",
    "DeviceProfile",
    "DiurnalProfile",
    "FLAT_PROFILE",
    "GeneratorConfig",
    "Population",
    "SECONDS_PER_DAY",
    "Session",
    "Trace",
    "TraceGenerator",
    "TraceStats",
    "UK_TV_PROFILE",
    "User",
    "generate_trace",
    "load_csv",
    "load_jsonl",
    "sample_poisson",
    "save_csv",
    "save_jsonl",
    "summarise",
    "zipf_weights",
]
