"""Workload substrate: sessions, catalogue, population, synthetic traces.

Substitutes the paper's proprietary BBC iPlayer trace with a fully
parameterised synthetic generator (see DESIGN.md for the substitution
rationale).  The simulator consumes a :class:`Trace` regardless of where
it came from.
"""

from repro.trace.catalogue import Catalogue, ContentItem, zipf_weights
from repro.trace.diurnal import DiurnalProfile, FLAT_PROFILE, UK_TV_PROFILE
from repro.trace.events import SECONDS_PER_DAY, Session, Trace
from repro.trace.generator import (
    GeneratorConfig,
    TraceGenerator,
    generate_trace,
    sample_poisson,
)
from repro.trace.loader import (
    iter_csv,
    iter_jsonl,
    iter_store,
    load_csv,
    load_jsonl,
    load_store,
    read_jsonl_horizon,
    save_csv,
    save_jsonl,
    save_store,
)
from repro.trace.store import (
    Extent,
    ExternalSessionSorter,
    ShardManifest,
    StoreReader,
    StoreWriter,
)
from repro.trace.population import (
    DEFAULT_DEVICE_MIX,
    DeviceProfile,
    Population,
    User,
)
from repro.trace.stats import TraceStats, summarise
from repro.trace.synth import SynthConfig, SynthResult, ensure_store, synthesize

__all__ = [
    "Catalogue",
    "ContentItem",
    "DEFAULT_DEVICE_MIX",
    "DeviceProfile",
    "DiurnalProfile",
    "Extent",
    "ExternalSessionSorter",
    "FLAT_PROFILE",
    "GeneratorConfig",
    "Population",
    "SECONDS_PER_DAY",
    "Session",
    "ShardManifest",
    "StoreReader",
    "StoreWriter",
    "SynthConfig",
    "SynthResult",
    "Trace",
    "TraceGenerator",
    "TraceStats",
    "UK_TV_PROFILE",
    "User",
    "ensure_store",
    "generate_trace",
    "iter_csv",
    "iter_jsonl",
    "iter_store",
    "load_csv",
    "load_jsonl",
    "load_store",
    "read_jsonl_horizon",
    "sample_poisson",
    "save_csv",
    "save_jsonl",
    "save_store",
    "summarise",
    "synthesize",
    "zipf_weights",
]
