"""Command-line interface: ``consume-local``.

Subcommands::

    consume-local tables              # Tables I, III, IV
    consume-local fig2 ... fig6      # one figure each
    consume-local all                # everything (writes files with --out)
    consume-local generate trace.jsonl    # emit a synthetic trace
    consume-local synth city.store --region east  # generative city workload
    consume-local simulate trace.jsonl    # simulate a saved trace (.jsonl or .store)
    consume-local simulate --federate east=east.store --federate west=west.store
    consume-local worker --queue-dir DIR  # serve a distributed work queue
    consume-local serve feed.jsonl --state-dir DIR  # always-on service mode

Common options: ``--scale`` (trace size multiplier), ``--days``,
``--seed``, ``--quick`` (preset small scale), ``--out DIR``,
``--workers N`` (shard simulation swarms over N worker processes;
bit-for-bit identical results, just faster on multi-core hardware),
``--reduction MODE`` (how shard outputs fold: "batched" default,
"streaming" bounds coordinator memory by workers + 1 resident shards,
"spill" also keeps per-user deltas on disk; all bit-for-bit identical)
and ``--grouping MODE`` (how the session stream becomes swarm tasks:
"memory" default, "external" groups out-of-core through a sorted shard
file -- with ``--shard-dir DIR`` keeping the shard for out-of-core
consumers *and enabling the content-addressed shard cache*, so repeat
runs over the same trace + policy skip the sort entirely; bit-for-bit
identical either way).  ``simulate --upload-ratios 0.2 0.6 1.0`` runs a
whole q/beta sweep in one amortized pass (``Simulator.run_sweep``),
bit-for-bit identical to the per-ratio runs.

Generative synthesis: ``consume-local synth out.store --region NAME``
writes a seeded parametric city workload (catalogue churn, popularity
drift, diurnal demand, ISP/attachment skew -- see
:mod:`repro.trace.synth`) straight into the binary session store; equal
parameters always produce byte-identical stores.  ``simulate`` accepts
``.store`` files directly, and ``simulate --federate REGION=STORE``
(repeated per city) runs each region as its own job and reconciles them
at the reducer (:mod:`repro.sim.federate`): for disjoint regions the
merged result is bit-for-bit the single run over the union trace, and
cross-region swarms are reported as a federation ledger.

Distributed execution: ``--backend distributed --queue-dir DIR`` makes
the run a *coordinator* over a crash-safe file-based work queue, and
``consume-local worker --queue-dir DIR`` serves that queue from any
host sharing the directory (see :mod:`repro.sim.queue` /
:mod:`repro.sim.worker`).  Without external workers the coordinator
spawns ``--workers`` local ones.  Bit-for-bit identical to serial.

Service mode: ``consume-local serve feed.jsonl --state-dir DIR`` tails a
live-appended session feed, partitions it into bounded simulation
epochs, and appends one result record per closed epoch to a JSONL sink
-- checkpointing after every epoch so a killed coordinator restarted
over the same state dir resumes mid-stream with no duplicated and no
dropped epochs (see :mod:`repro.sim.service`).
"""

from __future__ import annotations

import argparse
import logging
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.core.energy import builtin_models
from repro.experiments.config import ExperimentSettings
from repro.experiments.runner import run_all, run_experiment
from repro.sim.backends import BACKEND_NAMES
from repro.sim.engine import KERNEL_MODES, SimulationConfig, Simulator
from repro.sim.grouping import GROUPING_MODES
from repro.sim.profiling import PROFILE
from repro.sim.reduce import REDUCTION_MODES
from repro.trace.events import SECONDS_PER_DAY
from repro.trace.generator import TraceGenerator
from repro.trace.store import file_fingerprint
from repro.trace.loader import (
    iter_jsonl,
    load_jsonl,
    read_jsonl_horizon,
    save_jsonl,
)
from repro.trace.stats import summarise

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="consume-local",
        description=(
            "Reproduction of 'Consume Local: Towards Carbon Free Content "
            "Delivery' (ICDCS 2018): analytical model, trace generator and "
            "hybrid-CDN simulator."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("tables", "fig2", "fig3", "fig4", "fig5", "fig6", "all"):
        cmd = sub.add_parser(name, help=f"run the {name} reproduction")
        _add_settings_args(cmd)
        cmd.add_argument(
            "--out", type=Path, default=None, help="directory to write report files to"
        )

    generate = sub.add_parser("generate", help="generate a synthetic trace file")
    _add_settings_args(generate, include_workers=False)  # generation never simulates
    generate.add_argument("path", type=Path, help="output .jsonl path")

    synth = sub.add_parser(
        "synth",
        help=(
            "synthesize a parametric city workload straight into a binary "
            ".store file (seeded and deterministic: equal parameters give "
            "byte-identical stores; see repro.trace.synth)"
        ),
    )
    synth.add_argument("path", type=Path, help="output .store path")
    synth.add_argument(
        "--region", default="metro",
        help="city/region label prefixing content ids and ISP names "
        "([A-Za-z0-9_]+; default: metro)",
    )
    synth.add_argument("--seed", type=int, default=0, help="master seed (default: 0)")
    synth.add_argument(
        "--days", type=_positive_int, default=7,
        help="horizon length in whole days (default: 7)",
    )
    synth.add_argument(
        "--users", type=_positive_int, default=1000,
        help="population size (default: 1000)",
    )
    synth.add_argument(
        "--catalogue", type=_positive_int, default=300, dest="catalogue_size",
        help="concurrently available catalogue slots (default: 300)",
    )
    synth.add_argument(
        "--sessions-per-user-day", type=float, default=1.2,
        help="expected weekday sessions per user per day (default: 1.2)",
    )
    synth.add_argument(
        "--zipf", type=float, default=0.9, dest="zipf_exponent",
        help="catalogue popularity skew exponent (default: 0.9)",
    )
    synth.add_argument(
        "--drift", type=float, default=0.0, dest="popularity_drift",
        help="fraction of the rank range an item drifts over the "
        "horizon, in [0, 1] (default: 0)",
    )
    synth.add_argument(
        "--churn", type=float, default=0.0, dest="catalogue_churn",
        help="fraction of catalogue slots replaced per day, in [0, 1] "
        "(default: 0)",
    )
    synth.add_argument(
        "--peak-hour", type=float, default=20.0,
        help="centre of the diurnal demand peak, 0-23 (default: 20)",
    )
    synth.add_argument(
        "--diurnal-strength", type=float, default=0.7,
        help="0 flat daily profile .. 1 all demand in the evening bump "
        "(default: 0.7)",
    )
    synth.add_argument(
        "--weekend-multiplier", type=float, default=1.15,
        help="demand multiplier on weekend days (default: 1.15)",
    )
    synth.add_argument(
        "--isps", type=_positive_int, default=4, dest="num_isps",
        help="ISPs in the region (default: 4)",
    )
    synth.add_argument(
        "--isp-skew", type=float, default=1.0,
        help="Zipf exponent over ISP market shares (default: 1.0)",
    )
    synth.add_argument(
        "--exchanges", type=_positive_int, default=48, dest="num_exchanges",
        help="exchanges per ISP (default: 48)",
    )
    synth.add_argument(
        "--pops", type=_positive_int, default=4, dest="num_pops",
        help="PoPs per ISP (default: 4)",
    )
    synth.add_argument(
        "--exchange-skew", type=float, default=0.6,
        help="Zipf exponent over exchange attachment (default: 0.6)",
    )
    synth.add_argument(
        "--activity-skew", type=float, default=0.5, dest="user_activity_skew",
        help="Zipf exponent over per-user demand weight (default: 0.5)",
    )
    synth.add_argument(
        "--mean-duration", type=float, default=1500.0,
        help="mean session length in seconds (default: 1500)",
    )
    synth.add_argument(
        "--duration-sigma", type=float, default=0.5,
        help="log-normal sigma of session length (default: 0.5)",
    )
    synth.add_argument(
        "--catalogue-prefix", default=None,
        help="content-id prefix (default: the region name; give several "
        "regions the same prefix to model a shared catalogue whose "
        "swarms span regions)",
    )
    synth.add_argument(
        "--force", action="store_true",
        help="regenerate even when the existing store's sidecar already "
        "matches this config's fingerprint",
    )

    simulate = sub.add_parser("simulate", help="simulate a saved trace file")
    simulate.add_argument(
        "path", type=Path, nargs="?", default=None,
        help="input trace (.jsonl or binary .store); omit with --federate",
    )
    simulate.add_argument(
        "--federate",
        action="append",
        default=None,
        metavar="REGION=STORE",
        help=(
            "run REGION's .store as its own job and reconcile all regions "
            "at the reducer (repeat per city; see repro.sim.federate) -- "
            "for disjoint regions the merged result is bit-for-bit the "
            "single run over the union trace"
        ),
    )
    simulate.add_argument(
        "--horizon", type=float, default=None,
        help=(
            "with --federate: explicit shared horizon in seconds "
            "(default: the maximum of the region stores' horizons)"
        ),
    )
    simulate.add_argument(
        "--upload-ratio", type=float, default=1.0, help="q/beta (default 1.0)"
    )
    simulate.add_argument(
        "--upload-ratios",
        type=float,
        nargs="+",
        default=None,
        metavar="RATIO",
        help=(
            "sweep several q/beta values in ONE pass (grouped once, "
            "decoded once; bit-for-bit identical to per-ratio runs -- "
            "see Simulator.run_sweep); overrides --upload-ratio"
        ),
    )
    simulate.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes for swarm shards (default: serial)",
    )
    simulate.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="execution backend (default: auto from --workers)",
    )
    simulate.add_argument(
        "--kernel",
        choices=KERNEL_MODES,
        default=None,
        help=(
            "swarm kernel: 'object' (reference), 'columnar' (packed "
            "columns + optional compiled sweep), or 'auto' (default; "
            "columnar where it applies) -- results are bit-for-bit "
            "identical either way"
        ),
    )
    simulate.add_argument(
        "--profile-kernel",
        action="store_true",
        help=(
            "print a per-phase kernel time breakdown (schedule build, "
            "sweep, matching, drain, reduce) after the run; forces the "
            "columnar kernel unless --kernel says otherwise"
        ),
    )
    _add_queue_dir_arg(simulate)
    _add_reduction_arg(simulate)
    simulate.add_argument(
        "--spill-dir",
        type=Path,
        default=None,
        help=(
            "with --reduction spill: keep the per-user delta log in this "
            "directory for out-of-core processing (default: a temporary "
            "log, removed after the run)"
        ),
    )
    _add_grouping_args(simulate)

    worker = sub.add_parser(
        "worker",
        help=(
            "serve a distributed work queue (claim swarm shards enqueued "
            "by --backend distributed coordinators; run on any host that "
            "shares the queue directory)"
        ),
    )
    worker.add_argument(
        "--queue-dir", type=Path, action="append", required=True,
        help="queue root directory shared with the coordinator; repeat "
        "to steal work from additional roots when the first (home) "
        "root is idle",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.1,
        help="seconds between queue scans when idle (default: 0.1)",
    )
    worker.add_argument(
        "--lease-timeout", type=float, default=30.0,
        help="fallback lease horizon for renewal pacing when a job "
        "does not publish the coordinator's own (default: 30)",
    )
    worker.add_argument(
        "--max-tasks", type=_positive_int, default=None,
        help="exit after processing this many items (default: serve forever)",
    )
    worker.add_argument(
        "--idle-exit", type=float, default=None,
        help="exit after this many seconds without work (default: never)",
    )
    worker.add_argument(
        "--worker-id", default=None,
        help="stable worker identity for lease files (default: host:pid)",
    )
    worker.add_argument(
        "--job-ttl", type=float, default=None,
        help="quarantine jobs with no pending/claimed items and no "
        "activity for this many seconds -- orphans left by crashed "
        "coordinators (default: never)",
    )
    worker.add_argument(
        "--max-rss", default=None,
        help="self-limit resident memory (e.g. 800M, 2G): release any "
        "unstarted claim and exit with status 33 instead of dying to "
        "the OOM killer (default: unlimited)",
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "always-on service mode: tail a live JSONL session feed, "
            "simulate it in bounded epochs, and append one result record "
            "per closed epoch to a sink -- checkpointed, so restarting "
            "over the same --state-dir resumes mid-stream"
        ),
    )
    serve.add_argument(
        "path", type=Path,
        help="JSONL session feed to follow (may still be growing)",
    )
    serve.add_argument(
        "--state-dir", type=Path, required=True,
        help=(
            "service state directory (checkpoint + default sink); a "
            "restarted coordinator pointed at the same directory resumes "
            "from its checkpoint"
        ),
    )
    serve.add_argument(
        "--results", type=Path, default=None,
        help="per-epoch results sink (default: STATE_DIR/results.jsonl)",
    )
    serve.add_argument(
        "--epoch-seconds", type=float, default=SECONDS_PER_DAY,
        help="epoch length in simulated seconds (default: one day)",
    )
    serve.add_argument(
        "--horizon", type=float, default=None,
        help=(
            "fixed accounting horizon in seconds (required for exact "
            "batch parity; default: the feed header's horizon when "
            "present, else a rolling per-epoch horizon)"
        ),
    )
    serve.add_argument(
        "--allowed-lateness", type=float, default=0.0,
        help=(
            "seconds a session may lag the watermark before its epoch "
            "has already closed (late sessions are counted and dropped; "
            "default: 0)"
        ),
    )
    serve.add_argument(
        "--upload-ratio", type=float, default=1.0, help="q/beta (default 1.0)"
    )
    serve.add_argument(
        "--poll-interval", type=float, default=0.2,
        help="seconds between feed polls while no complete line is "
        "available (default: 0.2)",
    )
    serve.add_argument(
        "--idle-exit", type=float, default=None,
        help=(
            "stop following after this many seconds without new records "
            "(default: follow until a trace-end marker)"
        ),
    )
    serve.add_argument(
        "--no-flush", action="store_true",
        help=(
            "leave open epochs buffered in the checkpoint when the follow "
            "ends, instead of force-closing them -- for coordinators that "
            "will be restarted to continue the same stream"
        ),
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker processes for swarm shards (default: serial)",
    )
    serve.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="execution backend (default: auto from --workers)",
    )
    _add_queue_dir_arg(serve)
    _add_reduction_arg(serve)
    _add_grouping_args(serve)
    return parser


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value!r}")
    return number


def _add_queue_dir_arg(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--queue-dir",
        type=Path,
        default=None,
        help=(
            "with --backend distributed: the shared work-queue directory "
            "(start workers anywhere it is visible via "
            "'consume-local worker --queue-dir DIR'; default: a private "
            "temporary queue served by locally spawned workers)"
        ),
    )


def _add_reduction_arg(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--reduction",
        choices=REDUCTION_MODES,
        default=None,
        help=(
            "shard-output reduction mode (default: batched; streaming/"
            "spill bound coordinator memory, identical results)"
        ),
    )


def _add_grouping_args(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--grouping",
        choices=GROUPING_MODES,
        default=None,
        help=(
            "session grouping mode (default: memory; external groups "
            "out-of-core through a sorted shard file, identical results)"
        ),
    )
    cmd.add_argument(
        "--shard-dir",
        type=Path,
        default=None,
        help=(
            "with --grouping external: keep the sorted session shard in "
            "this directory for out-of-core processing (default: a "
            "temporary shard, removed after the run)"
        ),
    )


def _add_settings_args(
    cmd: argparse.ArgumentParser, *, include_workers: bool = True
) -> None:
    cmd.add_argument("--scale", type=float, default=1.0, help="trace size multiplier")
    cmd.add_argument("--days", type=int, default=30, help="trace length in days")
    cmd.add_argument("--seed", type=int, default=20130901, help="master seed")
    cmd.add_argument(
        "--quick", action="store_true", help="preset small scale for a fast run"
    )
    if include_workers:
        cmd.add_argument(
            "--workers",
            type=_positive_int,
            default=None,
            help=(
                "worker processes for simulation swarm shards (results are "
                "bit-for-bit identical at any worker count; default: serial)"
            ),
        )
        cmd.add_argument(
            "--backend",
            choices=BACKEND_NAMES,
            default=None,
            help="execution backend (default: auto from --workers)",
        )
        _add_queue_dir_arg(cmd)
        _add_reduction_arg(cmd)
        _add_grouping_args(cmd)


def _settings_from(args: argparse.Namespace) -> ExperimentSettings:
    workers = getattr(args, "workers", None)
    backend = getattr(args, "backend", None)
    queue_dir = getattr(args, "queue_dir", None)
    reduction = getattr(args, "reduction", None)
    grouping = getattr(args, "grouping", None)
    shard_dir = getattr(args, "shard_dir", None)
    if getattr(args, "quick", False):
        settings = ExperimentSettings.quick()
        overrides = {}
        if workers is not None:
            overrides["workers"] = workers
        if backend is not None:
            overrides["backend"] = backend
        if queue_dir is not None:
            overrides["queue_dir"] = str(queue_dir)
        if reduction is not None:
            overrides["reduction"] = reduction
        if grouping is not None:
            overrides["grouping"] = grouping
        if shard_dir is not None:
            overrides["shard_dir"] = str(shard_dir)
        return replace(settings, **overrides) if overrides else settings
    return ExperimentSettings(
        scale=args.scale,
        days=args.days,
        seed=args.seed,
        workers=workers,
        backend=backend,
        queue_dir=str(queue_dir) if queue_dir is not None else None,
        reduction=reduction,
        grouping=grouping,
        shard_dir=str(shard_dir) if shard_dir is not None else None,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "worker":
        from repro.sim import faults
        from repro.sim.worker import parse_size, run_worker

        logging.basicConfig(
            level=logging.INFO,
            format="%(asctime)s %(levelname)s %(name)s: %(message)s",
            stream=sys.stderr,
        )
        faults.install_from_env()
        result = run_worker(
            args.queue_dir,
            poll_interval=args.poll_interval,
            lease_timeout=args.lease_timeout,
            max_tasks=args.max_tasks,
            idle_exit=args.idle_exit,
            worker_id=args.worker_id,
            job_ttl=args.job_ttl,
            max_rss=(
                parse_size(args.max_rss) if args.max_rss is not None else None
            ),
        )
        print(
            f"worker processed {int(result)} work item(s), "
            f"exiting: {result.reason}"
        )
        return result.code

    if args.command == "synth":
        from repro.trace.synth import SynthConfig, synthesize

        config = SynthConfig(
            region=args.region,
            seed=args.seed,
            days=args.days,
            users=args.users,
            catalogue_size=args.catalogue_size,
            sessions_per_user_day=args.sessions_per_user_day,
            zipf_exponent=args.zipf_exponent,
            popularity_drift=args.popularity_drift,
            catalogue_churn=args.catalogue_churn,
            peak_hour=args.peak_hour,
            diurnal_strength=args.diurnal_strength,
            weekend_multiplier=args.weekend_multiplier,
            num_isps=args.num_isps,
            isp_skew=args.isp_skew,
            num_exchanges=args.num_exchanges,
            num_pops=args.num_pops,
            exchange_skew=args.exchange_skew,
            user_activity_skew=args.user_activity_skew,
            mean_duration=args.mean_duration,
            duration_sigma=args.duration_sigma,
            catalogue_prefix=args.catalogue_prefix,
        )
        try:
            result = synthesize(config, args.path, force=args.force)
        except ValueError as exc:
            parser.error(str(exc))
        verb = "reused" if result.reused else "wrote"
        print(
            f"{verb} {result.sessions} sessions / {result.users_active} "
            f"users / {result.distinct_items} items to {result.path}"
        )
        print(
            f"region {config.region}  horizon {result.horizon / SECONDS_PER_DAY:g} "
            f"days  fingerprint {result.fingerprint}"
        )
        return 0

    if getattr(args, "spill_dir", None) is not None and args.reduction != "spill":
        parser.error("--spill-dir requires --reduction spill")
    if getattr(args, "shard_dir", None) is not None and args.grouping != "external":
        parser.error("--shard-dir requires --grouping external")
    if (
        getattr(args, "queue_dir", None) is not None
        and getattr(args, "backend", None) != "distributed"
    ):
        parser.error("--queue-dir requires --backend distributed")
    if args.command == "serve":
        return _run_serve(args)

    settings = _settings_from(args) if hasattr(args, "scale") else None

    if args.command == "all":
        reports = run_all(settings, out_dir=args.out)
        for report in reports:
            print(report.render())
            print()
        return 0

    if args.command == "tables":
        reports = [run_experiment(n, settings) for n in ("table1", "table3", "table4")]
        for report in reports:
            print(report.render())
            print()
        if args.out:
            args.out.mkdir(parents=True, exist_ok=True)
            for report in reports:
                (args.out / f"{report.name}.txt").write_text(report.render() + "\n")
        return 0

    if args.command.startswith("fig"):
        report = run_experiment(args.command, settings)
        print(report.render())
        if args.out:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{report.name}.txt").write_text(report.render() + "\n")
        return 0

    if args.command == "generate":
        trace = TraceGenerator(config=settings.city_config()).generate()
        save_jsonl(trace, args.path)
        stats = summarise(trace)
        print(
            f"wrote {stats.num_sessions} sessions / "
            f"{stats.num_users} users to {args.path}"
        )
        return 0

    if args.command == "simulate":
        if args.federate and args.path is not None:
            parser.error("give either a trace path or --federate, not both")
        if not args.federate and args.path is None:
            parser.error("a trace path (or --federate REGION=STORE) is required")
        if args.horizon is not None and not args.federate:
            parser.error("--horizon requires --federate")
        if args.federate and args.upload_ratios:
            parser.error("--upload-ratios is not supported with --federate")
        config = SimulationConfig(
            upload_ratio=args.upload_ratio,
            workers=args.workers,
            backend=args.backend,
            queue_dir=str(args.queue_dir) if args.queue_dir is not None else None,
            reduction=args.reduction or "batched",
            spill_dir=str(args.spill_dir) if args.spill_dir is not None else None,
            grouping=args.grouping or "memory",
            shard_dir=str(args.shard_dir) if args.shard_dir is not None else None,
            kernel=args.kernel or ("columnar" if args.profile_kernel else "auto"),
        )
        if args.profile_kernel:
            PROFILE.reset()
            PROFILE.enabled = True
        try:
            if args.federate:
                return _run_federate(args, config, parser)
            simulator = Simulator(config)
            try:
                horizon = _trace_horizon(args.path)
                return _run_simulate(args, config, simulator, horizon)
            finally:
                # Release backend resources deterministically (the
                # distributed backend owns spawned worker processes and
                # possibly a temporary queue directory).
                simulator.close()
        finally:
            if args.profile_kernel:
                PROFILE.enabled = False
                print(PROFILE.report())

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def _run_serve(args) -> int:
    """The body of the ``serve`` subcommand (always-on service mode)."""
    from repro.sim.service import ServiceConfig, serve_jsonl

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
    )
    simulation = SimulationConfig(
        upload_ratio=args.upload_ratio,
        workers=args.workers,
        backend=args.backend,
        queue_dir=str(args.queue_dir) if args.queue_dir is not None else None,
        reduction=args.reduction or "batched",
        grouping=args.grouping or "memory",
        shard_dir=str(args.shard_dir) if args.shard_dir is not None else None,
    )
    horizon = args.horizon
    if horizon is None:
        # A headerless feed falls back to rolling per-epoch horizons.
        horizon = read_jsonl_horizon(args.path) or None
    config = ServiceConfig(
        simulation=simulation,
        epoch_seconds=args.epoch_seconds,
        horizon=horizon,
        allowed_lateness=args.allowed_lateness,
    )
    sink_path = (
        args.results if args.results is not None else args.state_dir / "results.jsonl"
    )
    service = serve_jsonl(
        args.path,
        args.state_dir,
        config,
        sink_path=sink_path,
        poll_interval=args.poll_interval,
        idle_timeout=args.idle_exit,
        flush=not args.no_flush,
    )
    print(
        f"epochs emitted: {service.emitted}  "
        f"late sessions dropped: {service.late_sessions}"
    )
    result = service.result()
    if result.total.sessions:
        print(
            f"cumulative: {result.total.sessions} sessions, "
            f"offload G {result.offload_fraction():.4f}"
        )
    print(f"per-epoch results: {sink_path}")
    return 0


def _trace_horizon(path: Path) -> float:
    """The recorded horizon of a ``.jsonl`` or binary ``.store`` trace."""
    if path.suffix == ".store":
        from repro.trace.store import StoreReader

        with StoreReader(path) as reader:
            return reader.horizon
    return read_jsonl_horizon(path)


def _store_cache_token(path: Path) -> str:
    """Shard-cache token for a ``.store`` trace.

    A synthesized store's ``<path>.synth.json`` sidecar supplies the
    config fingerprint (``synth:<fp>``), making repeat simulations of a
    re-synthesized byte-identical store cache hits without hashing the
    file; any other store falls back to hashing its content.
    """
    import json as _json

    sidecar = path.with_name(path.name + ".synth.json")
    if sidecar.exists():
        try:
            fingerprint = _json.loads(sidecar.read_text())["fingerprint"]
        except (ValueError, KeyError, OSError):
            fingerprint = None
        if isinstance(fingerprint, str) and fingerprint:
            return f"synth:{fingerprint}"
    return file_fingerprint(path)


def _run_federate(args, config, parser) -> int:
    """The body of ``simulate --federate REGION=STORE ...``."""
    from repro.sim.federate import RegionJob, run_federation

    jobs = []
    for spec in args.federate:
        region, sep, store = spec.partition("=")
        if not sep or not region or not store:
            parser.error(f"--federate expects REGION=STORE, got {spec!r}")
        cache_token = (
            _store_cache_token(Path(store))
            if config.grouping == "external" and config.shard_dir is not None
            else None
        )
        try:
            jobs.append(
                RegionJob(name=region, store=store, cache_token=cache_token)
            )
        except ValueError as exc:
            parser.error(str(exc))
    try:
        fed = run_federation(jobs, config, horizon=args.horizon)
    except ValueError as exc:
        parser.error(str(exc))
    merged = fed.merged
    print(
        f"regions: {len(fed.per_region)}  sessions: {merged.total.sessions}  "
        f"offload G: {merged.offload_fraction():.4f}"
    )
    for model in builtin_models():
        print(
            f"{model.name:>10}: savings {merged.savings(model):.4f}, "
            f"carbon-positive users {merged.carbon_positive_share(model):.1%}"
        )
    for name in sorted(fed.per_region):
        regional = fed.per_region[name]
        print(
            f"  region {name}: {regional.total.sessions} sessions, "
            f"{fed.region_tasks[name]} swarms, "
            f"offload G {regional.offload_fraction():.4f}"
        )
    ledger = fed.ledger.summary()
    print(
        f"federation: {ledger['cross_region_swarms']} cross-region "
        f"swarm(s), {ledger['inter_region_bits']:.0f} inter-region "
        f"demanded bits"
    )
    for flow in ledger["flows"]:
        print(
            f"  flow {flow['source']} -> {flow['home']}: "
            f"{flow['demanded_bits']:.0f} demanded bits over "
            f"{flow['sessions']} session(s)"
        )
    return 0


def _run_simulate(args, config, simulator, horizon) -> int:
    """The body of the ``simulate`` subcommand (backend closed by caller)."""
    if args.path.suffix == ".store":
        return _run_simulate_store(args, config, simulator, horizon)
    ratios = getattr(args, "upload_ratios", None)
    if ratios:
        # Whole sweep in one pass: grouped once, decoded once, the
        # membership timeline swept once for every ratio.
        sweep = [replace(config, upload_ratio=ratio) for ratio in ratios]
        if config.grouping == "external" and horizon > 0:
            # Streamed out-of-core sweep; with --shard-dir the shard
            # cache is keyed on the trace file's content, so a
            # second invocation (a second process) skips the sort.
            results = simulator.run_sweep_stream(
                iter_jsonl(args.path),
                horizon,
                sweep,
                cache_token=(
                    file_fingerprint(args.path)
                    if simulator.grouping.supports_cache
                    else None
                ),
            )
        else:
            results = simulator.run_sweep(load_jsonl(args.path), sweep)
        print(f"sessions: {results[0].total.sessions}  ({len(ratios)}-ratio sweep)")
        for ratio, result in zip(ratios, results):
            savings = ", ".join(
                f"{model.name} {result.savings(model):.4f}"
                for model in builtin_models()
            )
            print(
                f"  q/beta {ratio:g}: offload G {result.offload_fraction():.4f}, "
                f"savings {savings}"
            )
        sweep_stats = simulator.last_sweep
        if sweep_stats is not None:
            line = (
                f"sweep: {sweep_stats.tasks} swarms x {sweep_stats.configs} "
                f"configs, {sweep_stats.schedule_builds} schedules built, "
                f"allocation-memo hit rate {sweep_stats.memo_hit_rate:.1%}"
            )
            if sweep_stats.cache_hit is not None:
                line += f", shard cache {'hit' if sweep_stats.cache_hit else 'miss'}"
            print(line)
    else:
        if config.grouping == "external" and horizon > 0:
            # The out-of-core path: the trace file streams straight
            # into external grouping (no full Trace materialized);
            # with --shard-dir the shard cache is keyed on the trace
            # file's content, so repeat runs skip the sort.
            result = simulator.run_stream(
                iter_jsonl(args.path),
                horizon,
                cache_token=(
                    file_fingerprint(args.path)
                    if simulator.grouping.supports_cache
                    else None
                ),
            )
            num_sessions = result.total.sessions
        else:
            # Memory grouping -- or a headerless file whose horizon
            # must be re-derived from session ends before simulating.
            trace = load_jsonl(args.path)
            result = simulator.run(trace)
            num_sessions = len(trace)
        print(f"sessions: {num_sessions}  offload G: {result.offload_fraction():.4f}")
        for model in builtin_models():
            print(
                f"{model.name:>10}: savings {result.savings(model):.4f}, "
                f"carbon-positive users {result.carbon_positive_share(model):.1%}"
            )
    _print_pipeline_stats(simulator)
    return 0


def _run_simulate_store(args, config, simulator, horizon) -> int:
    """``simulate`` over a binary ``.store`` trace (always streamed)."""
    from repro.trace.store import StoreReader

    if horizon <= 0:
        raise SystemExit(
            f"{args.path}: store records no horizon; re-synthesize it or "
            "simulate the original feed"
        )
    cache_token = (
        _store_cache_token(args.path) if simulator.grouping.supports_cache else None
    )
    ratios = getattr(args, "upload_ratios", None)
    with StoreReader(args.path) as reader:
        if ratios:
            sweep = [replace(config, upload_ratio=ratio) for ratio in ratios]
            results = simulator.run_sweep_stream(
                reader.iter_sessions(), horizon, sweep, cache_token=cache_token
            )
            print(
                f"sessions: {results[0].total.sessions}  "
                f"({len(ratios)}-ratio sweep)"
            )
            for ratio, result in zip(ratios, results):
                savings = ", ".join(
                    f"{model.name} {result.savings(model):.4f}"
                    for model in builtin_models()
                )
                print(
                    f"  q/beta {ratio:g}: offload G "
                    f"{result.offload_fraction():.4f}, savings {savings}"
                )
        else:
            result = simulator.run_stream(
                reader.iter_sessions(), horizon, cache_token=cache_token
            )
            print(
                f"sessions: {result.total.sessions}  "
                f"offload G: {result.offload_fraction():.4f}"
            )
            for model in builtin_models():
                print(
                    f"{model.name:>10}: savings {result.savings(model):.4f}, "
                    "carbon-positive users "
                    f"{result.carbon_positive_share(model):.1%}"
                )
    _print_pipeline_stats(simulator)
    return 0


def _print_pipeline_stats(simulator) -> None:
    """Report spill/shard artefacts the run left for out-of-core use."""
    stats = simulator.last_reduction
    if stats is not None and stats.spill_path is not None:
        print(f"per-user delta log: {stats.spill_path}")
    grouping_stats = simulator.last_grouping
    if grouping_stats is not None and grouping_stats.shard_path is not None:
        line = f"sorted session shard: {grouping_stats.shard_path}"
        if grouping_stats.cache_hit is not None:
            line += (
                " (cache hit: reused, no re-sort)"
                if grouping_stats.cache_hit
                else " (cache miss: built)"
            )
        print(line)


if __name__ == "__main__":
    sys.exit(main())
