"""M/M/infinity queueing model of a content swarm.

The paper (Section III.B) models each content swarm as an M/M/inf queue,
following Menasche et al.: viewers arrive as a Poisson process with rate
``r`` (viewers per second), watch for an average duration ``u`` (seconds)
and depart.  There is no queueing delay -- every viewer is "in service"
(i.e. watching, and available as a peer) for the whole of their session.

Two classical results drive everything downstream:

* **Little's law** -- the average number of concurrent viewers (which the
  paper calls the swarm's *capacity*) is ``c = u * r``.
* **Poisson occupancy** -- in steady state the instantaneous number of
  concurrent viewers ``L`` is Poisson distributed with mean ``c``; in
  particular the probability that the swarm is non-empty is
  ``p = 1 - exp(-c)``.

This module wraps those results in a small, explicit API that the
analytical model (:mod:`repro.core.analytical`) and the localisation
machinery (:mod:`repro.core.localisation`) build on, plus exact helpers
used by the test-suite to pin closed forms against brute-force sums.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "SwarmDynamics",
    "capacity",
    "busy_probability",
    "occupancy_pmf",
    "occupancy_cdf",
    "expected_value",
    "expected_excess_peers",
    "truncation_bound",
]

#: Default absolute tolerance used when truncating infinite Poisson sums.
_DEFAULT_TOL = 1e-12

#: Hard cap on summation length so that pathological inputs terminate.
_MAX_TERMS = 4_000_000


def capacity(arrival_rate: float, mean_duration: float) -> float:
    """Average number of concurrent viewers of a swarm (Little's law).

    The paper terms this the swarm *capacity* ``c = u * r`` (Section
    III.B): with arrival rate ``r`` and mean session duration ``u``, the
    M/M/inf steady state holds ``c`` viewers on average.

    Args:
        arrival_rate: viewer arrival rate ``r`` in viewers/second (>= 0).
        mean_duration: mean session duration ``u`` in seconds (>= 0).

    Returns:
        The swarm capacity ``c`` (dimensionless, viewers).

    Raises:
        ValueError: if either argument is negative or non-finite.
    """
    if not math.isfinite(arrival_rate) or arrival_rate < 0:
        raise ValueError(f"arrival_rate must be finite and >= 0, got {arrival_rate!r}")
    if not math.isfinite(mean_duration) or mean_duration < 0:
        raise ValueError(
            f"mean_duration must be finite and >= 0, got {mean_duration!r}"
        )
    return arrival_rate * mean_duration


def busy_probability(c: float) -> float:
    """Probability that at least one viewer is online, ``p = 1 - e^-c``.

    This is the steady-state probability that a Poisson(``c``) occupancy
    is non-zero.  The paper denotes it ``p`` (Table II) and uses it to
    discount the peer-sharable traffic: during the fraction of time the
    swarm is empty nothing can be shared.
    """
    _check_capacity(c)
    return -math.expm1(-c)


def occupancy_pmf(c: float, n: int) -> float:
    """Poisson pmf ``P[L = n]`` of the instantaneous swarm occupancy."""
    _check_capacity(c)
    if n < 0:
        raise ValueError(f"occupancy must be >= 0, got {n}")
    if c == 0.0:
        return 1.0 if n == 0 else 0.0
    # exp(n log c - c - log n!) is stable for large n where c**n overflows.
    return math.exp(n * math.log(c) - c - math.lgamma(n + 1))


def occupancy_cdf(c: float, n: int) -> float:
    """Poisson cdf ``P[L <= n]`` of the instantaneous swarm occupancy."""
    _check_capacity(c)
    if n < 0:
        return 0.0
    total = 0.0
    for k in range(0, n + 1):
        total += occupancy_pmf(c, k)
    return min(total, 1.0)


def expected_value(c: float, fn, *, tol: float = _DEFAULT_TOL) -> float:
    """Exact expectation ``E[fn(L)]`` for ``L ~ Poisson(c)``.

    Sums ``fn(n) * P[L = n]`` until the Poisson tail mass multiplied by a
    running bound on ``|fn|`` falls below ``tol``.  Intended for test /
    reference use -- the closed forms in :mod:`repro.core.localisation`
    are pinned against this function.

    Args:
        c: Poisson mean (the swarm capacity), >= 0.
        fn: callable mapping an occupancy ``n`` to a float.
        tol: absolute truncation tolerance.

    Returns:
        The expectation, truncated once the remaining tail is below
        ``tol``.
    """
    _check_capacity(c)
    if c == 0.0:
        return float(fn(0))
    total = 0.0
    tail = 1.0  # remaining probability mass P[L >= n]
    n = 0
    bound = truncation_bound(c)
    while n <= bound and n < _MAX_TERMS:
        pmf = occupancy_pmf(c, n)
        total += fn(n) * pmf
        tail -= pmf
        if tail <= tol and n > c:
            break
        n += 1
    return total


def expected_excess_peers(c: float) -> float:
    """Closed form of ``E[(L - 1)^+] = E[max(L - 1, 0)]`` for Poisson(c).

    This is the expected number of *uploading-capable* peers: in a window
    with ``L`` concurrent viewers at most ``L - 1`` of them can be served
    by fellow peers (the paper's Eq. 2 makes the peer-shared traffic
    proportional to ``L - 1``).  The closed form is::

        E[(L - 1)^+] = c - 1 + e^{-c}  =  c - p

    with ``p = busy_probability(c)`` -- exactly the ``(c - p)`` factor in
    the paper's sum of ``Delta T_p`` over windows (Section III.C).
    """
    _check_capacity(c)
    return c - busy_probability(c)


def truncation_bound(c: float, *, sigmas: float = 12.0) -> int:
    """Occupancy value beyond which Poisson(c) mass is negligible.

    Uses a mean + ``sigmas``-standard-deviations rule of thumb with a
    small floor so that tiny capacities still sum a handful of terms.
    """
    _check_capacity(c)
    return max(32, int(math.ceil(c + sigmas * math.sqrt(max(c, 1.0)))))


@dataclass(frozen=True)
class SwarmDynamics:
    """Steady-state description of one content swarm.

    A convenience bundle produced from trace measurements (arrival rate
    and mean session length) or supplied directly; downstream code only
    ever needs the derived :attr:`capacity`.

    Attributes:
        arrival_rate: viewer arrival rate ``r`` (viewers/second).
        mean_duration: mean session duration ``u`` (seconds).
    """

    arrival_rate: float
    mean_duration: float

    def __post_init__(self) -> None:
        # Route validation through capacity() so both fields are checked.
        capacity(self.arrival_rate, self.mean_duration)

    @property
    def capacity(self) -> float:
        """Average concurrent viewers ``c = u * r`` (Little's law)."""
        return capacity(self.arrival_rate, self.mean_duration)

    @property
    def busy_probability(self) -> float:
        """Probability the swarm has at least one viewer online."""
        return busy_probability(self.capacity)

    @classmethod
    def from_capacity(cls, c: float, *, mean_duration: float = 1.0) -> "SwarmDynamics":
        """Build dynamics with a given capacity (arrival rate is derived).

        Useful for analytic sweeps where only ``c`` matters.
        """
        if mean_duration <= 0:
            raise ValueError(f"mean_duration must be > 0, got {mean_duration!r}")
        _check_capacity(c)
        return cls(arrival_rate=c / mean_duration, mean_duration=mean_duration)


def _check_capacity(c: float) -> None:
    if not math.isfinite(c) or c < 0:
        raise ValueError(f"capacity must be finite and >= 0, got {c!r}")
