"""Core analytical model of "Consume Local" (paper Sections III & V).

Public surface:

* :class:`~repro.core.energy.EnergyModel` with the two built-in
  parameter sets :data:`VALANCIUS` and :data:`BALIGA` (Table IV),
* :class:`~repro.core.localisation.LayerProbabilities` /
  :data:`LONDON_LAYERS` (Table III),
* the closed forms: :func:`offload_fraction` (Eq. 3),
  :func:`energy_savings` (Eq. 12), :func:`carbon_credit_transfer`
  (Eq. 13),
* the :class:`SavingsModel` facade bundling all of the above.
"""

from repro.core.analytical import (
    SavingsBreakdown,
    energy_savings,
    offload_fraction,
    peer_network_energy_per_bit,
    savings_breakdown,
    savings_curve,
)
from repro.core.carbon import (
    CarbonIntensity,
    UK_GRID_2014,
    UserFootprint,
    asymptotic_carbon_positivity,
    carbon_credit_transfer,
    carbon_credit_transfer_at_capacity,
    neutrality_capacity,
    neutrality_offload_fraction,
)
from repro.core.energy import BALIGA, BUILTIN_MODELS, EnergyModel, VALANCIUS
from repro.core.energy import builtin_models
from repro.core.extensions import (
    energy_savings_extended,
    offload_fraction_with_linger,
    offload_fraction_with_participation,
)
from repro.core.localisation import (
    LayerProbabilities,
    LONDON_LAYERS,
    gamma_p2p,
    peer_found_probability,
    poisson_weighted_localisation,
)
from repro.core.queueing import SwarmDynamics, busy_probability, capacity
from repro.core.savings import SavingsModel

__all__ = [
    "BALIGA",
    "BUILTIN_MODELS",
    "CarbonIntensity",
    "EnergyModel",
    "LayerProbabilities",
    "LONDON_LAYERS",
    "SavingsBreakdown",
    "SavingsModel",
    "SwarmDynamics",
    "UK_GRID_2014",
    "UserFootprint",
    "VALANCIUS",
    "asymptotic_carbon_positivity",
    "builtin_models",
    "busy_probability",
    "capacity",
    "carbon_credit_transfer",
    "carbon_credit_transfer_at_capacity",
    "energy_savings",
    "energy_savings_extended",
    "offload_fraction_with_linger",
    "offload_fraction_with_participation",
    "gamma_p2p",
    "neutrality_capacity",
    "neutrality_offload_fraction",
    "offload_fraction",
    "peer_found_probability",
    "peer_network_energy_per_bit",
    "poisson_weighted_localisation",
    "savings_breakdown",
    "savings_curve",
]
