"""Analytical extensions beyond the paper's base model.

The paper's conclusion sketches future work -- caching schemes, economic
models of (partial) user participation, live streaming.  The simulator
implements two of them directly (``participation_rate`` and
``seed_linger_seconds`` in :class:`repro.sim.SimulationConfig`); this
module provides the matching closed/semi-closed forms so the extensions
can be reasoned about without simulation, exactly as Eq. 12 does for the
base system.

**Partial participation.**  Akamai NetSession reports "as little as
30 %" of users contribute upload capacity (paper Section VI).  Thinning
the Poisson swarm: the ``L - 1`` upload-capable peers participate
independently with rate ``a``, so the per-window shareable volume is
``(L - 1) * min(a * q, beta)`` in expectation and Eq. 3 generalises to::

    G(c; a) = min(a * q / beta, 1) * (c + e^{-c} - 1) / c

**Lingering seeds (caching).**  Viewers keep serving for ``T_l`` seconds
after they finish watching.  By Little's law the lingering population is
an independent Poisson with mean ``c_l = c * T_l / u``.  With at least
one cached copy present no server seed stream is needed at all, so::

    E[peer bits per window] = E[ min(L*beta, (L + M - 1)*q) ; M >= 1 ]
                            + E[ (L-1) * min(q, beta)       ; M = 0  ]

which this module evaluates by exact (truncated) Poisson summation --
a semi-closed form rather than an elementary formula, pinned against the
simulator by the test-suite.
"""

from __future__ import annotations

import math

from repro.core import queueing
from repro.core.energy import EnergyModel
from repro.core.localisation import (
    LONDON_LAYERS,
    LayerProbabilities,
    expected_weighted_gamma,
)
from repro.topology.layers import NetworkLayer

__all__ = [
    "offload_fraction_with_participation",
    "offload_fraction_with_linger",
    "energy_savings_extended",
]


def offload_fraction_with_participation(
    c: float,
    participation_rate: float,
    *,
    upload_ratio: float = 1.0,
) -> float:
    """Eq. 3 under partial participation (Poisson thinning).

    Args:
        c: swarm capacity.
        participation_rate: fraction ``a`` of users contributing upload.
        upload_ratio: ``q / beta``.

    Returns:
        The offload fraction; ``a = 1`` reduces to the paper's Eq. 3.
    """
    if not 0.0 <= participation_rate <= 1.0:
        raise ValueError(
            f"participation_rate must be in [0, 1], got {participation_rate!r}"
        )
    _check_capacity(c)
    _check_ratio(upload_ratio)
    if c == 0.0:
        return 0.0
    occupancy = (c + math.exp(-c) - 1.0) / c
    return min(participation_rate * upload_ratio, 1.0) * occupancy


def offload_fraction_with_linger(
    c: float,
    linger_ratio: float,
    *,
    upload_ratio: float = 1.0,
    participation_rate: float = 1.0,
) -> float:
    """Offload fraction with lingering seeds (the caching extension).

    Args:
        c: *viewer* capacity (concurrent watchers).
        linger_ratio: ``T_l / u`` -- linger time over mean session
            duration; the lingering population has mean ``c * linger_ratio``.
        upload_ratio: ``q / beta``.
        participation_rate: fraction of users uploading (thins both the
            viewing and the lingering supply).

    Returns:
        Expected fraction of demand served by peers (viewers and
        lingering seeds together), in [0, 1].
    """
    if linger_ratio < 0:
        raise ValueError(f"linger_ratio must be >= 0, got {linger_ratio!r}")
    if not 0.0 <= participation_rate <= 1.0:
        raise ValueError(
            f"participation_rate must be in [0, 1], got {participation_rate!r}"
        )
    _check_capacity(c)
    _check_ratio(upload_ratio)
    if c == 0.0:
        return 0.0
    if linger_ratio == 0.0:
        return offload_fraction_with_participation(
            c, participation_rate, upload_ratio=upload_ratio
        )

    # Effective per-peer upload in units of beta, after thinning; the
    # lingering population is likewise thinned (non-participants gain
    # nothing by lingering).
    q_eff = participation_rate * upload_ratio
    c_linger = c * linger_ratio * participation_rate

    def shareable(viewers: int) -> float:
        if viewers == 0:
            return 0.0

        def with_lingerers(m: int) -> float:
            if m == 0:
                if viewers < 2:
                    return 0.0
                return (viewers - 1) * min(q_eff, 1.0)
            return min(float(viewers), (viewers + m - 1) * q_eff)

        return queueing.expected_value(c_linger, with_lingerers)

    expected_peer = queueing.expected_value(c, shareable)
    return min(expected_peer / c, 1.0)


def energy_savings_extended(
    c: float,
    model: EnergyModel,
    *,
    upload_ratio: float = 1.0,
    participation_rate: float = 1.0,
    linger_ratio: float = 0.0,
    layers: LayerProbabilities = LONDON_LAYERS,
) -> float:
    """Eq. 12 generalised to partial participation and lingering seeds.

    The offload fraction comes from the extended models above.  The
    network term keeps Eq. 10's structure but evaluates the per-peer
    localisation cost at the *member* density ``c * (1 + linger_ratio)``
    -- lingering seeds make close-by copies more likely, which is most
    of caching's energy benefit.  This is an approximation in the same
    spirit as the paper's own gamma_p2p treatment; the test-suite pins
    it against the simulator.
    """
    g = offload_fraction_with_linger(
        c,
        linger_ratio,
        upload_ratio=upload_ratio,
        participation_rate=participation_rate,
    )
    psi_s = model.psi_server
    first = g * (psi_s - model.psi_peer_modem) / psi_s

    member_capacity = c * (1.0 + linger_ratio * participation_rate)
    if member_capacity <= 0.0 or g <= 0.0:
        return first
    gammas = {
        layer: model.gamma_for_layer(layer)
        for layer in NetworkLayer
        if layer.is_peer_layer
    }
    weighted = expected_weighted_gamma(gammas, layers, member_capacity)
    excess = queueing.expected_excess_peers(member_capacity)
    mean_gamma = weighted / excess if excess > 0 else model.gamma_core
    second = g * model.pue * mean_gamma / psi_s
    return first - second


def _check_capacity(c: float) -> None:
    if not math.isfinite(c) or c < 0:
        raise ValueError(f"capacity must be finite and >= 0, got {c!r}")


def _check_ratio(upload_ratio: float) -> None:
    if not math.isfinite(upload_ratio) or upload_ratio < 0:
        raise ValueError(f"upload_ratio must be finite and >= 0, got {upload_ratio!r}")
