"""The paper's analytical energy-savings model (Eqs. 1, 3, 8-12).

Everything here is a pure function of:

* the swarm capacity ``c`` (average concurrent viewers, Little's law),
* the upload/bitrate ratio ``q / beta``,
* an :class:`repro.core.energy.EnergyModel` (per-bit constants), and
* :class:`repro.core.localisation.LayerProbabilities` (how likely peers
  are to be co-located at each layer of the ISP tree).

The chain of results:

1. **Offload fraction** (Eq. 3)::

       G(c) = (q / beta) * (c + e^{-c} - 1) / c

   the share of watched bytes that fellow peers can supply.

2. **Swarm-dependent network energy** (corrected Eq. 10): the per-useful-
   bit cost of carrying peer traffic through the ISP tree,
   ``PUE * (q / beta) * E[(L-1) gamma_p2p(L)] / c`` -- see
   :mod:`repro.core.localisation` for the closed form and the erratum.

3. **Master equation** (Eq. 12)::

       S(c) = G * (psi_s - psi_p^m) / psi_s  -  Psi_p^r / (psi_s * T_u)

   the end-to-end fraction of energy saved by hybrid delivery relative
   to serving everything from the CDN.  ``S`` can be negative when
   modem double-counting outweighs the shorter paths.

The component breakdown used by Fig. 5 (CDN-only and user-only savings,
both normalised to their own no-P2P baselines) also lives here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.energy import EnergyModel
from repro.core.localisation import (
    LayerProbabilities,
    LONDON_LAYERS,
    expected_weighted_gamma,
)
from repro.topology.layers import NetworkLayer

__all__ = [
    "offload_fraction",
    "peer_network_energy_per_bit",
    "energy_savings",
    "SavingsBreakdown",
    "savings_breakdown",
    "savings_curve",
]


def offload_fraction(c: float, upload_ratio: float = 1.0, *, cap: bool = True) -> float:
    """Share ``G`` of watched traffic that peers can serve (Eq. 3).

    ``G = (q / beta) * (c + e^{-c} - 1) / c``: the Poisson-averaged
    fraction of demand covered by the ``L - 1`` upload-capable peers.
    The occupancy factor ``(c + e^{-c} - 1)/c`` is < 1 and tends to 1 as
    the swarm grows; at ``c = 1`` it is ``e^{-1} ~ 0.37`` (the paper's
    footnote 3).

    Args:
        c: swarm capacity (average concurrent viewers), >= 0.
        upload_ratio: the ``q / beta`` ratio of per-peer upload bandwidth
            to content bitrate, >= 0.
        cap: clamp the result to [0, 1].  With ``upload_ratio > 1`` the
            raw formula can exceed 1, but no more than all of the demand
            can be offloaded; the paper only evaluates ratios <= 1.

    Returns:
        The offload fraction ``G`` in [0, 1] (or the raw value when
        ``cap=False``).
    """
    _check_capacity(c)
    _check_ratio(upload_ratio)
    if c == 0.0:
        return 0.0
    occupancy = (c + math.exp(-c) - 1.0) / c
    raw = upload_ratio * occupancy
    return min(raw, 1.0) if cap else raw


def peer_network_energy_per_bit(
    c: float,
    model: EnergyModel,
    *,
    upload_ratio: float = 1.0,
    layers: LayerProbabilities = LONDON_LAYERS,
) -> float:
    """Per-useful-bit network energy of peer traffic, ``Psi_p^r / T_u``.

    From Eq. 9, summing ``PUE * gamma_p2p(L) * (L - 1) * q * dtau`` over
    windows and dividing by the useful traffic ``T_u = c * beta *
    sum(dtau)`` gives::

        Psi_p^r / T_u = PUE * (q / beta) * E[(L-1) gamma_p2p(L)] / c

    (corrected Eq. 10 -- see :mod:`repro.core.localisation`).

    Returns:
        nJ per *watched* bit spent moving peer traffic through the ISP
        network.  Zero when ``c == 0``.
    """
    _check_capacity(c)
    _check_ratio(upload_ratio)
    if c == 0.0:
        return 0.0
    gammas = {
        layer: model.gamma_for_layer(layer)
        for layer in NetworkLayer
        if layer.is_peer_layer
    }
    weighted = expected_weighted_gamma(gammas, layers, c)
    return model.pue * upload_ratio * weighted / c


def energy_savings(
    c: float,
    model: EnergyModel,
    *,
    upload_ratio: float = 1.0,
    layers: LayerProbabilities = LONDON_LAYERS,
) -> float:
    """End-to-end energy savings ``S`` of hybrid delivery (Eq. 12).

    ``S = G * (psi_s - psi_p^m)/psi_s - (Psi_p^r / T_u) / psi_s``: peers
    replace expensive server bits (first term) at the price of carrying
    peer traffic through the metro network (second term).

    Args:
        c: swarm capacity.
        model: energy parameter set (e.g. ``VALANCIUS`` or ``BALIGA``).
        upload_ratio: ``q / beta``.
        layers: ISP-layer localisation probabilities.

    Returns:
        Fraction of the CDN-only energy saved; may be negative when the
        double modem traversal outweighs the shorter paths (tiny swarms).
    """
    g = offload_fraction(c, upload_ratio)
    psi_s = model.psi_server
    first = g * (psi_s - model.psi_peer_modem) / psi_s
    second = (
        peer_network_energy_per_bit(c, model, upload_ratio=upload_ratio, layers=layers)
        / psi_s
    )
    return first - second


@dataclass(frozen=True)
class SavingsBreakdown:
    """Per-party view of hybrid-CDN savings at one capacity (Fig. 5).

    Each fraction is normalised to that party's own energy cost with
    peer assistance disabled, exactly as Fig. 5's caption specifies.

    Attributes:
        capacity: swarm capacity ``c`` the row was evaluated at.
        offload_fraction: ``G`` (Eq. 3).
        end_to_end: system-wide savings ``S`` (Eq. 12).
        cdn: CDN savings; the CDN serves only ``(1 - G)`` of the bytes,
            so its normalised saving is ``G``.
        user: user "savings"; users spend ``l * gamma_m * (1 + G)`` per
            watched bit instead of ``l * gamma_m``, i.e. ``-G``.
        carbon_credit_transfer: users' net normalised footprint after the
            CDN's saved server energy is transferred to them (Eq. 13).
    """

    capacity: float
    offload_fraction: float
    end_to_end: float
    cdn: float
    user: float
    carbon_credit_transfer: float


def savings_breakdown(
    c: float,
    model: EnergyModel,
    *,
    upload_ratio: float = 1.0,
    layers: LayerProbabilities = LONDON_LAYERS,
) -> SavingsBreakdown:
    """Evaluate every Fig. 5 curve at a single capacity.

    The carbon-credit-transfer component is delegated to
    :func:`repro.core.carbon.carbon_credit_transfer`.
    """
    # Imported lazily to keep core modules free of import cycles:
    # carbon.py uses offload_fraction from this module.
    from repro.core.carbon import carbon_credit_transfer

    g = offload_fraction(c, upload_ratio)
    return SavingsBreakdown(
        capacity=c,
        offload_fraction=g,
        end_to_end=energy_savings(c, model, upload_ratio=upload_ratio, layers=layers),
        cdn=g,
        user=-g,
        carbon_credit_transfer=carbon_credit_transfer(g, model),
    )


def savings_curve(
    capacities: Sequence[float],
    model: EnergyModel,
    *,
    upload_ratio: float = 1.0,
    layers: LayerProbabilities = LONDON_LAYERS,
) -> list:
    """Evaluate ``S(c)`` over a capacity sweep (the Fig. 2 black curve).

    Returns:
        A list of ``(c, S)`` tuples, one per input capacity, in order.
    """
    return [
        (c, energy_savings(c, model, upload_ratio=upload_ratio, layers=layers))
        for c in capacities
    ]


def _check_capacity(c: float) -> None:
    if not math.isfinite(c) or c < 0:
        raise ValueError(f"capacity must be finite and >= 0, got {c!r}")


def _check_ratio(upload_ratio: float) -> None:
    if not math.isfinite(upload_ratio) or upload_ratio < 0:
        raise ValueError(f"upload_ratio must be finite and >= 0, got {upload_ratio!r}")
