"""Per-bit energy models for CDN and peer-assisted content delivery.

The paper builds on two published, independently measured energy models
(Table IV):

* **Valancius et al.** ("Greening the Internet with Nano Data Centers",
  CoNEXT 2009) -- network path costs derived from a per-hop constant of
  150 nJ/bit: a traditional CDN path crosses 7 hops, peers localised
  within the same core router 6 hops, the same PoP 4 hops, and the same
  exchange point 2 hops.
* **Baliga et al.** ("Green Cloud Computing", Proc. IEEE 2011) -- per
  equipment-class figures summed over the devices on each kind of path.

Both share the power-usage-efficiency factor (PUE, 1.2) and the end-user
energy loss factor (l, 1.07), taken from Valancius et al. for
consistency, exactly as the paper does.

Per-bit cost functions (paper Eqs. 4--6)::

    psi_s   = PUE * (gamma_s + gamma_cdn) + l * gamma_m          # server
    psi_p^m = 2 * l * gamma_m                                    # modems
    psi_p^r = PUE * gamma_p2p(L)                                 # network

``gamma_p2p`` depends on how close the matched peers are and is computed
by :mod:`repro.core.localisation`; this module only knows the per-layer
constants ``gamma_exp / gamma_pop / gamma_core``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, Mapping, Tuple

from repro.topology.layers import NetworkLayer

__all__ = [
    "EnergyModel",
    "VALANCIUS",
    "BALIGA",
    "BUILTIN_MODELS",
    "builtin_models",
    "PER_HOP_NJ_PER_BIT",
    "VALANCIUS_HOP_COUNTS",
]

#: Valancius et al. express network costs as hops x 150 nJ/bit.
PER_HOP_NJ_PER_BIT = 150.0

#: Hop counts behind the Valancius network parameters (Table IV caption).
VALANCIUS_HOP_COUNTS: Mapping[str, int] = {
    "cdn": 7,
    "core": 6,
    "pop": 4,
    "exchange": 2,
}


@dataclass(frozen=True)
class EnergyModel:
    """A complete per-bit energy parameterisation (paper Table IV).

    All ``gamma_*`` values are in nanojoules per bit (nJ/bit).  The
    dataclass is frozen: derive variants with :meth:`with_overrides`.

    Attributes:
        name: short identifier used in reports ("valancius", "baliga").
        gamma_server: per-bit consumption of the CDN content server
            (``gamma_s``).
        gamma_modem: per-bit consumption of the end-user modem / CPE
            (``gamma_m``).
        gamma_cdn_network: per-bit consumption of the network path between
            a user and a CDN node (``gamma_cdn``).
        gamma_exchange: per-bit cost of a peer-to-peer path localised
            within one exchange point (``gamma_exp``).
        gamma_pop: per-bit cost of a P2P path localised within one point
            of presence (``gamma_pop``).
        gamma_core: per-bit cost of a P2P path crossing the metro core
            (``gamma_core``).
        pue: power usage efficiency multiplier applied to shared
            infrastructure (servers and network), accounting for cooling
            and redundancy.
        loss: end-user energy loss factor ``l`` applied to customer
            premises equipment.
    """

    name: str
    gamma_server: float
    gamma_modem: float
    gamma_cdn_network: float
    gamma_exchange: float
    gamma_pop: float
    gamma_core: float
    pue: float = 1.2
    loss: float = 1.07

    def __post_init__(self) -> None:
        for label, value in self._numeric_fields():
            if not value >= 0.0:
                raise ValueError(f"{label} must be >= 0, got {value!r}")
        if self.pue < 1.0:
            raise ValueError(
                f"pue must be >= 1 (it is an overhead factor), got {self.pue!r}"
            )
        if self.loss < 1.0:
            raise ValueError(
                f"loss must be >= 1 (it is an overhead factor), got {self.loss!r}"
            )
        if not (self.gamma_exchange <= self.gamma_pop <= self.gamma_core):
            raise ValueError(
                "per-layer P2P costs must be monotone: "
                f"gamma_exchange ({self.gamma_exchange}) <= gamma_pop "
                f"({self.gamma_pop}) <= gamma_core ({self.gamma_core})"
            )

    def _numeric_fields(self) -> Iterator[Tuple[str, float]]:
        yield "gamma_server", self.gamma_server
        yield "gamma_modem", self.gamma_modem
        yield "gamma_cdn_network", self.gamma_cdn_network
        yield "gamma_exchange", self.gamma_exchange
        yield "gamma_pop", self.gamma_pop
        yield "gamma_core", self.gamma_core

    # ------------------------------------------------------------------
    # Per-bit cost functions (paper Eqs. 4--6)
    # ------------------------------------------------------------------

    @property
    def psi_server(self) -> float:
        """Per-bit cost of serving from the CDN, ``psi_s`` (Eq. 4).

        ``psi_s = PUE * (gamma_s + gamma_cdn) + l * gamma_m``: the server
        and the network between server and user are shared infrastructure
        (PUE-inflated); the user's modem is hit once.
        """
        return (
            self.pue * (self.gamma_server + self.gamma_cdn_network)
            + self.loss * self.gamma_modem
        )

    @property
    def psi_peer_modem(self) -> float:
        """Swarm-size-independent part of the P2P per-bit cost (Eq. 6).

        ``psi_p^m = 2 * l * gamma_m`` -- each peer-delivered bit crosses
        two modems: the uploader's and the downloader's.
        """
        return 2.0 * self.loss * self.gamma_modem

    def psi_peer_network(self, gamma_p2p: float) -> float:
        """Swarm-size-dependent part of the P2P per-bit cost (Eq. 6).

        ``psi_p^r = PUE * gamma_p2p`` where ``gamma_p2p`` reflects how
        deep into the ISP hierarchy the matched peers' traffic must climb
        (see :mod:`repro.core.localisation`).
        """
        if gamma_p2p < 0:
            raise ValueError(f"gamma_p2p must be >= 0, got {gamma_p2p!r}")
        return self.pue * gamma_p2p

    def psi_peer(self, gamma_p2p: float) -> float:
        """Total per-bit P2P cost ``psi_p = 2*l*gamma_m + PUE*gamma_p2p``."""
        return self.psi_peer_modem + self.psi_peer_network(gamma_p2p)

    def gamma_for_layer(self, layer: NetworkLayer) -> float:
        """Per-bit network cost of a peer transfer localised at ``layer``.

        Maps the lowest common layer of two peers' attachment points to
        the corresponding Table IV constant.
        """
        return self._layer_gammas()[layer]

    def _layer_gammas(self) -> Dict[NetworkLayer, float]:
        return {
            NetworkLayer.EXCHANGE: self.gamma_exchange,
            NetworkLayer.POP: self.gamma_pop,
            NetworkLayer.CORE: self.gamma_core,
        }

    # ------------------------------------------------------------------
    # Whole-transfer energy helpers (used by the simulator's accounting)
    # ------------------------------------------------------------------

    def server_energy_nj(self, num_bits: float) -> float:
        """Energy (nJ) to deliver ``num_bits`` from a CDN server."""
        _check_bits(num_bits)
        return num_bits * self.psi_server

    def peer_energy_nj(self, num_bits: float, layer: NetworkLayer) -> float:
        """Energy (nJ) to deliver ``num_bits`` between peers meeting at ``layer``."""
        _check_bits(num_bits)
        return num_bits * self.psi_peer(self.gamma_for_layer(layer))

    def user_download_energy_nj(self, num_bits: float) -> float:
        """Energy (nJ) spent by a user's own CPE to *receive* ``num_bits``."""
        _check_bits(num_bits)
        return num_bits * self.loss * self.gamma_modem

    def user_upload_energy_nj(self, num_bits: float) -> float:
        """Energy (nJ) spent by a user's own CPE to *upload* ``num_bits``.

        Symmetric with download at the modem: the asymmetry of access
        technology affects bandwidth, not the per-bit modem constant.
        """
        return self.user_download_energy_nj(num_bits)

    def cdn_server_energy_nj(self, num_bits: float) -> float:
        """Energy (nJ) attributable to the CDN *server* alone (PUE-inflated).

        This is the quantity the carbon-credit transfer scheme (Eq. 13)
        counts as saved when a bit is peer-delivered: ``PUE * gamma_s``
        per bit.
        """
        _check_bits(num_bits)
        return num_bits * self.pue * self.gamma_server

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------

    def with_overrides(self, **overrides: float) -> "EnergyModel":
        """Return a copy with the given fields replaced.

        Example::

            hot_modems = VALANCIUS.with_overrides(gamma_modem=150.0)
        """
        return replace(self, **overrides)

    def as_table_row(self) -> Dict[str, float]:
        """Flat mapping used by the Table IV experiment renderer."""
        return {
            "gamma_server": self.gamma_server,
            "gamma_modem": self.gamma_modem,
            "gamma_cdn_network": self.gamma_cdn_network,
            "gamma_exchange": self.gamma_exchange,
            "gamma_pop": self.gamma_pop,
            "gamma_core": self.gamma_core,
            "pue": self.pue,
            "loss": self.loss,
        }

    @classmethod
    def from_hop_counts(
        cls,
        name: str,
        *,
        gamma_server: float,
        gamma_modem: float,
        per_hop: float = PER_HOP_NJ_PER_BIT,
        hops: Mapping[str, int] = VALANCIUS_HOP_COUNTS,
        pue: float = 1.2,
        loss: float = 1.07,
    ) -> "EnergyModel":
        """Build a model whose network costs are ``hops * per_hop`` nJ/bit.

        This is exactly how the Valancius parameters in Table IV are
        derived (``gamma_cdn = 7 x 150``, ``gamma_core = 6 x 150``,
        ``gamma_pop = 4 x 150``, ``gamma_exp = 2 x 150``).
        """
        required = {"cdn", "core", "pop", "exchange"}
        missing = required - set(hops)
        if missing:
            raise ValueError(f"hop counts missing entries: {sorted(missing)}")
        return cls(
            name=name,
            gamma_server=gamma_server,
            gamma_modem=gamma_modem,
            gamma_cdn_network=per_hop * hops["cdn"],
            gamma_exchange=per_hop * hops["exchange"],
            gamma_pop=per_hop * hops["pop"],
            gamma_core=per_hop * hops["core"],
            pue=pue,
            loss=loss,
        )


#: Valancius et al. parameter set (Table IV, left column).
VALANCIUS = EnergyModel.from_hop_counts(
    "valancius",
    gamma_server=211.1,
    gamma_modem=100.0,
)

#: Baliga et al. parameter set (Table IV, right column).
BALIGA = EnergyModel(
    name="baliga",
    gamma_server=281.3,
    gamma_modem=100.0,
    gamma_cdn_network=142.5,
    gamma_exchange=144.86,
    gamma_pop=197.48,
    gamma_core=245.74,
)

#: Both widely-used parameterisations, keyed by name.
BUILTIN_MODELS: Mapping[str, EnergyModel] = {
    VALANCIUS.name: VALANCIUS,
    BALIGA.name: BALIGA,
}


def builtin_models() -> Tuple[EnergyModel, ...]:
    """The built-in parameter sets in paper order (Valancius, Baliga)."""
    return (VALANCIUS, BALIGA)


def _check_bits(num_bits: float) -> None:
    if num_bits < 0:
        raise ValueError(f"num_bits must be >= 0, got {num_bits!r}")
