"""High-level facade over the analytical model.

:class:`SavingsModel` bundles an energy parameter set, an ISP layer
description and an upload/bitrate ratio into one object so callers (the
experiment drivers, the CLI, downstream users) can ask the questions the
paper asks without threading four arguments everywhere::

    from repro.core import SavingsModel, VALANCIUS

    model = SavingsModel(VALANCIUS)
    model.savings(capacity=100)          # ~0.47, Fig. 2's top-left peak
    model.offload_fraction(capacity=1)   # ~0.37, footnote 3
    model.breakdown(capacity=10)         # every Fig. 5 curve at c=10
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core import analytical, carbon
from repro.core.analytical import SavingsBreakdown
from repro.core.energy import EnergyModel
from repro.core.localisation import LayerProbabilities, LONDON_LAYERS

__all__ = ["SavingsModel"]


@dataclass(frozen=True)
class SavingsModel:
    """The paper's closed-form model, fully parameterised.

    Attributes:
        energy: per-bit energy constants (``VALANCIUS`` / ``BALIGA`` or a
            custom :class:`~repro.core.energy.EnergyModel`).
        layers: ISP localisation probabilities; defaults to the paper's
            London hierarchy (345 ExP / 9 PoP / 1 core).
        upload_ratio: ``q / beta``, per-peer upload bandwidth over the
            content bitrate; the paper sweeps 0.2 ... 1.0.
    """

    energy: EnergyModel
    layers: LayerProbabilities = LONDON_LAYERS
    upload_ratio: float = 1.0

    def __post_init__(self) -> None:
        if not self.upload_ratio >= 0:
            raise ValueError(f"upload_ratio must be >= 0, got {self.upload_ratio!r}")

    # -- Eq. 3 ---------------------------------------------------------

    def offload_fraction(self, capacity: float) -> float:
        """Share of traffic peers can serve, ``G(c)`` (Eq. 3)."""
        return analytical.offload_fraction(capacity, self.upload_ratio)

    # -- Eq. 12 --------------------------------------------------------

    def savings(self, capacity: float) -> float:
        """End-to-end energy savings ``S(c)`` (master equation, Eq. 12)."""
        return analytical.energy_savings(
            capacity, self.energy, upload_ratio=self.upload_ratio, layers=self.layers
        )

    def savings_curve(self, capacities: Sequence[float]) -> List[tuple]:
        """``S(c)`` over a sweep; the black theory curves of Figs. 2/4."""
        return analytical.savings_curve(
            capacities, self.energy, upload_ratio=self.upload_ratio, layers=self.layers
        )

    def peer_network_energy_per_bit(self, capacity: float) -> float:
        """``Psi_p^r / T_u`` -- nJ of metro-network energy per watched bit."""
        return analytical.peer_network_energy_per_bit(
            capacity, self.energy, upload_ratio=self.upload_ratio, layers=self.layers
        )

    # -- Section V -----------------------------------------------------

    def breakdown(self, capacity: float) -> SavingsBreakdown:
        """All Fig. 5 curves (end-to-end / CDN / user / CCT) at one ``c``."""
        return analytical.savings_breakdown(
            capacity, self.energy, upload_ratio=self.upload_ratio, layers=self.layers
        )

    def carbon_credit_transfer(self, capacity: float) -> float:
        """Normalised user footprint after credit transfer (Eq. 13)."""
        return carbon.carbon_credit_transfer_at_capacity(
            capacity, self.energy, upload_ratio=self.upload_ratio
        )

    def neutrality_capacity(self) -> float:
        """Capacity at which the average user turns carbon neutral."""
        return carbon.neutrality_capacity(self.energy, upload_ratio=self.upload_ratio)

    def asymptotic_carbon_positivity(self) -> float:
        """``CCT`` at full offload -- 18 % (Valancius) / 58 % (Baliga)."""
        return carbon.asymptotic_carbon_positivity(self.energy)

    # -- variants ------------------------------------------------------

    def with_upload_ratio(self, upload_ratio: float) -> "SavingsModel":
        """Same energy model and layers, different ``q / beta``."""
        return SavingsModel(self.energy, layers=self.layers, upload_ratio=upload_ratio)
