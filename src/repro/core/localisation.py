"""Peer localisation probabilities and the Poisson-weighted sums of Eq. 10/11.

Given a swarm of ``L`` concurrent viewers spread uniformly over an ISP
hierarchy, the probability that a given viewer finds at least one fellow
peer under the *same* node of a layer with per-node localisation
probability ``p`` is (paper, Section III.D.2)::

    P_layer(L) = 1 - (1 - p_layer)^(L - 1)

Preferring lower (closer) layers, the expected per-bit network cost of
peer traffic in a window with ``L`` viewers is (Eq. 7)::

    gamma_p2p(L) = gamma_exp * P_exp(L)
                 + gamma_pop * (P_pop(L) - P_exp(L))
                 + gamma_core * (P_core(L) - P_pop(L))

The analytical model needs the expectation of ``(L - 1) * gamma_p2p(L)``
over the Poisson occupancy of an M/M/inf swarm with mean ``c``.  Writing

    f(p, c) = E[(L - 1) * (1 - (1 - p)^(L - 1)) ; L >= 1],   L ~ Poisson(c)

and expanding the Poisson sums in closed form (derivation below) gives::

    f(p, c) = c - 1 + e^{-c} - c e^{-cp} + (e^{-cp} - e^{-c}) / (1 - p)

with the limit ``f(1, c) = c - 1 + e^{-c}`` (matching the paper's printed
special case).  The expectation then decomposes as::

    E[(L-1) gamma_p2p(L)] = (gamma_exp - gamma_pop)  * f(p_exp, c)
                          + (gamma_pop - gamma_core) * f(p_pop, c)
                          + gamma_core               * f(p_core, c)

ERRATUM -- the paper's Eq. 10 prints the first two coefficients with the
opposite sign order, ``(gamma_pop - gamma_exp)`` and ``(gamma_core -
gamma_pop)``, and Eq. 11 prints the ``p != 1`` numerator as
``e^{-cp}(1-c+cp) - e^{-cp}`` (which is inconsistent with its own ``p=1``
branch).  Both are typesetting slips: with the printed signs the
large-``c`` per-bit cost would tend to ``2*gamma_core - gamma_exp``
(energy *increasing* with swarm size), contradicting Fig. 2 and the
paper's headline numbers; the corrected coefficients converge to
``gamma_exp`` and reproduce Fig. 2's levels exactly (S ~ 0.47 Valancius /
0.29 Baliga at c = 100, q/beta = 1).  The corrected numerator is
``e^{-cp}(1-c+cp) - p e^{-c}``.  Tests pin the closed forms against exact
Poisson summation (``repro.core.queueing.expected_value``).

Derivation sketch (for ``L ~ Poisson(c)``, summing over ``L >= 1``):

    E[(L-1)^+]                 = c - 1 + e^{-c}
    E[(L-1)(1-p)^{L-1}; L>=1]  = c e^{-cp} - (e^{-cp} - e^{-c})/(1 - p)
    f(p, c)                    = difference of the two lines above.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.core import queueing
from repro.topology.layers import NetworkLayer, P2P_LAYERS

__all__ = [
    "LayerProbabilities",
    "LONDON_LAYERS",
    "localisation_probability",
    "peer_found_probability",
    "gamma_p2p",
    "poisson_weighted_localisation",
    "poisson_weighted_localisation_exact",
    "expected_weighted_gamma",
    "expected_weighted_gamma_exact",
]

#: Below this ``1 - p`` the closed form switches to the ``p -> 1`` limit
#: to avoid catastrophic cancellation in ``(e^{-cp} - e^{-c})/(1-p)``.
_P_ONE_EPS = 1e-9


@dataclass(frozen=True)
class LayerProbabilities:
    """Per-layer probability that a random peer shares a given node.

    For a layer with ``n`` identical nodes over which users attach
    uniformly, the probability that a second, independently placed user
    lands under the *same* node is ``1 / n`` (paper Table III).

    Attributes:
        exchange: ``p_exp``, probability of sharing an exchange point.
        pop: ``p_pop``, probability of sharing a point of presence.
        core: ``p_core``, probability of sharing the core (1 within one
            metro ISP network).
    """

    exchange: float
    pop: float
    core: float = 1.0

    def __post_init__(self) -> None:
        for label, p in self.as_mapping().items():
            if not 0.0 < p <= 1.0:
                raise ValueError(
                    f"probability for {label} must be in (0, 1], got {p!r}"
                )
        if not (self.exchange <= self.pop <= self.core):
            raise ValueError(
                "localisation probabilities must be monotone up the tree: "
                f"exchange ({self.exchange}) <= pop ({self.pop}) <= core ({self.core})"
            )

    @classmethod
    def from_counts(
        cls, *, exchanges: int, pops: int, cores: int = 1
    ) -> "LayerProbabilities":
        """Derive probabilities from node counts (uniform attachment).

        ``p_layer = 1 / count`` for each layer; e.g. the paper's London
        ISP has 345 exchanges, 9 PoPs and one core, giving
        ``p_exp = 0.29 %``, ``p_pop = 11.11 %``, ``p_core = 100 %``.
        """
        for label, n in (("exchanges", exchanges), ("pops", pops), ("cores", cores)):
            if n < 1:
                raise ValueError(f"{label} must be >= 1, got {n}")
        if not (exchanges >= pops >= cores):
            raise ValueError(
                "the hierarchy must narrow towards the root: "
                f"exchanges ({exchanges}) >= pops ({pops}) >= cores ({cores})"
            )
        return cls(exchange=1.0 / exchanges, pop=1.0 / pops, core=1.0 / cores)

    def for_layer(self, layer: NetworkLayer) -> float:
        """The localisation probability of a P2P layer."""
        mapping = {
            NetworkLayer.EXCHANGE: self.exchange,
            NetworkLayer.POP: self.pop,
            NetworkLayer.CORE: self.core,
        }
        try:
            return mapping[layer]
        except KeyError:
            raise ValueError(f"{layer!r} is not a peer localisation layer") from None

    def as_mapping(self) -> Dict[str, float]:
        """Plain dict view (used by table renderers)."""
        return {"exchange": self.exchange, "pop": self.pop, "core": self.core}


#: The paper's London ISP hierarchy: 345 exchange points, 9 PoPs, 1 core
#: (Table III).
LONDON_LAYERS = LayerProbabilities.from_counts(exchanges=345, pops=9, cores=1)


def localisation_probability(count: int) -> float:
    """Probability two uniform users share one of ``count`` nodes."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return 1.0 / count


def peer_found_probability(p: float, num_online: int) -> float:
    """``P_layer(L) = 1 - (1 - p)^(L - 1)`` -- at least one co-located peer.

    Probability that a viewer in a swarm of ``num_online`` concurrent
    viewers finds at least one of the other ``L - 1`` under the same node
    of a layer with localisation probability ``p``.

    Args:
        p: per-node localisation probability in (0, 1].
        num_online: instantaneous swarm size ``L`` (>= 1; with ``L = 1``
            there are no other peers and the probability is 0).
    """
    _check_probability(p)
    if num_online < 1:
        raise ValueError(f"num_online must be >= 1, got {num_online}")
    return (
        -math.expm1((num_online - 1) * math.log1p(-p))
        if p < 1.0
        else (0.0 if num_online == 1 else 1.0)
    )


def gamma_p2p(
    gammas: Mapping[NetworkLayer, float],
    probabilities: LayerProbabilities,
    num_online: int,
) -> float:
    """Expected per-bit P2P network cost in a window with ``L`` viewers (Eq. 7).

    Peers prefer the closest available layer, so the per-bit cost is a
    mixture over "found a peer at the exchange" / "only at the PoP" /
    "only across the core"::

        gamma_p2p(L) = gamma_exp * P_exp
                     + gamma_pop * (P_pop - P_exp)
                     + gamma_core * (P_core - P_pop)

    Args:
        gammas: per-layer per-bit costs, e.g. from
            :meth:`repro.core.energy.EnergyModel.gamma_for_layer`.
        probabilities: the layer localisation probabilities.
        num_online: instantaneous swarm size ``L >= 1``.

    Returns:
        The expected per-bit network cost (nJ/bit).  For ``L = 1`` every
        ``P`` is zero and the result is 0 (no peer traffic exists).
    """
    previous = 0.0
    cost = 0.0
    for layer in P2P_LAYERS:
        found = peer_found_probability(probabilities.for_layer(layer), num_online)
        cost += gammas[layer] * (found - previous)
        previous = found
    return cost


def poisson_weighted_localisation(p: float, c: float) -> float:
    """Corrected closed form of the paper's ``f(p, c)`` (Eq. 11).

    ``f(p, c) = E[(L - 1) * P_layer(L); L >= 1]`` for ``L ~ Poisson(c)``:
    the expected number of upload-capable peers weighted by the chance of
    finding a co-located partner.  Closed form::

        f(p, c) = c - 1 + e^{-c} - c e^{-cp} + (e^{-cp} - e^{-c})/(1 - p)

    with the continuous limit ``f(1, c) = c - 1 + e^{-c}`` (the paper's
    printed ``p = 1`` branch).  See the module docstring for the erratum
    in the printed ``p != 1`` numerator.

    Args:
        p: layer localisation probability in (0, 1].
        c: swarm capacity (Poisson mean), >= 0.
    """
    _check_probability(p)
    if not math.isfinite(c) or c < 0:
        raise ValueError(f"capacity must be finite and >= 0, got {c!r}")
    # expm1 keeps the absolute error at ~ulp(c) for small c, where the
    # naive `c - 1 + exp(-c)` form loses everything to cancellation
    # (f(p, c) ~ p * c^2 / 2 as c -> 0, far below 1 ulp of 1.0).
    base = c + math.expm1(-c)
    if 1.0 - p < _P_ONE_EPS:
        return max(base, 0.0)
    ratio = (math.expm1(-c * p) - math.expm1(-c)) / (1.0 - p)
    return max(base - c * math.exp(-c * p) + ratio, 0.0)


def poisson_weighted_localisation_exact(p: float, c: float) -> float:
    """Brute-force Poisson sum for ``f(p, c)`` (reference implementation).

    Sums ``(L - 1) * (1 - (1 - p)^(L - 1)) * P[L]`` term by term; used by
    the test-suite to pin :func:`poisson_weighted_localisation`.
    """
    _check_probability(p)

    def weight(n: int) -> float:
        if n < 1:
            return 0.0
        return (n - 1) * peer_found_probability(p, n)

    return queueing.expected_value(c, weight)


def expected_weighted_gamma(
    gammas: Mapping[NetworkLayer, float],
    probabilities: LayerProbabilities,
    c: float,
) -> float:
    """``E[(L - 1) * gamma_p2p(L)]`` in closed form (corrected Eq. 10 core).

    Decomposes Eq. 7 into telescoping ``P_layer`` terms::

        E[(L-1) gamma_p2p(L)] = (gamma_exp - gamma_pop)  f(p_exp, c)
                              + (gamma_pop - gamma_core) f(p_pop, c)
                              + gamma_core               f(p_core, c)

    (see the module-level erratum note for why the printed sign order in
    the paper's Eq. 10 cannot be right).

    Args:
        gammas: per-layer per-bit costs (nJ/bit).
        probabilities: layer localisation probabilities.
        c: swarm capacity.

    Returns:
        Expected ``(L - 1) * gamma_p2p(L)`` in nJ/bit-weighted peers.
    """
    g_exp = gammas[NetworkLayer.EXCHANGE]
    g_pop = gammas[NetworkLayer.POP]
    g_core = gammas[NetworkLayer.CORE]
    total = (
        (g_exp - g_pop) * poisson_weighted_localisation(probabilities.exchange, c)
        + (g_pop - g_core) * poisson_weighted_localisation(probabilities.pop, c)
        + g_core * poisson_weighted_localisation(probabilities.core, c)
    )
    # The expectation is a sum of nonnegative terms; clamp the residual
    # floating-point noise that can surface for c near the ulp scale.
    return max(total, 0.0)


def expected_weighted_gamma_exact(
    gammas: Mapping[NetworkLayer, float],
    probabilities: LayerProbabilities,
    c: float,
) -> float:
    """Brute-force Poisson sum of ``E[(L - 1) * gamma_p2p(L)]`` (reference)."""

    def weight(n: int) -> float:
        if n < 2:
            return 0.0
        return (n - 1) * gamma_p2p(gammas, probabilities, n)

    return queueing.expected_value(c, weight)


def _check_probability(p: float) -> None:
    if not 0.0 < p <= 1.0:
        raise ValueError(f"probability must be in (0, 1], got {p!r}")
