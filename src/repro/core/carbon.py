"""Carbon-credit transfer scheme and carbon accounting (paper Section V).

The hybrid CDN's savings accrue to the CDN operator while participating
users *spend more* (their modems upload as well as download).  The paper
proposes transferring the CDN's saved footprint to users as carbon
credits.  With offload fraction ``G``:

* the CDN saves ``PUE * gamma_s * G`` per watched bit (its servers no
  longer touch the peer-delivered bytes),
* a user consumes ``l * gamma_m * (1 + G)`` per watched bit (download
  everything, upload the shared fraction).

The **normalised carbon credit transfer** (Eq. 13)::

    CCT = (PUE * gamma_s * G - l * gamma_m * (1 + G)) / (l * gamma_m * (1 + G))

``CCT = -1`` with no sharing (users bear their whole footprint);
``CCT >= 0`` means *carbon positive*: the transferred credit covers the
user's entire streaming footprint and then some.

The neutrality threshold solves ``CCT = 0``::

    G* = l * gamma_m / (PUE * gamma_s - l * gamma_m)

ERRATUM -- the paper prints the numerator as ``PUE * gamma_m``; solving
its own Eq. 13 gives ``l * gamma_m`` (the difference is small -- l = 1.07
vs PUE = 1.2 -- but the corrected form is what actually zeroes Eq. 13).

Per-user accounting (Fig. 6) applies the same scheme to measured bytes:
a user who watched ``T`` bits and uploaded ``U`` bits receives credit
``PUE * gamma_s * U`` against a footprint ``l * gamma_m * (T + U)``.

Also provided: conversion from per-bit energy to grams of CO2-equivalent
via a grid carbon-intensity figure, for reporting absolute footprints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.analytical import offload_fraction
from repro.core.energy import EnergyModel

__all__ = [
    "carbon_credit_transfer",
    "carbon_credit_transfer_at_capacity",
    "neutrality_offload_fraction",
    "neutrality_capacity",
    "asymptotic_carbon_positivity",
    "UserFootprint",
    "CarbonIntensity",
    "UK_GRID_2014",
]

#: Joules per kilowatt-hour, for energy -> emissions conversions.
_JOULES_PER_KWH = 3.6e6
_NANO = 1e-9


def carbon_credit_transfer(g: float, model: EnergyModel) -> float:
    """Normalised per-user footprint after credit transfer (Eq. 13).

    Args:
        g: offload fraction ``G`` in [0, 1].
        model: energy parameter set supplying ``gamma_s``, ``gamma_m``,
            ``PUE`` and ``l``.

    Returns:
        ``CCT`` in [-1, inf): -1 means the user bears their full
        footprint (no sharing); values >= 0 mean carbon positive.
    """
    if not 0.0 <= g <= 1.0:
        raise ValueError(f"offload fraction must be in [0, 1], got {g!r}")
    footprint = model.loss * model.gamma_modem * (1.0 + g)
    credit = model.pue * model.gamma_server * g
    return (credit - footprint) / footprint


def carbon_credit_transfer_at_capacity(
    c: float,
    model: EnergyModel,
    *,
    upload_ratio: float = 1.0,
) -> float:
    """Eq. 13 evaluated through Eq. 3: ``CCT(G(c))``.

    Convenience for analytic sweeps (the green curve of Fig. 5).
    """
    return carbon_credit_transfer(offload_fraction(c, upload_ratio), model)


def neutrality_offload_fraction(model: EnergyModel) -> float:
    """Offload fraction ``G*`` at which users become carbon neutral.

    Solves ``CCT = 0``: ``G* = l*gamma_m / (PUE*gamma_s - l*gamma_m)``
    (see the module-level erratum note).  Values > 1 mean neutrality is
    unreachable under this parameter set even at full offload.
    """
    modem = model.loss * model.gamma_modem
    server = model.pue * model.gamma_server
    if server <= modem:
        return math.inf
    return modem / (server - modem)


def neutrality_capacity(
    model: EnergyModel,
    *,
    upload_ratio: float = 1.0,
    tol: float = 1e-10,
) -> float:
    """Swarm capacity at which the average user turns carbon neutral.

    Inverts ``G(c) = G*`` by bisection on the monotone occupancy factor.
    Returns ``inf`` when ``G*`` exceeds the reachable offload fraction
    ``min(upload_ratio, 1)``.
    """
    target = neutrality_offload_fraction(model)
    if not math.isfinite(target):
        return math.inf
    reachable = min(upload_ratio, 1.0)
    if target >= reachable:
        return math.inf
    lo, hi = 0.0, 1.0
    while offload_fraction(hi, upload_ratio) < target:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - defensive, G(c) -> reachable > target
            return math.inf
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if offload_fraction(mid, upload_ratio) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def asymptotic_carbon_positivity(model: EnergyModel) -> float:
    """``CCT`` at full offload (``G = 1``).

    The paper reports users end up carbon positive by 18 % (Valancius)
    / 58 % (Baliga) of their streaming footprint in this limit.
    """
    return carbon_credit_transfer(1.0, model)


@dataclass(frozen=True)
class UserFootprint:
    """Measured byte counts for one user over an accounting period.

    Attributes:
        watched_bits: total bits the user streamed (from servers plus
            peers); the paper's ``T_u``.
        uploaded_bits: bits the user uploaded to fellow peers.
    """

    watched_bits: float
    uploaded_bits: float = 0.0

    def __post_init__(self) -> None:
        if self.watched_bits < 0 or self.uploaded_bits < 0:
            raise ValueError(
                f"byte counts must be >= 0, got watched={self.watched_bits!r} "
                f"uploaded={self.uploaded_bits!r}"
            )

    @property
    def modem_bits(self) -> float:
        """Bits crossing the user's own equipment (down + up)."""
        return self.watched_bits + self.uploaded_bits

    def footprint_nj(self, model: EnergyModel) -> float:
        """Energy (nJ) consumed by the user's own equipment."""
        return model.loss * model.gamma_modem * self.modem_bits

    def credit_nj(self, model: EnergyModel) -> float:
        """Carbon credit (as energy, nJ) earned by uploading.

        Each uploaded bit spares the CDN ``PUE * gamma_s``; the scheme
        transfers exactly that to the uploader.
        """
        return model.pue * model.gamma_server * self.uploaded_bits

    def carbon_credit_transfer(self, model: EnergyModel) -> float:
        """Normalised net footprint after transfer (the Fig. 6 x-axis).

        ``(credit - footprint) / footprint``; users who streamed nothing
        have no footprint and are reported as exactly neutral (0.0).
        """
        footprint = self.footprint_nj(model)
        if footprint == 0.0:
            return 0.0
        return (self.credit_nj(model) - footprint) / footprint

    def is_carbon_positive(self, model: EnergyModel) -> bool:
        """True when the transferred credit covers the whole footprint."""
        return self.carbon_credit_transfer(model) >= 0.0


@dataclass(frozen=True)
class CarbonIntensity:
    """Grid carbon intensity for converting energy to emissions.

    Attributes:
        grams_co2_per_kwh: grams of CO2-equivalent emitted per kWh of
            electricity drawn from this grid.
        name: label for reports.
    """

    grams_co2_per_kwh: float
    name: str = "grid"

    def __post_init__(self) -> None:
        if self.grams_co2_per_kwh < 0:
            raise ValueError(
                f"carbon intensity must be >= 0, got {self.grams_co2_per_kwh!r}"
            )

    def grams_for_nj(self, energy_nj: float) -> float:
        """Convert nanojoules to grams CO2-equivalent."""
        if energy_nj < 0:
            raise ValueError(f"energy must be >= 0, got {energy_nj!r}")
        kwh = energy_nj * _NANO / _JOULES_PER_KWH
        return kwh * self.grams_co2_per_kwh

    def grams_for_bits(self, num_bits: float, per_bit_nj: float) -> float:
        """Convert a traffic volume at a per-bit cost to grams CO2e."""
        if num_bits < 0 or per_bit_nj < 0:
            raise ValueError("num_bits and per_bit_nj must be >= 0")
        return self.grams_for_nj(num_bits * per_bit_nj)


#: Average UK grid intensity around the trace period (2013-2014) --
#: roughly 450 gCO2e/kWh (DEFRA/DECC reporting figures of that era).
UK_GRID_2014 = CarbonIntensity(grams_co2_per_kwh=450.0, name="uk-grid-2014")
