"""Attachment points: where a user hangs off the ISP tree.

A user's position in the metropolitan hierarchy is fully described by the
triple (ISP, point of presence, exchange point).  Attachment points are
value objects -- hashable, comparable, and cheap to create in bulk during
trace generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.topology.layers import NetworkLayer

__all__ = ["AttachmentPoint", "intern_attachment", "lowest_common_layer"]


@dataclass(frozen=True, order=True)
class AttachmentPoint:
    """A leaf position in one ISP's metropolitan tree.

    Attributes:
        isp: name of the ISP whose tree the user hangs off.
        pop: index of the point of presence (0-based).
        exchange: index of the exchange point (0-based, unique within the
            ISP, not within the PoP).
    """

    isp: str
    pop: int
    exchange: int

    def __post_init__(self) -> None:
        if not self.isp:
            raise ValueError("isp name must be non-empty")
        if self.pop < 0:
            raise ValueError(f"pop index must be >= 0, got {self.pop}")
        if self.exchange < 0:
            raise ValueError(f"exchange index must be >= 0, got {self.exchange}")


#: Flyweight cache: one AttachmentPoint per distinct (ISP, PoP,
#: exchange) triple.  The key space is tiny (ISPs x exchanges -- a few
#: thousand for the paper's London) while sessions number in the tens of
#: millions, so interning turns per-session attachment storage into a
#: shared reference.
_INTERNED: Dict[Tuple[str, int, int], AttachmentPoint] = {}


def intern_attachment(isp: str, pop: int, exchange: int) -> AttachmentPoint:
    """The canonical shared :class:`AttachmentPoint` for a triple.

    Attachment points are immutable value objects, so every producer of
    bulk sessions (trace generation, loaders, the binary store) can
    return the same instance for the same position: identity sharing
    cuts per-session memory without changing equality semantics or any
    RNG stream (interning consumes no randomness).
    """
    key = (isp, pop, exchange)
    point = _INTERNED.get(key)
    if point is None:
        point = _INTERNED[key] = AttachmentPoint(isp=isp, pop=pop, exchange=exchange)
    return point


def lowest_common_layer(a: AttachmentPoint, b: AttachmentPoint) -> NetworkLayer:
    """The closest layer at which traffic between two users can turn around.

    * same exchange point -> :attr:`NetworkLayer.EXCHANGE`
    * same PoP, different exchange -> :attr:`NetworkLayer.POP`
    * same ISP, different PoP -> :attr:`NetworkLayer.CORE`
    * different ISPs -> :attr:`NetworkLayer.SERVER` -- the metro trees do
      not meet; the transfer would transit like CDN traffic.  The paper's
      ISP-friendly swarms never match such peers (the ablation benchmarks
      do, deliberately).
    """
    if a.isp != b.isp:
        return NetworkLayer.SERVER
    if a.exchange == b.exchange:
        return NetworkLayer.EXCHANGE
    if a.pop == b.pop:
        return NetworkLayer.POP
    return NetworkLayer.CORE
